"""Tests for the dual-graph gray-zone adversary (Remark 7.2)."""

import numpy as np
import pytest

from repro.analysis.harness import (
    build_combined_stack,
    run_local_broadcast_experiment,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.sinr.channel import Channel, GrayZoneAdversary
from repro.sinr.graphs import strong_connectivity_graph
from repro.sinr.params import SINRParameters


@pytest.fixture
def params():
    return SINRParameters()


def weak_strong_triple(params):
    """0-1 strong link; 1-2 in the gray zone (decodable, not strong)."""
    weak = 0.95 * params.transmission_range
    return PointSet(np.array([[0.0, 0.0], [5.0, 0.0], [5.0 + weak, 0.0]]))


class TestGrayZoneAdversary:
    def test_strong_links_always_pass(self, params):
        pts = weak_strong_triple(params)
        graph = strong_connectivity_graph(pts, params)
        channel = Channel(
            pts, params, adversary=GrayZoneAdversary(graph, gray_drop=1.0)
        )
        out = channel.resolve_slot({1: "x"})
        assert 0 in out.receptions  # strong neighbor receives

    def test_full_drop_silences_gray_zone(self, params):
        pts = weak_strong_triple(params)
        graph = strong_connectivity_graph(pts, params)
        adversary = GrayZoneAdversary(graph, gray_drop=1.0)
        channel = Channel(pts, params, adversary=adversary)
        out = channel.resolve_slot({1: "x"})
        assert 2 not in out.receptions  # gray-zone link erased
        assert adversary.erased_count == 1

    def test_zero_drop_is_transparent(self, params):
        pts = weak_strong_triple(params)
        graph = strong_connectivity_graph(pts, params)
        channel = Channel(
            pts, params, adversary=GrayZoneAdversary(graph, gray_drop=0.0)
        )
        out = channel.resolve_slot({1: "x"})
        assert set(out.receptions) == {0, 2}

    def test_partial_drop_is_statistical(self, params):
        pts = weak_strong_triple(params)
        graph = strong_connectivity_graph(pts, params)
        adversary = GrayZoneAdversary(
            graph, gray_drop=0.5, rng=np.random.default_rng(1)
        )
        channel = Channel(pts, params, adversary=adversary)
        gray_received = 0
        for _ in range(200):
            out = channel.resolve_slot({1: "x"})
            if 2 in out.receptions:
                gray_received += 1
        assert 60 < gray_received < 140

    def test_validation(self, params):
        pts = weak_strong_triple(params)
        graph = strong_connectivity_graph(pts, params)
        with pytest.raises(ValueError):
            GrayZoneAdversary(graph, gray_drop=1.5)


class TestProtocolsUnderGrayZone:
    """The paper's guarantees rely only on strong links, so the full
    stack must keep its contract when the entire gray zone is erased —
    i.e. when communication is *exactly* G_{1-ε}."""

    def test_acks_complete_with_gray_zone_erased(self, params):
        pts = uniform_disk(12, radius=9.0, seed=66)
        graph = strong_connectivity_graph(pts, params)
        stack = build_combined_stack(
            pts,
            params,
            approg_config=ApproxProgressConfig(
                lambda_bound=8.0, eps_approg=0.2, t_scale=0.2
            ),
            adversary=GrayZoneAdversary(graph, gray_drop=1.0),
            seed=4,
        )
        report, _ = run_local_broadcast_experiment(stack, [0, 4, 8])
        assert all(r.ack_slot is not None for r in report.records)
        assert report.completeness_fraction() >= 0.6

    def test_bsmb_completes_with_gray_zone_erased(self, params):
        from repro.geometry.deployment import line_deployment

        spacing = params.approx_range * 0.9
        pts = line_deployment(5, spacing=spacing)
        graph = strong_connectivity_graph(pts, params)
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=ApproxProgressConfig(
                lambda_bound=4.0, eps_approg=0.2, t_scale=0.2
            ),
            adversary=GrayZoneAdversary(graph, gray_drop=1.0),
            seed=5,
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)
