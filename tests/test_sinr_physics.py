"""Unit tests for repro.sinr.physics (the Eq. 1 reception rule)."""

import numpy as np
import pytest

from repro.geometry.points import pairwise_distances
from repro.sinr.params import SINRParameters
from repro.sinr.physics import (
    interference_at,
    received_power,
    sinr_matrix,
    sinr_of_link,
    successful_receptions,
)


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


def dists(*points):
    return pairwise_distances(np.array(points, dtype=float))


class TestReceivedPower:
    def test_path_loss(self, params):
        assert received_power(params, np.array(2.0)) == pytest.approx(1 / 8)

    def test_monotone_decreasing(self, params):
        d = np.array([1.0, 2.0, 4.0, 8.0])
        p = received_power(params, d)
        assert (np.diff(p) < 0).all()

    def test_scales_with_power(self):
        lo = SINRParameters(power=1.0)
        hi = SINRParameters(power=4.0)
        d = np.array(3.0)
        assert received_power(hi, d) == pytest.approx(
            4.0 * received_power(lo, d)
        )


class TestInterference:
    def test_no_transmitters(self, params):
        d = dists((0, 0), (5, 0))
        assert interference_at(params, d, np.array([], dtype=int), 1) == 0.0

    def test_excludes_sender(self, params):
        d = dists((0, 0), (5, 0), (10, 0))
        total = interference_at(params, d, np.array([0, 2]), 1)
        without_sender = interference_at(
            params, d, np.array([0, 2]), 1, exclude=0
        )
        assert without_sender < total
        assert without_sender == pytest.approx(1.0 / 5.0**3)

    def test_listener_never_self_interferes(self, params):
        d = dists((0, 0), (5, 0))
        # Listener 1 appearing in the transmitter list contributes 0.
        assert interference_at(params, d, np.array([1]), 1) == 0.0


class TestSinrOfLink:
    def test_lone_transmitter_in_range(self, params):
        d = dists((0, 0), (10, 0))
        sinr = sinr_of_link(params, d, np.array([0]), 0, 1)
        expected = (1.0 / 1000.0) / params.noise
        assert sinr == pytest.approx(expected)

    def test_decreases_with_interference(self, params):
        d = dists((0, 0), (10, 0), (30, 0))
        clean = sinr_of_link(params, d, np.array([0]), 0, 1)
        noisy = sinr_of_link(params, d, np.array([0, 2]), 0, 1)
        assert noisy < clean

    def test_rejects_self_link(self, params):
        d = dists((0, 0), (10, 0))
        with pytest.raises(ValueError):
            sinr_of_link(params, d, np.array([0]), 0, 0)


class TestSinrMatrix:
    def test_shape(self, params):
        d = dists((0, 0), (5, 0), (10, 0))
        m = sinr_matrix(params, d, np.array([0, 1]))
        assert m.shape == (2, 3)

    def test_transmitter_self_entry_zero(self, params):
        d = dists((0, 0), (5, 0))
        m = sinr_matrix(params, d, np.array([0]))
        assert m[0, 0] == 0.0

    def test_empty_transmitters(self, params):
        d = dists((0, 0), (5, 0))
        assert sinr_matrix(params, d, np.array([], dtype=int)).shape == (0, 2)

    def test_matches_scalar_computation(self, params):
        d = dists((0, 0), (7, 0), (15, 3), (2, 9))
        tx = np.array([0, 2])
        m = sinr_matrix(params, d, tx)
        for k, sender in enumerate(tx):
            for u in range(4):
                if u in tx:
                    # Half-duplex: transmitter columns are zeroed.
                    assert m[k, u] == 0.0
                    continue
                expected = sinr_of_link(params, d, tx, int(sender), u)
                assert m[k, u] == pytest.approx(expected)


class TestSuccessfulReceptions:
    def test_lone_in_range_received_by_all(self, params):
        d = dists((0, 0), (5, 0), (8, 0))
        result = successful_receptions(params, d, np.array([0]))
        assert result == {1: 0, 2: 0}

    def test_out_of_range_not_received(self, params):
        far = 2 * params.transmission_range
        d = dists((0, 0), (far, 0))
        assert successful_receptions(params, d, np.array([0])) == {}

    def test_half_duplex(self, params):
        d = dists((0, 0), (5, 0))
        result = successful_receptions(params, d, np.array([0, 1]))
        # Both transmitting: neither can listen.
        assert result == {}

    def test_close_sender_wins(self, params):
        # Listener at origin; sender at 2, interferer at 50.
        d = dists((0, 0), (2, 0), (50, 0))
        result = successful_receptions(params, d, np.array([1, 2]))
        assert result.get(0) == 1

    def test_comparable_senders_collide(self, params):
        # Two equidistant senders: SINR ~ 1 < beta for both.
        d = dists((0, 0), (5, 0), (-5, 0))
        result = successful_receptions(params, d, np.array([1, 2]))
        assert 0 not in result

    def test_listeners_filter(self, params):
        d = dists((0, 0), (5, 0), (8, 0))
        result = successful_receptions(
            params, d, np.array([0]), listeners=np.array([2])
        )
        assert result == {2: 0}

    def test_at_most_one_sender_decoded(self, params):
        # beta > 1 guarantee: no listener ever decodes two senders.
        rng = np.random.default_rng(3)
        coords = rng.random((20, 2)) * 40
        d = pairwise_distances(coords)
        for _ in range(20):
            tx = rng.choice(20, size=6, replace=False)
            result = successful_receptions(params, d, tx)
            assert len(result) == len(set(result.keys()))
            for listener in result:
                assert listener not in tx
