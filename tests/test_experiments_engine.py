"""The batched experiment engine: equivalence, determinism, workloads."""

from __future__ import annotations

import pytest

from repro.analysis.harness import (
    build_ack_stack,
    run_local_broadcast_experiment,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.experiments.engine import run_trial
from repro.experiments.workloads import get_workload, workload_names
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import SINRParameters

PARAMS = SINRParameters()
DISK = DeploymentSpec.of("uniform_disk", n=10, radius=8.0, seed=55)
SPACING = PARAMS.approx_range * 0.9
LINE = DeploymentSpec.of("line_deployment", n=4, spacing=SPACING)
APPROG_CFG = ApproxProgressConfig(
    lambda_bound=2.0, eps_approg=0.2, alpha=PARAMS.alpha, t_scale=0.25
)


def ack_sweep_plans(trials=3) -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DISK, stack="ack", workload="local_broadcast"
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=7))


class TestBatchedEquivalence:
    def test_same_seeds_identical_results(self):
        plans = ack_sweep_plans()
        sequential = run_trials(plans, mode="sequential")
        batched = run_trials(plans, mode="batched")
        assert sequential == batched  # bit-identical TrialResults

    def test_mixed_sizes_group_correctly(self):
        # Two node counts -> two lockstep groups; order preserved.
        other = DeploymentSpec.of("uniform_disk", n=8, radius=8.0, seed=9)
        plans = [
            TrialPlan(deployment=DISK, stack="ack", seed=1),
            TrialPlan(deployment=other, stack="ack", seed=2),
            TrialPlan(deployment=DISK, stack="ack", seed=3),
        ]
        sequential = run_trials(plans, mode="sequential")
        batched = run_trials(plans, mode="batched")
        assert sequential == batched
        assert [r.n for r in batched] == [10, 8, 10]

    def test_fixed_slots_workload_equivalence(self):
        base = TrialPlan(
            deployment=DISK,
            stack="approg",
            workload="fixed_slots",
            approg_config=APPROG_CFG,
            options=TrialPlan.pack_options(epochs=1),
        )
        plans = seeded_plans(base, spawn_trial_seeds(2, seed=4))
        assert run_trials(plans, mode="sequential") == run_trials(
            plans, mode="batched"
        )

    def test_global_workloads_equivalence(self):
        plans = [
            TrialPlan(
                deployment=LINE,
                stack="combined",
                workload="smb",
                seed=5,
                approg_config=APPROG_CFG,
            ),
            TrialPlan(
                deployment=LINE,
                stack="combined",
                workload="consensus",
                seed=3,
                approg_config=APPROG_CFG,
                options=TrialPlan.pack_options(waves=8),
            ),
            TrialPlan(
                deployment=LINE,
                stack="combined",
                workload="mmb",
                seed=2,
                approg_config=APPROG_CFG,
                options=TrialPlan.pack_options(
                    arrivals=((0, ("m0", "m1")),)
                ),
            ),
        ]
        sequential = run_trials(plans, mode="sequential")
        batched = run_trials(plans, mode="batched")
        assert sequential == batched
        smb, consensus, mmb = batched
        assert smb.completion == smb.slots
        assert consensus.extra_value("agreed") is True
        assert consensus.extra_value("decided_value") == (4 - 1) % 2
        assert mmb.completion is not None

    def test_extra_slots_respected(self):
        plan = TrialPlan(
            deployment=DISK, stack="ack", seed=1, extra_slots=32
        )
        sequential = run_trial(plan)
        (batched,) = run_trials([plan], mode="batched")
        assert sequential == batched
        assert batched.slots == batched.completion + 32


class TestLegacyWrapperFidelity:
    def test_matches_direct_harness_run(self):
        """run_trial is a thin wrapper over the legacy harness path."""
        plan = TrialPlan(deployment=DISK, stack="ack", seed=42)
        result = run_trial(plan)
        points = resolve_deployment(DISK)
        stack = build_ack_stack(points, PARAMS, eps_ack=0.1, seed=42)
        report, _ = run_local_broadcast_experiment(
            stack, list(range(len(points)))
        )
        assert result.slots == stack.runtime.slot
        assert result.ack_latencies == tuple(report.latencies())
        assert result.ack_completeness == report.completeness_fraction()


class TestProcessPool:
    def test_pool_matches_in_process(self):
        plans = ack_sweep_plans(trials=4)
        in_process = run_trials(plans, mode="batched")
        pooled = run_trials(plans, mode="batched", workers=2)
        assert pooled == in_process

    def test_pool_more_workers_than_plans(self):
        plans = ack_sweep_plans(trials=2)
        assert run_trials(plans, workers=4) == run_trials(plans)


class TestEngineGuards:
    def test_budget_exhaustion_raises(self):
        plan = TrialPlan(deployment=DISK, stack="ack", seed=1, max_slots=8)
        with pytest.raises(RuntimeError, match="slot budget"):
            run_trials([plan], mode="batched")
        with pytest.raises(RuntimeError, match="slot budget"):
            run_trials([plan], mode="sequential")

    def test_empty_plan_list(self):
        assert run_trials([]) == []

    def test_bad_mode_and_workers(self):
        plans = ack_sweep_plans(trials=1)
        with pytest.raises(ValueError, match="unknown mode"):
            run_trials(plans, mode="warp")
        with pytest.raises(ValueError, match="workers"):
            run_trials(plans, workers=0)

    def test_unknown_workload_listed(self):
        plan = TrialPlan(deployment=DISK, workload="nope")
        with pytest.raises(ValueError, match="registered"):
            run_trials([plan])

    def test_registry_contents(self):
        assert {
            "local_broadcast",
            "fixed_slots",
            "smb",
            "mmb",
            "consensus",
        } <= set(workload_names())
        assert get_workload("smb").name == "smb"
