"""The columnar fast path's defining contract: decode-for-decode
identity with the object runtime.

Three layers of evidence:

* **results** — a parametrized sweep over {Decay, Ack} × {1, 8 trials}
  × {synchronous, staggered wakeup} asserting ``run_trials`` returns
  dataclass-equal :class:`TrialResult` lists with ``vectorize=True``
  and ``vectorize=False`` (the ``TrialResult`` equality is the engine's
  bit-identity check: every latency, counter and completion slot);
* **traces** — a direct :class:`VectorRuntime` vs :class:`Runtime`
  comparison of the full event streams (transmitters, receptions with
  sender/mid, ack slots, wakes, rcv deliveries), per kind — the two
  executors interleave one slot's events differently but every per-kind
  stream must match event for event;
* **randomness** — :class:`NodeUniformBuffer` must reproduce each
  node's scalar ``Generator.random()`` stream exactly, in arbitrary
  take patterns, because that stream identity is what makes the two
  upper layers possible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ack_protocol import AckConfig, AckMacLayer
from repro.core.decay import DecayConfig, DecayMacLayer
from repro.core.events import MessageRegistry
from repro.experiments import DeploymentSpec, TrialPlan, run_trials, seeded_plans
from repro.experiments.cache import deployment_artifacts, resolve_deployment
from repro.simulation.rng import NodeUniformBuffer, spawn_node_rngs, spawn_trial_seeds
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.vectorized import AckKernel, DecayKernel, VectorRuntime, vector_eligible

N = 12
RADIUS = 9.0
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=RADIUS, seed=33)


def make_plans(stack, trials, broadcasters, **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        broadcasters=broadcasters,
        label=f"eq-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize(
    "broadcasters", [None, (0, 1, 2)], ids=["sync", "staggered"]
)
def test_results_bit_identical(stack, trials, broadcasters):
    """The acceptance matrix: vectorized == object, field for field."""
    plans = make_plans(stack, trials, broadcasters)
    vec = run_trials(plans, vectorize=True)
    obj = run_trials(plans, vectorize=False)
    assert vec == obj
    # Guard against the trivial way this could pass: the runs did work.
    assert all(result.transmissions > 0 for result in vec)


@pytest.mark.parametrize("stack", ["decay", "ack"])
def test_results_bit_identical_fixed_slots(stack):
    """Fixed-budget workloads (incl. an observation tail) also match."""
    plans = make_plans(
        stack,
        4,
        None,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=400),
        extra_slots=25,
    )
    assert run_trials(plans, vectorize=True) == run_trials(
        plans, vectorize=False
    )


def test_fixed_slots_defines_its_own_vector_finalize():
    """X101 regression: fixed_slots overrides finalize(), so it must
    carry its own vector_finalize twin — before reprolint, the vector
    path silently inherited the base hook and only matched the object
    path by coincidence of the eligible stacks having no schedule."""
    from repro.experiments.workloads import FixedSlotsWorkload, get_workload

    assert "vector_finalize" in FixedSlotsWorkload.__dict__
    workload = get_workload("fixed_slots")
    plan = TrialPlan(
        deployment=DEPLOYMENT,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=64),
    )
    assert workload.vector_ready(plan)

    class ScheduleLessMac:  # the vector-eligible stack shape
        pass

    class Stack:
        macs = [ScheduleLessMac()]

    assert workload.vector_finalize(None, 0, plan, 64) == workload.finalize(
        Stack(), plan, 64
    )


def test_results_bit_identical_without_physical_trace():
    """record_physical=False (production-throughput mode) matches too."""
    plans = make_plans("decay", 4, None, record_physical=False)
    vec = run_trials(plans, vectorize=True)
    assert vec == run_trials(plans, vectorize=False)
    assert all(result.approg_latencies == () for result in vec)
    assert all(result.ack_latencies for result in vec)


def test_heterogeneous_configs_one_batch():
    """An ε-sweep batches trials with different Ack configs; per-trial
    config columns must keep every trial on its own parameters."""
    plans = [
        TrialPlan(
            deployment=DEPLOYMENT,
            stack="ack",
            workload="local_broadcast",
            seed=11,
            eps_ack=eps,
            label=f"eps{eps}",
        )
        for eps in (0.4, 0.1, 0.01)
    ]
    assert run_trials(plans, vectorize=True) == run_trials(
        plans, vectorize=False
    )


def test_vectorize_true_rejects_ineligible_plans():
    plan = TrialPlan(
        deployment=DEPLOYMENT, stack="combined", workload="local_broadcast"
    )
    assert not vector_eligible(plan)
    with pytest.raises(ValueError, match="not columnar-eligible"):
        run_trials([plan], vectorize=True)
    # Sequential mode never runs the columnar executor, so demanding
    # it there is a contradiction, not a silent object-path run.
    eligible = TrialPlan(
        deployment=DEPLOYMENT, stack="decay", workload="local_broadcast"
    )
    with pytest.raises(ValueError, match="batched mode"):
        run_trials([eligible], mode="sequential", vectorize=True)
    # Auto mode silently routes it to the object executor instead.
    assert run_trials([plan]) == run_trials([plan], vectorize=False)


# -- trace-level equivalence ------------------------------------------------


def _object_stack(stack, config, seed, broadcasters, slots):
    points = resolve_deployment(DEPLOYMENT)
    params = TrialPlan(deployment=DEPLOYMENT).params
    artifacts = deployment_artifacts(points, params)
    registry = MessageRegistry()
    layer = DecayMacLayer if stack == "decay" else AckMacLayer
    macs = [layer(i, registry, config) for i in range(N)]
    channel = Channel(
        points,
        params,
        distances=artifacts.distances,
        gains=artifacts.gains,
    )
    runtime = Runtime(channel, macs, RuntimeConfig(seed=seed))
    for node in broadcasters:
        macs[node].bcast(payload=f"m{node}")
    runtime.run(slots)
    return runtime


def _vector_stack(stack, config, seed, broadcasters, slots):
    points = resolve_deployment(DEPLOYMENT)
    params = TrialPlan(deployment=DEPLOYMENT).params
    artifacts = deployment_artifacts(points, params)
    kernel_cls = DecayKernel if stack == "decay" else AckKernel
    channel = Channel(
        points,
        params,
        distances=artifacts.distances,
        gains=artifacts.gains,
    )
    runtime = VectorRuntime(
        [channel], kernel_cls([config], N), seeds=[seed]
    )
    for node in broadcasters:
        runtime.bcast(0, node, payload=f"m{node}")
    runtime.run(slots)
    return runtime


def _stream(trace, kind):
    """The (slot, node, data) stream of one event kind, normalizing
    message objects to their mids."""
    out = []
    for event in trace:
        if event.kind != kind:
            continue
        data = event.data
        if kind == "transmit":
            data = data.mid
        elif kind == "receive":
            sender, payload = data
            data = (sender, payload.mid)
        out.append((event.slot, event.node, data))
    return out


@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize(
    "broadcasters", [range(N), (0, 3, 7)], ids=["sync", "staggered"]
)
def test_trace_streams_bit_identical(stack, broadcasters):
    """Transmitters, receptions, ack slots, wakes, bcasts and rcv
    deliveries must match the object runtime event for event.

    Within one slot the object runtime interleaves events node by node
    while the columnar runtime groups them by kind, so the comparison
    is per kind — each kind's stream is fully ordered and must be
    equal, which pins slots, nodes, senders and message ids exactly.
    """
    config = (
        DecayConfig(contention_bound=16.0, eps_ack=0.2)
        if stack == "decay"
        else AckConfig(contention_bound=24.0, eps_ack=0.2)
    )
    slots = 300
    obj = _object_stack(stack, config, 77, broadcasters, slots)
    vec = _vector_stack(stack, config, 77, broadcasters, slots)
    for kind in ("bcast", "wake", "transmit", "receive", "rcv", "ack"):
        assert _stream(vec.trace, kind) == _stream(obj.trace, kind), kind
    assert len(vec.trace) == len(obj.trace)
    assert vec.slot == obj.slot == slots
    assert (
        vec.channels[0].total_transmissions
        == obj.channel.total_transmissions
    )
    assert vec.channels[0].total_receptions == obj.channel.total_receptions
    # The runs actually exercised the machinery under comparison.
    assert _stream(obj.trace, "transmit")
    assert _stream(obj.trace, "receive")


def test_ack_kernel_fallback_state_matches_engine():
    """Drive one AckEngine and the kernel through the same uniform
    stream with reception feedback; the columnar state columns must
    track the scalar engine's fields exactly (incl. fallbacks)."""
    from repro.core.ack_protocol import AckEngine

    config = AckConfig(
        contention_bound=8.0, eps_ack=0.3, rc_factor=0.5, gamma_prime=1.0
    )
    rng = np.random.default_rng(3)
    uniforms = rng.random(2000)

    class _FixedRng:
        def __init__(self, values):
            self._it = iter(values)

        def random(self):
            return next(self._it)

    engine = AckEngine(config, _FixedRng(uniforms))
    kernel = AckKernel([config], 1)
    idx = np.array([0], dtype=np.intp)
    step = 0
    while not engine.halted and step < uniforms.size:
        transmit = engine.step()
        k_transmit, k_halted = kernel.step(
            idx, np.array([uniforms[step]])
        )
        assert bool(k_transmit[0]) == transmit
        assert bool(k_halted[0]) == engine.halted
        assert kernel.probability[0] == engine.probability
        assert kernel.tp[0] == engine.tp
        assert kernel.rc[0] == engine.rc
        assert kernel.fallbacks[0] == engine.fallbacks
        # Feed overheard traffic periodically to exercise fallback.
        if step % 25 == 0 and not engine.halted:
            engine.notify_reception()
            kernel.notify(idx)
            assert bool(kernel.fallback_pending[0]) == engine._fallback_pending
        step += 1
    assert engine.halted, "test must reach the halting line"
    assert engine.fallbacks > 0, "test must exercise the fallback path"


# -- bulk RNG pre-draw ------------------------------------------------------


def test_bulk_uniforms_match_scalar_stream():
    """NodeUniformBuffer serves exactly each node's scalar stream, in
    order, under an adversarial (irregular, chunk-crossing) take
    pattern."""
    n = 7
    buffered = NodeUniformBuffer(spawn_node_rngs(n, seed=123), chunk=5)
    scalar = spawn_node_rngs(n, seed=123)
    drawn: dict[int, list[float]] = {i: [] for i in range(n)}
    rng = np.random.default_rng(9)
    for _round in range(40):
        lanes = np.flatnonzero(rng.random(n) < 0.6)
        if lanes.size == 0:
            continue
        values = buffered.take(lanes)
        for lane, value in zip(lanes.tolist(), values.tolist()):
            drawn[lane].append(value)
    for lane in range(n):
        expected = [scalar[lane].random() for _ in drawn[lane]]
        assert drawn[lane] == expected
    assert any(len(v) > 5 for v in drawn.values()), "must cross a refill"


def test_bulk_uniforms_validate_chunk():
    with pytest.raises(ValueError):
        NodeUniformBuffer(spawn_node_rngs(2, seed=0), chunk=0)
