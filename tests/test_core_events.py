"""Unit tests for repro.core.events."""

import pytest

from repro.core.events import BcastMessage, MessageRegistry


class TestBcastMessage:
    def test_fields(self):
        m = BcastMessage(5, 2, payload="x")
        assert m.mid == 5
        assert m.origin == 2
        assert m.payload == "x"

    def test_ordering_by_mid(self):
        assert BcastMessage(1, 0) < BcastMessage(2, 0)

    def test_hashable(self):
        assert len({BcastMessage(1, 0), BcastMessage(1, 0)}) == 1

    def test_repr_compact(self):
        assert "mid=1" in repr(BcastMessage(1, 0))


class TestMessageRegistry:
    def test_unique_across_nodes(self):
        reg = MessageRegistry()
        mids = {reg.mint(origin).mid for origin in range(10)}
        assert len(mids) == 10

    def test_unique_within_node(self):
        reg = MessageRegistry()
        mids = {reg.mint(3).mid for _ in range(100)}
        assert len(mids) == 100

    def test_origin_recorded(self):
        reg = MessageRegistry()
        assert reg.mint(7).origin == 7

    def test_lookup(self):
        reg = MessageRegistry()
        m = reg.mint(1, payload="data")
        assert reg.lookup(m.mid) is m

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            MessageRegistry().lookup(12345)

    def test_len_counts_minted(self):
        reg = MessageRegistry()
        for _ in range(5):
            reg.mint(0)
        assert len(reg) == 5

    def test_payloads_do_not_affect_identity(self):
        reg = MessageRegistry()
        a = reg.mint(0, payload="same")
        b = reg.mint(0, payload="same")
        assert a.mid != b.mid  # unique messages per bcast (paper §4.4)
