"""Unit and behavioural tests for Algorithm B.1 (repro.core.ack_protocol)."""

import numpy as np
import pytest

from repro.analysis.harness import build_ack_stack, run_local_broadcast_experiment
from repro.core.ack_protocol import AckConfig, AckEngine, AckMacLayer
from repro.core.events import MessageRegistry
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


@pytest.fixture
def config():
    return AckConfig(contention_bound=16.0, eps_ack=0.1)


class TestAckConfig:
    def test_derived_quantities_positive(self, config):
        assert config.log_term > 0
        assert config.inner_block_slots >= 1
        assert config.halt_budget > 0
        assert config.rc_threshold > 0

    def test_initial_probability(self, config):
        assert config.initial_probability == pytest.approx(1 / 64)

    def test_floor_below_initial(self, config):
        assert config.floor_probability < config.initial_probability

    def test_validation(self):
        with pytest.raises(ValueError):
            AckConfig(contention_bound=0.5)
        with pytest.raises(ValueError):
            AckConfig(contention_bound=4, eps_ack=0.0)
        with pytest.raises(ValueError):
            AckConfig(contention_bound=4, delta=-1)
        with pytest.raises(ValueError):
            AckConfig(contention_bound=4, prob_cap=0.9)

    def test_expected_slot_bound_monotone_in_contention(self, config):
        assert config.expected_slot_bound(4.0) < config.expected_slot_bound(
            16.0
        )

    def test_log_term_grows_with_tighter_eps(self):
        loose = AckConfig(contention_bound=16, eps_ack=0.5)
        tight = AckConfig(contention_bound=16, eps_ack=0.001)
        assert tight.log_term > loose.log_term


class TestAckEngine:
    def test_halts_eventually(self, config):
        engine = AckEngine(config, np.random.default_rng(0))
        for _ in range(100_000):
            if engine.halted:
                break
            engine.step()
        assert engine.halted

    def test_probability_never_exceeds_cap(self, config):
        engine = AckEngine(config, np.random.default_rng(1))
        while not engine.halted:
            assert engine.probability <= config.prob_cap + 1e-12
            engine.step()

    def test_probability_never_below_floor(self, config):
        engine = AckEngine(config, np.random.default_rng(2))
        for _ in range(200):
            engine.notify_reception()  # hammer fallbacks
            engine.step()
            assert engine.probability >= config.floor_probability - 1e-12

    def test_fallback_reduces_probability(self, config):
        engine = AckEngine(config, np.random.default_rng(3))
        # Run a while to climb the probability ladder.
        for _ in range(5 * config.inner_block_slots):
            engine.step()
        climbed = engine.probability
        for _ in range(int(config.rc_threshold) + 1):
            engine.notify_reception()
        engine.step()  # fallback applies on the next owned slot
        assert engine.probability < climbed

    def test_transmissions_counted(self, config):
        engine = AckEngine(config, np.random.default_rng(4))
        while not engine.halted:
            engine.step()
        assert engine.transmissions > 0
        assert engine.transmissions <= engine.slots_run

    def test_steps_after_halt_are_noops(self, config):
        engine = AckEngine(config, np.random.default_rng(5))
        while not engine.halted:
            engine.step()
        slots = engine.slots_run
        assert engine.step() is False
        assert engine.slots_run == slots

    def test_budget_accumulates_even_without_transmitting(self, config):
        # tp increases by p each slot regardless of the coin flip
        # (paper line 13), so halting is deterministic in slot count
        # given the probability trajectory.
        a = AckEngine(config, np.random.default_rng(6))
        b = AckEngine(config, np.random.default_rng(7))
        while not a.halted:
            a.step()
        while not b.halted:
            b.step()
        # No receptions => identical trajectories => same halt time.
        assert a.slots_run == b.slots_run

    def test_halt_time_scales_with_contention(self):
        """More contention => longer runs (the Δ·log term)."""

        def slots_under_load(bound, receptions_per_slot):
            cfg = AckConfig(contention_bound=bound, eps_ack=0.1)
            engine = AckEngine(cfg, np.random.default_rng(8))
            while not engine.halted:
                engine.step()
                for _ in range(receptions_per_slot):
                    engine.notify_reception()
            return engine.slots_run

        quiet = slots_under_load(16, 0)
        busy = slots_under_load(16, 1)  # constant overheard traffic
        assert busy > quiet


class TestAckMacLayer:
    def make_pair(self, distance=5.0, config=None):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0], [distance, 0.0]]))
        reg = MessageRegistry()
        cfg = config or AckConfig(contention_bound=8.0, eps_ack=0.1)
        macs = [AckMacLayer(i, reg, cfg) for i in range(2)]
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        return rt, macs

    def test_broadcast_reaches_neighbor_and_acks(self):
        rt, macs = self.make_pair()
        message = macs[0].bcast(payload="hi")
        rt.run_until(lambda r: not macs[0].busy)
        assert message.mid in macs[0].acked_mids
        assert message.mid in macs[1].delivered_mids

    def test_double_broadcast_rejected(self):
        rt, macs = self.make_pair()
        macs[0].bcast()
        with pytest.raises(RuntimeError, match="already broadcasting"):
            macs[0].bcast()

    def test_abort_stops_acking(self):
        rt, macs = self.make_pair()
        message = macs[0].bcast()
        rt.run(3)
        macs[0].abort()
        rt.run(2000)
        assert message.mid not in macs[0].acked_mids
        aborts = rt.trace.of_kind("abort")
        assert len(aborts) == 1

    def test_rcv_deduplicated(self):
        rt, macs = self.make_pair()
        macs[0].bcast()
        rt.run_until(lambda r: not macs[0].busy)
        rcvs = [e for e in rt.trace.of_kind("rcv") if e.node == 1]
        assert len(rcvs) == 1

    def test_own_message_not_delivered_to_self(self):
        rt, macs = self.make_pair()
        m = macs[0].bcast()
        rt.run_until(lambda r: not macs[0].busy)
        assert m.mid not in macs[0].delivered_mids


class TestTheorem51Behaviour:
    """Statistical checks of the Theorem 5.1 guarantee on deployments."""

    def test_acks_complete_on_random_deployment(self):
        params = SINRParameters()
        pts = uniform_disk(20, radius=10.0, seed=11)
        stack = build_ack_stack(pts, params, eps_ack=0.1, seed=1)
        broadcasters = [0, 5, 10, 15]
        report, _ = run_local_broadcast_experiment(stack, broadcasters)
        assert len(report.records) == 4
        # Every broadcast acked, and the vast majority complete.
        assert all(r.ack_slot is not None for r in report.records)
        assert report.completeness_fraction() >= 0.75

    def test_latency_grows_with_density(self):
        """The Δ·log term: denser networks take longer to ack."""
        params = SINRParameters()
        latencies = []
        for n in (8, 32):
            pts = uniform_disk(n, radius=9.0, seed=13)
            stack = build_ack_stack(pts, params, eps_ack=0.1, seed=2)
            report, _ = run_local_broadcast_experiment(
                stack, list(range(n))
            )
            latencies.append(report.mean_latency())
        assert latencies[1] > latencies[0]
