"""Property-based physics harness for the sparse SINR resolver.

:mod:`repro.sinr.sparse` makes two precise promises, and this suite
pins both with hypothesis-generated deployments and ragged transmitter
sets rather than hand-picked fixtures:

* **exact mode is bit-identical** to the dense kernel
  (:func:`~repro.sinr.physics.successful_receptions`): same decode
  pairs, same dict insertion order, on every deployment, every
  transmitter set, and every realized-power matrix a stochastic
  channel model can hand it.
* **farfield mode is ε-bounded**: every candidate-link SINR estimate is
  within relative ε of the dense value, and therefore decode flips are
  confined to links whose exact SINR lies in the ε-band
  ``(β/(1+ε), β/(1−ε))`` around the threshold — outside the band the
  decode *sets* are equal, not merely close.

The composition properties then walk the same contracts through the
stochastic channel layer (fading/shadowing realized powers flow through
the exact path) and dynamic-topology epochs (the grid is rebuilt on
``advance_topology`` and the contracts hold against the *moved*
geometry).

Examples are derandomized: the suite is a deterministic gate, not a
fuzzer — widen ``max_examples`` locally when hunting.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.deployment import uniform_disk
from repro.sinr.channel import Channel
from repro.sinr.params import ChannelModel, SINRParameters, SparseResolution
from repro.sinr.physics import (
    gain_matrix,
    sinr_matrix,
    successful_receptions,
)
from repro.sinr.sparse import SparseResolver
from repro.topology import WaypointMobility

SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

EPSILONS = (0.01, 0.05, 0.1, 0.3)
# Slack on the ε comparisons: the bound itself is exact mathematics,
# the slack only absorbs float evaluation of the comparison.
REL_SLACK = 1e-9


@st.composite
def deployments(draw, max_n: int = 36):
    """A constant-ish-density disk deployment with its parameters."""
    n = draw(st.integers(min_value=4, max_value=max_n))
    degree = draw(st.sampled_from((3.0, 6.0, 12.0)))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    params = SINRParameters()
    radius = params.transmission_range * math.sqrt(n / degree)
    return uniform_disk(n, radius=radius, seed=seed), params


@st.composite
def tx_sets(draw, n: int):
    """A ragged transmitter set: empty, singleton, dense, anything."""
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True,
            max_size=n,
        )
    )
    return np.array(sorted(ids), dtype=np.intp)


def _sparse_params(
    params: SINRParameters, mode: str = "exact", epsilon: float = 0.05
) -> SINRParameters:
    from dataclasses import replace

    # min_n=1: these deployments are tiny by design; without forcing the
    # crossover down the Channel would silently route them to the dense
    # kernels and nothing sparse would be under test.
    return replace(
        params,
        sparse=SparseResolution(mode=mode, epsilon=epsilon, min_n=1),
    )


# -- property (a): exact mode is bit-identical -------------------------------


@settings(max_examples=40, **SETTINGS)
@given(deploy=deployments(), data=st.data())
def test_exact_mode_is_bit_identical_to_dense(deploy, data):
    points, params = deploy
    distances = None
    resolver = SparseResolver(points, _sparse_params(params))
    for _ in range(3):
        tx = data.draw(tx_sets(len(points)), label="transmitters")
        if distances is None:  # build the dense reference lazily, once
            from repro.geometry.points import pairwise_distances

            distances = pairwise_distances(points.coords)
            gains = gain_matrix(params, distances)
        dense = successful_receptions(params, distances, tx, gains=gains)
        sparse = resolver.resolve(tx)
        assert sparse == dense
        # Same *insertion order* too: downstream trace recording and
        # adversary filtering iterate these dicts.
        assert list(sparse.items()) == list(dense.items())


@settings(max_examples=25, **SETTINGS)
@given(deploy=deployments(max_n=24), data=st.data())
def test_exact_mode_is_bit_identical_under_realized_powers(deploy, data):
    """The stochastic-channel hook: arbitrary positive (k, n) realized
    powers must flow through the sparse path bit-identically."""
    points, params = deploy
    n = len(points)
    tx = data.draw(tx_sets(n), label="transmitters")
    seed = data.draw(st.integers(0, 2**20), label="power-seed")
    rng = np.random.default_rng(seed)
    # Log-uniform powers across six decades: exercises both the
    # below-noise candidate cut and strong-interference regimes.
    link_powers = 10.0 ** rng.uniform(-5.0, 1.0, size=(tx.size, n))
    from repro.geometry.points import pairwise_distances

    distances = pairwise_distances(points.coords)
    dense = successful_receptions(
        params, distances, tx, link_powers=link_powers
    )
    resolver = SparseResolver(points, _sparse_params(params))
    sparse = resolver.resolve(tx, link_powers=link_powers)
    assert sparse == dense
    assert list(sparse.items()) == list(dense.items())


# -- property (b): farfield SINR estimates honor ε ---------------------------


@settings(max_examples=30, **SETTINGS)
@given(
    deploy=deployments(),
    epsilon=st.sampled_from(EPSILONS),
    data=st.data(),
)
def test_farfield_link_sinr_within_epsilon(deploy, epsilon, data):
    points, params = deploy
    tx = data.draw(tx_sets(len(points)), label="transmitters")
    resolver = SparseResolver(
        points, _sparse_params(params, "farfield", epsilon)
    )
    senders, listeners, approx = resolver.link_sinr_estimates(tx)
    if senders.size == 0:
        return
    from repro.geometry.points import pairwise_distances

    distances = pairwise_distances(points.coords)
    exact = sinr_matrix(params, distances, tx)
    tx_row = {int(t): k for k, t in enumerate(tx)}
    rows = np.array([tx_row[int(s)] for s in senders], dtype=np.intp)
    truth = exact[rows, listeners]
    assert (truth > 0).all()  # candidates never include transmitters
    rel_err = np.abs(approx - truth) / truth
    assert rel_err.max() <= epsilon * (1.0 + REL_SLACK), (
        f"farfield rel error {rel_err.max():.3e} exceeds ε={epsilon}"
    )


# -- property (c): decode flips are confined to the ε-band -------------------


@settings(max_examples=30, **SETTINGS)
@given(
    deploy=deployments(),
    epsilon=st.sampled_from(EPSILONS),
    data=st.data(),
)
def test_farfield_decode_flips_confined_to_epsilon_band(deploy, epsilon, data):
    points, params = deploy
    tx = data.draw(tx_sets(len(points)), label="transmitters")
    from repro.geometry.points import pairwise_distances

    distances = pairwise_distances(points.coords)
    dense = successful_receptions(params, distances, tx)
    far = SparseResolver(
        points, _sparse_params(params, "farfield", epsilon)
    ).resolve(tx)

    # Which listeners have *any* candidate link whose exact SINR sits
    # in the band where an ε-perturbation can cross the β threshold?
    lo = params.beta / (1.0 + epsilon) * (1.0 - REL_SLACK)
    hi = params.beta / (1.0 - epsilon) * (1.0 + REL_SLACK)
    exact = sinr_matrix(params, distances, tx)
    in_band = (exact >= lo) & (exact <= hi)
    banded_listeners = set(np.nonzero(in_band.any(axis=0))[0].tolist())

    if not banded_listeners:
        # No link anywhere near the threshold: the decode *sets* must
        # be exactly equal, approximation or not.
        assert far == dense
        return
    for listener in set(dense) | set(far):
        if dense.get(listener) != far.get(listener):
            assert listener in banded_listeners, (
                f"listener {listener} flipped decode "
                f"({dense.get(listener)} -> {far.get(listener)}) with no "
                f"exact SINR inside the ε-band [{lo:.4f}, {hi:.4f}]"
            )


# -- composition: stochastic channel model -----------------------------------


@settings(max_examples=12, **SETTINGS)
@given(
    deploy=deployments(max_n=20),
    rayleigh=st.booleans(),
    sigma=st.sampled_from((0.0, 4.0)),
    spread=st.sampled_from((1.0, 8.0)),
    trial_seed=st.integers(min_value=0, max_value=2**20),
    data=st.data(),
)
def test_exact_mode_composes_with_channel_model(
    deploy, rayleigh, sigma, spread, trial_seed, data
):
    """Fading/shadowing realized powers ride the exact sparse path:
    both channels consume identical channel-stream draws and must stay
    decode-for-decode (and order-for-order) identical."""
    points, params = deploy
    model = ChannelModel(
        rayleigh=rayleigh, shadowing_sigma_db=sigma, power_spread=spread
    )
    from dataclasses import replace

    dense_params = replace(params, channel_model=model)
    sparse_params = _sparse_params(dense_params)
    dense_ch = Channel(points, dense_params)
    sparse_ch = Channel(points, sparse_params)
    dense_ch.bind_trial_seed(trial_seed)
    sparse_ch.bind_trial_seed(trial_seed)
    for _ in range(3):
        tx = data.draw(tx_sets(len(points)), label="transmitters")
        dense_raw = dense_ch.resolve_raw(tx)
        sparse_raw = sparse_ch.resolve_raw(tx)
        assert sparse_raw == dense_raw
        assert list(sparse_raw.items()) == list(dense_raw.items())


# -- composition: dynamic-topology epochs ------------------------------------


@settings(max_examples=10, **SETTINGS)
@given(
    deploy=deployments(max_n=20),
    provider_seed=st.integers(min_value=0, max_value=2**10),
    data=st.data(),
)
def test_exact_mode_composes_with_topology_epochs(
    deploy, provider_seed, data
):
    """`advance_topology` rebuilds the grid: after every epoch the
    exact sparse decode must still be bit-identical to the dense decode
    of the *moved* geometry."""
    points, params = deploy
    topo = WaypointMobility(epoch_slots=2, speed=3.0, seed=provider_seed)
    from dataclasses import replace

    dense_ch = Channel(points, params, topology=topo)
    sparse_ch = Channel(points, _sparse_params(params), topology=topo)
    dense_ch.bind_trial_seed(0)
    sparse_ch.bind_trial_seed(0)
    for slot in range(6):
        moved_dense = dense_ch.advance_topology(slot)
        moved_sparse = sparse_ch.advance_topology(slot)
        assert moved_dense == moved_sparse
        tx = data.draw(tx_sets(len(points)), label=f"slot-{slot}")
        dense_raw = dense_ch.resolve_raw(tx)
        sparse_raw = sparse_ch.resolve_raw(tx)
        assert sparse_raw == dense_raw
        assert list(sparse_raw.items()) == list(dense_raw.items())
    # Both channels genuinely moved at the epoch boundaries.
    assert not np.array_equal(sparse_ch.points.coords, points.coords)


@settings(max_examples=8, **SETTINGS)
@given(
    deploy=deployments(max_n=20),
    epsilon=st.sampled_from((0.05, 0.3)),
    data=st.data(),
)
def test_farfield_epsilon_survives_topology_epochs(deploy, epsilon, data):
    """The rebuilt farfield grid honors ε against the moved geometry."""
    points, params = deploy
    topo = WaypointMobility(epoch_slots=1, speed=4.0, seed=3)
    ch = Channel(
        points, _sparse_params(params, "farfield", epsilon), topology=topo
    )
    ch.bind_trial_seed(0)
    for slot in range(3):
        ch.advance_topology(slot)
        tx = data.draw(tx_sets(len(points)), label=f"slot-{slot}")
        senders, listeners, approx = ch._resolver.link_sinr_estimates(tx)
        if senders.size == 0:
            continue
        from repro.geometry.points import pairwise_distances

        exact = sinr_matrix(
            params, pairwise_distances(ch.points.coords), tx
        )
        tx_row = {int(t): k for k, t in enumerate(tx)}
        rows = np.array([tx_row[int(s)] for s in senders], dtype=np.intp)
        truth = exact[rows, listeners]
        rel_err = np.abs(approx - truth) / truth
        assert rel_err.max() <= epsilon * (1.0 + REL_SLACK)


# -- edge cases the strategies may not always hit ----------------------------


class TestEdgeCases:
    @pytest.fixture
    def deploy(self):
        params = SINRParameters()
        radius = params.transmission_range * math.sqrt(16 / 6.0)
        return uniform_disk(16, radius=radius, seed=2), params

    def test_empty_transmitter_set(self, deploy):
        points, params = deploy
        for mode in ("exact", "farfield"):
            resolver = SparseResolver(points, _sparse_params(params, mode))
            assert resolver.resolve(np.array([], dtype=np.intp)) == {}

    def test_all_nodes_transmit(self, deploy):
        points, params = deploy
        tx = np.arange(len(points), dtype=np.intp)
        from repro.geometry.points import pairwise_distances

        dense = successful_receptions(
            params, pairwise_distances(points.coords), tx
        )
        exact = SparseResolver(points, _sparse_params(params)).resolve(tx)
        assert exact == dense == {}  # half-duplex: nobody listens

    def test_isolated_node_decodes_nothing(self):
        params = SINRParameters()
        coords = np.array(
            [[0.0, 0.0], [1.0, 0.0], [1000.0, 1000.0]], dtype=np.float64
        )
        from repro.geometry.points import PointSet

        points = PointSet(coords=coords)
        tx = np.array([0], dtype=np.intp)
        for mode in ("exact", "farfield"):
            resolver = SparseResolver(points, _sparse_params(params, mode))
            result = resolver.resolve(tx)
            assert 2 not in result  # far outside the candidate radius
            assert result == {1: 0}

    def test_farfield_requires_valid_epsilon(self):
        with pytest.raises(ValueError):
            SparseResolution(mode="farfield", epsilon=0.0)
        with pytest.raises(ValueError):
            SparseResolution(mode="farfield", epsilon=1.0)
        with pytest.raises(ValueError):
            SparseResolution(mode="bogus")

    def test_resolver_requires_sparse_spec(self, deploy):
        points, params = deploy
        with pytest.raises(ValueError):
            SparseResolver(points, params)
