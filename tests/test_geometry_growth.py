"""Tests for growth-bounded graph utilities (repro.geometry.growth)."""

import networkx as nx
import pytest

from repro.geometry.deployment import uniform_disk
from repro.geometry.growth import (
    growth_bound_function,
    independence_number_in_radius,
    is_growth_bounded_sample,
    neighborhood_size_bound,
)
from repro.sinr.graphs import strong_connectivity_graph
from repro.sinr.params import SINRParameters


class TestGrowthBoundFunction:
    def test_quadratic(self):
        assert growth_bound_function(0.0, constant=5.0) == 5.0
        assert growth_bound_function(1.0, constant=5.0) == 20.0

    def test_monotone(self):
        values = [growth_bound_function(r) for r in range(6)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            growth_bound_function(-1.0)


class TestIndependenceNumber:
    def test_radius_zero_is_one(self):
        g = nx.path_graph(5)
        assert independence_number_in_radius(g, 2, 0) == 1

    def test_path_graph_known_value(self):
        g = nx.path_graph(9)
        # 2-ball around the middle: nodes 2..6, max independent ~3.
        count = independence_number_in_radius(g, 4, 2)
        assert 2 <= count <= 3

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            independence_number_in_radius(nx.path_graph(3), 1, -1)


class TestGrowthBoundedSample:
    def test_sinr_induced_graph_is_growth_bounded(self):
        """The foundational fact behind the MIS runtime (§4.1): strong
        connectivity graphs over min-separated deployments are growth
        bounded."""
        params = SINRParameters()
        pts = uniform_disk(40, radius=25.0, seed=17)
        g = strong_connectivity_graph(pts, params)
        assert is_growth_bounded_sample(g, max_radius=3, constant=12.0)

    def test_star_violates_small_constant(self):
        # A star with many leaves has a large independent 1-ball.
        g = nx.star_graph(200)
        assert not is_growth_bounded_sample(
            g, max_radius=1, constant=5.0, sample_nodes=[0]
        )


class TestNeighborhoodBound:
    def test_lemma_4_2_formula(self):
        assert neighborhood_size_bound(3, 2.0, constant=5.0) == 3 * 45.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_size_bound(-1, 1.0)

    def test_holds_on_sinr_graph(self):
        """|N_{G,r}(v)| <= Δ·f(r) on a real deployment (Lemma 4.2)."""
        params = SINRParameters()
        pts = uniform_disk(40, radius=22.0, seed=18)
        g = strong_connectivity_graph(pts, params)
        delta = max(d for _, d in g.degree)
        for v in list(g.nodes)[:10]:
            for r in (1, 2):
                ball = nx.ego_graph(g, v, radius=r)
                assert ball.number_of_nodes() <= neighborhood_size_bound(
                    delta, r, constant=12.0
                )
