"""Unit tests for repro.sinr.params."""

import pytest

from repro.sinr.params import SINRParameters


class TestValidation:
    def test_defaults_valid(self):
        SINRParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"power": 0.0},
            {"power": -1.0},
            {"alpha": 2.0},  # must exceed 2
            {"alpha": 1.5},
            {"beta": 1.0},  # must exceed 1
            {"beta": 0.5},
            {"noise": 0.0},
            {"epsilon": 0.0},
            {"epsilon": 0.5},  # 2*eps must stay below 1
            {"epsilon": 0.7},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SINRParameters(**kwargs)


class TestRanges:
    def test_transmission_range_formula(self):
        p = SINRParameters(power=8.0, alpha=3.0, beta=2.0, noise=1.0)
        assert p.transmission_range == pytest.approx((8.0 / 2.0) ** (1 / 3))

    def test_strong_range_scales_by_epsilon(self):
        p = SINRParameters(epsilon=0.2)
        assert p.strong_range == pytest.approx(0.8 * p.transmission_range)

    def test_approx_range_uses_two_epsilon(self):
        p = SINRParameters(epsilon=0.2)
        assert p.approx_range == pytest.approx(0.6 * p.transmission_range)

    def test_range_ordering(self):
        p = SINRParameters()
        assert p.approx_range < p.strong_range < p.transmission_range

    def test_range_at_validates(self):
        with pytest.raises(ValueError):
            SINRParameters().range_at(0.0)


class TestWithRange:
    def test_round_trip(self):
        p = SINRParameters().with_range(25.0)
        assert p.transmission_range == pytest.approx(25.0)

    def test_with_strong_range(self):
        p = SINRParameters(epsilon=0.1).with_strong_range(18.0)
        assert p.strong_range == pytest.approx(18.0)

    def test_preserves_other_params(self):
        base = SINRParameters(alpha=4.0, beta=2.0, noise=1e-3, epsilon=0.15)
        p = base.with_range(10.0)
        assert p.alpha == base.alpha
        assert p.beta == base.beta
        assert p.noise == base.noise
        assert p.epsilon == base.epsilon

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SINRParameters().with_range(0.0)


class TestLambda:
    def test_lambda_ratio(self):
        p = SINRParameters()
        assert p.lambda_ratio(1.0) == pytest.approx(p.strong_range)

    def test_lambda_floor_is_one(self):
        p = SINRParameters()
        assert p.lambda_ratio(10.0 * p.strong_range) == 1.0

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            SINRParameters().lambda_ratio(0.0)

    def test_max_contention_bound(self):
        assert SINRParameters.max_contention_bound(3.0) == pytest.approx(36.0)
        with pytest.raises(ValueError):
            SINRParameters.max_contention_bound(0.5)


class TestLogStar:
    def test_small_values(self):
        p = SINRParameters()
        assert p.log_star(1.0) == 0
        assert p.log_star(2.0) == 1
        assert p.log_star(4.0) == 2
        assert p.log_star(16.0) == 3
        assert p.log_star(65536.0) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SINRParameters().log_star(-1.0)


class TestDescribe:
    def test_mentions_all_constants(self):
        text = SINRParameters().describe()
        for token in ("alpha", "beta", "eps", "R="):
            assert token in text
