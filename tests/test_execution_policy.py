"""ExecutionPolicy and the legacy-kwarg deprecation shim.

The API-redesign contract of PR 8: every execution knob
``run_trials`` grew over PRs 1-7 (``mode``, ``workers``, ``vectorize``,
``native``) now travels as one frozen :class:`ExecutionPolicy`, the
legacy kwargs keep working through a once-per-process deprecation
warning, and — the load-bearing pin — both spellings produce
dataclass-equal results because they resolve to the same policy and the
same :func:`~repro.experiments.engine.execute_plans` funnel.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import FrozenInstanceError

import pytest

from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    resolve_policy,
    run_trials,
    seeded_plans,
)
from repro.experiments import policy as policy_module
from repro.simulation.rng import spawn_trial_seeds

DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=10, radius=6.0, seed=21)


def make_plans(trials=3, stack="decay", **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload="local_broadcast",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


@pytest.fixture
def fresh_warning_latch(monkeypatch):
    """Re-arm the once-per-process deprecation warning for one test."""
    monkeypatch.setattr(policy_module, "_LEGACY_WARNED", False)


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy == ExecutionPolicy(
            mode="batched",
            workers=1,
            vectorize=None,
            native=None,
            native_threads=None,
            share_cache=True,
        )

    def test_frozen_hashable_picklable(self):
        policy = ExecutionPolicy(workers=3, vectorize=False)
        with pytest.raises(FrozenInstanceError):
            policy.workers = 1
        assert hash(policy) == hash(ExecutionPolicy(workers=3, vectorize=False))
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ExecutionPolicy(mode="warp")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionPolicy(workers=0)

    def test_rejects_nonpositive_native_threads(self):
        with pytest.raises(ValueError, match="native_threads"):
            ExecutionPolicy(native_threads=0)
        # None defers to REPRO_NATIVE_THREADS; 1 is explicit serial.
        assert ExecutionPolicy(native_threads=1).native_threads == 1

    def test_rejects_sequential_vectorize_demand(self):
        with pytest.raises(ValueError, match="columnar"):
            ExecutionPolicy(mode="sequential", vectorize=True)

    def test_for_worker_flattens_parallelism_only(self):
        policy = ExecutionPolicy(workers=4, vectorize=True, native=False,
                                 share_cache=False)
        worker = policy.for_worker()
        assert worker.workers == 1
        assert worker == ExecutionPolicy(
            workers=1, vectorize=True, native=False, share_cache=False
        )
        # Already-flat policies come back as the same object.
        assert worker.for_worker() is worker

    def test_describe_is_compact(self):
        assert ExecutionPolicy().describe() == "batched"
        text = ExecutionPolicy(
            mode="batched", workers=3, native=True, share_cache=False
        ).describe()
        assert "workers=3" in text and "native=True" in text
        assert "private-cache" in text
        assert "native-threads=4" in ExecutionPolicy(
            native_threads=4
        ).describe()


class TestResolvePolicy:
    def test_none_means_default(self):
        assert resolve_policy(None) == ExecutionPolicy()

    def test_policy_passes_through(self):
        policy = ExecutionPolicy(mode="sequential")
        assert resolve_policy(policy) is policy

    def test_legacy_kwargs_build_equal_policy(self, fresh_warning_latch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            resolved = resolve_policy(
                None, mode="batched", workers=2, vectorize=False, native=True
            )
        assert resolved == ExecutionPolicy(
            mode="batched", workers=2, vectorize=False, native=True
        )

    def test_both_spellings_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_policy(ExecutionPolicy(), workers=2)

    def test_non_policy_is_an_error(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            resolve_policy("batched")  # a classic positional mistake

    def test_warns_once_per_process(self, fresh_warning_latch):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_policy(None, workers=2)
            resolve_policy(None, mode="sequential")
        messages = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1
        assert "ExecutionPolicy" in str(messages[0].message)

    def test_legacy_validation_still_raises(self, fresh_warning_latch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown mode"):
                resolve_policy(None, mode="warp")
            with pytest.raises(ValueError, match="workers"):
                resolve_policy(None, workers=0)
            with pytest.raises(ValueError, match="columnar"):
                resolve_policy(None, mode="sequential", vectorize=True)


class TestRunTrialsShim:
    """The acceptance pin: shim and policy paths are dataclass-equal."""

    @pytest.mark.parametrize(
        "legacy, policy",
        [
            (dict(mode="sequential"), ExecutionPolicy(mode="sequential")),
            (dict(vectorize=False), ExecutionPolicy(vectorize=False)),
            (
                dict(mode="batched", native=False),
                ExecutionPolicy(mode="batched", native=False),
            ),
        ],
    )
    def test_shim_equals_policy_path(self, legacy, policy):
        plans = make_plans(
            decay_config=DecayConfig(contention_bound=16.0)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = run_trials(plans, **legacy)
        via_policy = run_trials(plans, policy)
        assert via_shim == via_policy

    def test_policy_accepts_mixed_stacks(self):
        plans = make_plans(stack="decay") + make_plans(
            stack="ack", ack_config=AckConfig(contention_bound=16.0)
        )
        default = run_trials(plans)
        explicit = run_trials(plans, ExecutionPolicy())
        assert default == explicit

    def test_run_trials_rejects_both_spellings(self):
        plans = make_plans(trials=1)
        with pytest.raises(TypeError, match="not both"):
            run_trials(plans, ExecutionPolicy(), workers=2)

    def test_run_trials_rejects_positional_mode_string(self):
        plans = make_plans(trials=1)
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            run_trials(plans, "sequential")

    def test_private_cache_policy_matches_shared(self):
        # share_cache only changes *where* artifacts are memoized,
        # never the results.
        plans = make_plans(trials=2)
        assert run_trials(plans, ExecutionPolicy(share_cache=False)) == (
            run_trials(plans, ExecutionPolicy())
        )
