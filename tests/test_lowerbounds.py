"""Tests for the Theorem 6.1 and Theorem 8.1 constructions."""

import pytest

from repro.lowerbounds.constructions import (
    DecayLowerBoundNetwork,
    ProgressLowerBoundNetwork,
)
from repro.lowerbounds.experiments import (
    measure_approx_progress_on,
    measure_decay_progress,
    optimal_schedule_progress,
)


class TestProgressLowerBoundNetwork:
    @pytest.mark.parametrize("delta", [2, 4, 7])
    def test_structure_matches_proof(self, delta):
        network = ProgressLowerBoundNetwork(delta=delta)
        summary = network.verify_structure()
        assert summary["delta"] == delta
        assert summary["cross_links_in_Gtilde"] == 0

    def test_degree_equals_delta(self):
        network = ProgressLowerBoundNetwork(delta=6)
        degrees = dict(network.graph.degree)
        assert all(d == 6 for d in degrees.values())

    def test_partner_mapping(self):
        network = ProgressLowerBoundNetwork(delta=4)
        assert network.partner(0) == 4
        assert network.partner(3) == 7
        with pytest.raises(ValueError):
            network.partner(5)  # a U-node has no partner lookup

    def test_minimum_delta(self):
        with pytest.raises(ValueError):
            ProgressLowerBoundNetwork(delta=1)

    @pytest.mark.parametrize("delta", [2, 5, 10])
    def test_optimal_schedule_needs_delta_slots(self, delta):
        """The Theorem 6.1 statement: even the optimal centralized
        schedule leaves some U-node waiting Δ slots."""
        network = ProgressLowerBoundNetwork(delta=delta)
        result = optimal_schedule_progress(network)
        assert result["served_all"]
        assert result["max_progress"] == delta
        assert result["concurrent_receptions"] == 0
        assert result["concurrency_probed"]

    def test_concurrency_probe_uses_v_nodes_not_hardcoded_ids(self):
        """Regression: the probe indexed ``messages[0]``/``messages[1]``
        directly; it must key off ``v_nodes`` and skip (flagged) when
        fewer than two exist.  A duck-typed Δ=1 network exercises the
        degenerate path the real constructor forbids."""
        real = ProgressLowerBoundNetwork(delta=3)

        class _DegenerateNetwork:
            delta = 1
            v_nodes = [0]
            u_nodes = [3]  # deliberately not node 1
            graph = real.graph

            @staticmethod
            def channel():
                return real.channel()

        result = optimal_schedule_progress(_DegenerateNetwork())
        assert result["concurrency_probed"] is False
        assert result["concurrent_receptions"] is None

    def test_single_concurrent_pair_blocks_everything(self):
        network = ProgressLowerBoundNetwork(delta=5)
        channel = network.channel()
        # Any two cross pairs transmitting concurrently: all blocked.
        sinr = channel.link_sinr(0, network.partner(0), [0, 3])
        assert sinr < network.params.beta


class TestDecayLowerBoundNetwork:
    def test_structure(self):
        network = DecayLowerBoundNetwork(delta=16, seed=1)
        summary = network.verify_structure()
        assert summary["delta"] == 16
        assert summary["b1_link_lone_sinr"] >= network.params.beta

    def test_interference_grows_with_delta(self):
        """The crushing mechanism: all-B2 interference lowers B1's SINR
        monotonically in Δ, crossing below β for large Δ."""
        sinrs = {}
        for delta in (8, 32, 64):
            network = DecayLowerBoundNetwork(delta=delta, seed=1)
            summary = network.verify_structure()
            sinrs[delta] = summary["b1_link_all_b2_sinr"]
        assert sinrs[8] > sinrs[32] > sinrs[64]
        assert sinrs[64] < network.params.beta

    def test_balls_not_connected(self):
        network = DecayLowerBoundNetwork(delta=8, seed=2)
        for b1 in network.b1_nodes:
            for b2 in network.b2_nodes:
                assert not network.graph.has_edge(b1, b2)


class TestTheorem81Separation:
    """Decay vs Algorithm 9.1 on the two-ball network (small instance;
    the full sweep lives in the benchmark)."""

    def test_both_protocols_achieve_b1_progress(self):
        network = DecayLowerBoundNetwork(delta=8, seed=3)
        decay = measure_decay_progress(network, eps=0.2, seed=1)
        assert decay["completed"], "Decay should finish on a small instance"
        approg = measure_approx_progress_on(network, eps=0.2, seed=1)
        assert approg["completed"]

    def test_decay_degrades_with_delta(self):
        slow = measure_decay_progress(
            DecayLowerBoundNetwork(delta=48, seed=4), eps=0.2, seed=2
        )
        fast = measure_decay_progress(
            DecayLowerBoundNetwork(delta=6, seed=4), eps=0.2, seed=2
        )
        assert fast["completed"]
        # Either the large instance timed out, or it took longer.
        if slow["completed"]:
            assert slow["progress_slot"] > fast["progress_slot"]
