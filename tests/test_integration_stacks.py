"""Integration tests: full protocol stacks over the real SINR MAC.

The plug-and-play claim of the paper (§1): algorithms written against
the absMAC interface run unchanged over the SINR implementation.  These
tests run BSMB, BMMB and consensus end-to-end over
:class:`~repro.core.combined.CombinedMacLayer` on multihop deployments.
"""

from repro.analysis.harness import build_combined_stack, build_decay_stack
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import line_deployment, uniform_disk
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.protocols.consensus import ConsensusClient, run_consensus
from repro.sinr.params import SINRParameters


FAST_APPROG = ApproxProgressConfig(
    lambda_bound=4.0, eps_approg=0.2, alpha=3.0, t_scale=0.2, bcast_scale=4.0
)


def multihop_line(params, hops=4):
    """A line network with ~hops G_{1-eps} diameter."""
    spacing = params.strong_range * 0.9
    return line_deployment(hops + 1, spacing=spacing)


class TestBsmbOverSinr:
    def test_line_network_full_delivery(self):
        params = SINRParameters()
        pts = multihop_line(params, hops=4)
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=FAST_APPROG,
            seed=1,
        )
        final = run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)
        slots = [c.delivered_slot for c in stack.clients]
        assert slots == sorted(slots)  # front moves outward on a line

    def test_disk_network_full_delivery(self):
        params = SINRParameters()
        pts = uniform_disk(16, radius=12.0, seed=61)
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=FAST_APPROG,
            seed=2,
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)

    def test_bsmb_over_decay_mac_also_works(self):
        """Same protocol object, different MAC implementation."""
        params = SINRParameters()
        pts = multihop_line(params, hops=3)
        stack = build_decay_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            seed=3,
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)


class TestBmmbOverSinr:
    def test_multi_message_full_delivery(self):
        params = SINRParameters()
        pts = multihop_line(params, hops=3)
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BmmbClient(),
            approg_config=FAST_APPROG,
            seed=4,
        )
        tokens = {0: ["a", "b"], 2: ["c"]}
        run_multi_message_broadcast(
            stack.runtime, stack.macs, stack.clients, arrivals=tokens
        )
        for client in stack.clients:
            assert client.has_all(["a", "b", "c"])


class TestConsensusOverSinr:
    def test_agreement_on_line(self):
        params = SINRParameters()
        pts = multihop_line(params, hops=3)
        n = len(pts)
        diameter_bound = n  # conservative
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: ConsensusClient(
                i, i % 2, waves=2 * diameter_bound + 2
            ),
            approg_config=FAST_APPROG,
            seed=5,
        )
        result = run_consensus(stack.runtime, stack.macs, stack.clients)
        assert result.agreed
        # Validity: the max id is n-1 with value (n-1) % 2.
        assert result.decided_value() == (n - 1) % 2

    def test_agreement_on_disk(self):
        params = SINRParameters()
        pts = uniform_disk(10, radius=9.0, seed=62)
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: ConsensusClient(i, 1, waves=2 * 10 + 2),
            approg_config=FAST_APPROG,
            seed=6,
        )
        result = run_consensus(stack.runtime, stack.macs, stack.clients)
        assert result.agreed
        assert result.decided_value() == 1


class TestCrossMacAgreement:
    """The same protocol yields the same outcome over the ideal MAC and
    the SINR MAC — only the timing differs."""

    def test_bsmb_same_delivery_set(self):

        from repro.absmac.ideal import (
            IdealMacConfig,
            IdealMacLayer,
            IdealMacNetwork,
        )
        from repro.core.events import MessageRegistry
        from repro.simulation.runtime import Runtime, RuntimeConfig
        from repro.sinr.channel import Channel
        from repro.sinr.graphs import strong_connectivity_graph

        params = SINRParameters()
        pts = multihop_line(params, hops=3)
        graph = strong_connectivity_graph(pts, params)

        # Ideal run.
        net = IdealMacNetwork(graph, IdealMacConfig(), seed=0)
        reg = MessageRegistry()
        ideal_clients = [BsmbClient() for _ in range(len(pts))]
        ideal_macs = [
            IdealMacLayer(i, reg, net, ideal_clients[i])
            for i in range(len(pts))
        ]
        ideal_rt = Runtime(
            Channel(pts, params), ideal_macs, RuntimeConfig(seed=0)
        )
        run_single_message_broadcast(
            ideal_rt, ideal_macs, ideal_clients, source=0
        )

        # SINR run.
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=FAST_APPROG,
            seed=7,
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )

        ideal_done = [c.done for c in ideal_clients]
        sinr_done = [c.done for c in stack.clients]
        assert ideal_done == sinr_done == [True] * len(pts)
