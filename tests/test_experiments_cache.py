"""Artifact cache and trial-plan primitives of repro.experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.plans import (
    DeploymentSpec,
    TrialPlan,
    TrialResult,
    seeded_plans,
)
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet, pairwise_distances
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import SINRParameters
from repro.sinr.physics import gain_matrix


@pytest.fixture
def params() -> SINRParameters:
    return SINRParameters()


class TestDeploymentSpec:
    def test_named_generator_roundtrip(self):
        spec = DeploymentSpec.of("uniform_disk", n=9, radius=7.0, seed=4)
        points = spec.build()
        assert len(points) == 9
        # Deterministic: rebuilding gives identical coordinates.
        assert np.array_equal(points.coords, spec.build().coords)

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown deployment"):
            DeploymentSpec.of("no_such_deployment", n=3)

    def test_stochastic_generator_requires_seed(self):
        # Seedless specs would be cache-shared OS-entropy draws.
        with pytest.raises(ValueError, match="explicit integer seed"):
            DeploymentSpec.of("uniform_disk", n=5, radius=4.0)
        with pytest.raises(ValueError, match="explicit integer seed"):
            DeploymentSpec.of("uniform_disk", n=5, radius=4.0, seed=None)
        # Deterministic generators take no seed and need none.
        assert DeploymentSpec.of("line_deployment", n=4, spacing=2.0)

    def test_explicit_roundtrip(self):
        original = uniform_disk(6, radius=5.0, seed=2)
        rebuilt = DeploymentSpec.explicit(original).build()
        assert np.array_equal(rebuilt.coords, original.coords)
        assert rebuilt.name == original.name

    def test_specs_hash_by_recipe(self):
        a = DeploymentSpec.of("uniform_disk", n=5, radius=3.0, seed=1)
        b = DeploymentSpec.of("uniform_disk", radius=3.0, seed=1, n=5)
        c = DeploymentSpec.of("uniform_disk", n=5, radius=3.0, seed=2)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestArtifactCache:
    def test_hit_returns_same_objects(self, params):
        cache = ArtifactCache()
        points = uniform_disk(10, radius=8.0, seed=3)
        first = cache.artifacts(points, params)
        second = cache.artifacts(points, params)
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_artifacts_correct(self, params):
        cache = ArtifactCache()
        points = uniform_disk(10, radius=8.0, seed=3)
        art = cache.artifacts(points, params)
        assert np.array_equal(
            art.distances, pairwise_distances(points.coords)
        )
        assert np.array_equal(
            art.gains, gain_matrix(params, art.distances)
        )
        assert art.metrics.n == 10
        assert art.graph.number_of_nodes() == 10

    def test_mutated_deployment_is_a_different_key(self, params):
        cache = ArtifactCache()
        points = uniform_disk(8, radius=7.0, seed=5)
        before = cache.artifacts(points, params)
        # "Mutate" the deployment: same object shape, scaled coords.
        moved = PointSet(points.coords * 1.5, name=points.name)
        after = cache.artifacts(moved, params)
        assert after is not before
        assert not np.array_equal(after.distances, before.distances)
        # The original entry is still served correctly afterwards.
        assert cache.artifacts(points, params) is before

    def test_params_participate_in_key(self, params):
        cache = ArtifactCache()
        points = uniform_disk(8, radius=7.0, seed=5)
        a = cache.artifacts(points, params)
        b = cache.artifacts(points, SINRParameters(alpha=4.0))
        assert a is not b

    def test_cached_arrays_are_frozen(self, params):
        cache = ArtifactCache()
        art = cache.artifacts(uniform_disk(6, radius=6.0, seed=1), params)
        with pytest.raises(ValueError):
            art.distances[0, 1] = 99.0
        with pytest.raises(ValueError):
            art.gains[0, 1] = 99.0

    def test_lru_eviction(self, params):
        cache = ArtifactCache(maxsize=2)
        specs = [
            DeploymentSpec.of("uniform_disk", n=4, radius=5.0, seed=s)
            for s in (1, 2, 3)
        ]
        first = cache.resolve(specs[0])
        cache.resolve(specs[1])
        cache.resolve(specs[2])  # evicts specs[0]
        assert cache.resolve(specs[0]) is not first
        assert cache.stats()["points_entries"] == 2

    def test_clear(self, params):
        cache = ArtifactCache()
        cache.artifacts(uniform_disk(5, radius=5.0, seed=1), params)
        cache.clear()
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "points_entries": 0,
            "artifact_entries": 0,
            "geometry_entries": 0,
            "sparse_entries": 0,
        }


class TestTrialPlan:
    def test_validation(self):
        spec = DeploymentSpec.of("uniform_disk", n=4, radius=5.0, seed=1)
        with pytest.raises(ValueError, match="unknown stack"):
            TrialPlan(deployment=spec, stack="bogus")
        with pytest.raises(ValueError, match="max_slots"):
            TrialPlan(deployment=spec, max_slots=0)
        with pytest.raises(ValueError, match="extra_slots"):
            TrialPlan(deployment=spec, extra_slots=-1)

    def test_options_access(self):
        spec = DeploymentSpec.of("uniform_disk", n=4, radius=5.0, seed=1)
        plan = TrialPlan(
            deployment=spec, options=TrialPlan.pack_options(waves=6, k=2)
        )
        assert plan.option("waves") == 6
        assert plan.option("missing", "fallback") == "fallback"

    def test_seeded_plans_distinct_and_labeled(self):
        spec = DeploymentSpec.of("uniform_disk", n=4, radius=5.0, seed=1)
        base = TrialPlan(deployment=spec, label="sweep")
        seeds = spawn_trial_seeds(5, seed=9)
        plans = seeded_plans(base, seeds)
        assert [p.seed for p in plans] == seeds
        assert len({p.label for p in plans}) == 5
        assert len(set(seeds)) == 5  # trial seeds are distinct

    def test_spawn_trial_seeds_deterministic(self):
        assert spawn_trial_seeds(6, seed=3) == spawn_trial_seeds(6, seed=3)
        assert spawn_trial_seeds(6, seed=3) != spawn_trial_seeds(6, seed=4)


class TestTrialResult:
    def make(self, **overrides) -> TrialResult:
        base = dict(
            label="t",
            seed=1,
            n=4,
            degree=3,
            degree_tilde=2,
            diameter=1,
            diameter_tilde=2,
            lam=2.0,
            slots=100,
            broadcasts=3,
            ack_latencies=(10, 30, 20),
            ack_completeness=1.0,
            approg_latencies=(5, 15),
            approg_episodes=4,
            transmissions=50,
            receptions=40,
            extra=(("completion", 100),),
        )
        base.update(overrides)
        return TrialResult(**base)

    def test_derived_properties(self):
        result = self.make()
        assert result.ack_mean_latency == 20.0
        assert result.ack_max_latency == 30
        assert result.approg_median_latency == 10.0
        assert result.approg_satisfied == 2
        assert result.completion == 100
        assert result.extra_value("missing", 7) == 7

    def test_empty_latencies(self):
        result = self.make(ack_latencies=(), approg_latencies=())
        assert result.ack_mean_latency is None
        assert result.ack_max_latency is None
        assert result.approg_median_latency is None

    def test_equality_is_fieldwise(self):
        assert self.make() == self.make()
        assert self.make() != self.make(slots=101)
