"""Tests for Algorithm 11.1 (combined MAC) and the Decay baseline."""

import numpy as np
import pytest

from repro.analysis.harness import (
    build_combined_stack,
    build_decay_stack,
    run_local_broadcast_experiment,
)
from repro.core.ack_protocol import AckConfig
from repro.core.approx_progress import ApproxProgressConfig, EpochSchedule
from repro.core.combined import CombinedMacLayer
from repro.core.decay import DecayConfig, DecayEngine, DecayMacLayer
from repro.core.events import MessageRegistry
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


def small_combined_setup(n_points=2, distance=5.0, seed=0):
    params = SINRParameters()
    coords = np.column_stack(
        [np.arange(n_points) * distance, np.zeros(n_points)]
    )
    pts = PointSet(coords)
    reg = MessageRegistry()
    ack_cfg = AckConfig(contention_bound=8.0, eps_ack=0.1)
    ap_cfg = ApproxProgressConfig(
        lambda_bound=4.0, eps_approg=0.2, alpha=3.0, t_scale=0.2
    )
    schedule = EpochSchedule(ap_cfg)
    macs = [
        CombinedMacLayer(i, reg, ack_cfg, schedule) for i in range(n_points)
    ]
    rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=seed))
    return rt, macs, schedule


class TestCombinedMacLayer:
    def test_broadcast_acks_and_delivers(self):
        rt, macs, _ = small_combined_setup()
        message = macs[0].bcast(payload="x")
        rt.run_until(lambda r: not macs[0].busy)
        assert message.mid in macs[0].acked_mids
        assert message.mid in macs[1].delivered_mids

    def test_even_slots_run_ack_engine_only(self):
        """Engine separation: B.1 transmissions happen on even physical
        slots, Algorithm 9.1 tuples on odd ones."""
        rt, macs, _ = small_combined_setup()
        macs[0].bcast(payload="x")
        rt.run_until(lambda r: not macs[0].busy)
        for event in rt.trace.of_kind("transmit"):
            payload = event.data
            if isinstance(payload, tuple):  # est/mis coordination message
                assert event.slot % 2 == 1
        # BcastMessages can appear on both parities (both engines carry
        # them), so no assertion on those.

    def test_ack_latency_doubles_engine_time(self):
        """The interleave costs exactly 2x: the ack arrives at an even
        physical slot ~ 2x the engine's internal halt time."""
        rt, macs, _ = small_combined_setup()
        macs[0].bcast()
        rt.run_until(lambda r: not macs[0].busy)
        ack_event = rt.trace.of_kind("ack")[0]
        engine_slots = (ack_event.slot // 2) + 1
        cfg = macs[0].ack_config
        # Engine halts within its budget-driven schedule; sanity-check
        # the physical latency is about twice the engine's slot count.
        assert ack_event.slot >= engine_slots

    def test_abort_silences_node(self):
        rt, macs, schedule = small_combined_setup()
        macs[0].bcast()
        rt.run(10)
        macs[0].abort()
        start = len(
            [
                e
                for e in rt.trace.of_kind("transmit")
                if e.node == 0
            ]
        )
        # After the abort the node has no message: B.1 stops instantly,
        # Algorithm 9.1 leaves S_1 at the next epoch boundary (§11.1),
        # so transmissions must stop within one epoch.
        rt.run(2 * 2 * schedule.epoch_slots)
        tail = [
            e
            for e in rt.trace.of_kind("transmit")
            if e.node == 0 and e.slot >= 2 * 2 * schedule.epoch_slots
        ]
        assert not tail

    def test_full_contract_on_deployment(self):
        params = SINRParameters()
        pts = uniform_disk(15, radius=9.0, seed=41)
        stack = build_combined_stack(
            pts,
            params,
            approg_config=ApproxProgressConfig(
                lambda_bound=8.0, eps_approg=0.2, t_scale=0.2
            ),
            seed=5,
        )
        report, progress = run_local_broadcast_experiment(
            stack, broadcasters=[0, 5, 10]
        )
        assert all(r.ack_slot is not None for r in report.records)
        assert report.completeness_fraction() >= 0.6
        assert progress.records
        # Everyone with a broadcasting G-tilde neighbor heard something.
        assert progress.success_fraction(stack.runtime.slot) >= 0.8


class TestDecayEngine:
    def test_probability_sweep(self):
        cfg = DecayConfig(contention_bound=16.0, eps_ack=0.1)
        assert cfg.phase_length == 5  # ceil(log2 16) + 1

    def test_budget_is_whole_phases(self):
        cfg = DecayConfig(contention_bound=16.0, eps_ack=0.1)
        assert cfg.ack_budget_slots % cfg.phase_length == 0

    def test_halts_exactly_at_budget(self):
        cfg = DecayConfig(contention_bound=8.0, eps_ack=0.2)
        engine = DecayEngine(cfg, np.random.default_rng(0))
        for _ in range(cfg.ack_budget_slots):
            assert not engine.halted
            engine.step()
        assert engine.halted

    def test_transmits_sometimes(self):
        cfg = DecayConfig(contention_bound=8.0, eps_ack=0.2)
        engine = DecayEngine(cfg, np.random.default_rng(1))
        while not engine.halted:
            engine.step()
        assert engine.transmissions > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayConfig(contention_bound=1.0)
        with pytest.raises(ValueError):
            DecayConfig(contention_bound=8.0, eps_ack=0.0)
        with pytest.raises(ValueError):
            DecayConfig(contention_bound=8.0, ack_factor=0.0)


class TestDecayMacLayer:
    def test_broadcast_and_ack(self):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0], [5.0, 0.0]]))
        reg = MessageRegistry()
        cfg = DecayConfig(contention_bound=4.0, eps_ack=0.2)
        macs = [DecayMacLayer(i, reg, cfg) for i in range(2)]
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        m = macs[0].bcast(payload="d")
        rt.run_until(lambda r: not macs[0].busy)
        assert m.mid in macs[0].acked_mids
        assert m.mid in macs[1].delivered_mids

    def test_ack_latency_matches_budget(self):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0], [5.0, 0.0]]))
        reg = MessageRegistry()
        cfg = DecayConfig(contention_bound=4.0, eps_ack=0.2)
        macs = [DecayMacLayer(i, reg, cfg) for i in range(2)]
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        macs[0].bcast()
        rt.run_until(lambda r: not macs[0].busy)
        ack = rt.trace.of_kind("ack")[0]
        assert ack.slot == cfg.ack_budget_slots - 1

    def test_decay_stack_on_deployment(self):
        params = SINRParameters()
        pts = uniform_disk(12, radius=8.0, seed=51)
        stack = build_decay_stack(pts, params, eps_ack=0.1, seed=6)
        report, _ = run_local_broadcast_experiment(stack, [0, 4, 8])
        assert all(r.ack_slot is not None for r in report.records)
        assert report.completeness_fraction() >= 0.6
