"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.deployment import grid_deployment, uniform_disk
from repro.geometry.points import PointSet
from repro.sinr.params import SINRParameters


@pytest.fixture
def params() -> SINRParameters:
    """Default SINR parameters used across tests.

    R = (1 / (1.5e-4))^(1/3) ≈ 18.8, R_{1-ε} ≈ 16.9.
    """
    return SINRParameters(
        power=1.0, alpha=3.0, beta=1.5, noise=1.0e-4, epsilon=0.1
    )


@pytest.fixture
def two_node_points() -> PointSet:
    """Two nodes five units apart (well inside the strong range)."""
    return PointSet(np.array([[0.0, 0.0], [5.0, 0.0]]))


@pytest.fixture
def small_disk() -> PointSet:
    """A 15-node random disk deployment (dense, single-hop-ish)."""
    return uniform_disk(15, radius=8.0, seed=42)


@pytest.fixture
def medium_disk() -> PointSet:
    """A 30-node random disk deployment."""
    return uniform_disk(30, radius=12.0, seed=7)


@pytest.fixture
def grid_3x3() -> PointSet:
    """3x3 grid with spacing 4."""
    return grid_deployment(3, 3, spacing=4.0)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.default_rng(1234)
