"""Failure-injection tests: protocols under erasures and jamming.

Exercises the unreliability paths of §10.1.2 (unsuccessful
transmissions): Algorithm 9.1's drop-out machinery, Algorithm B.1's
behaviour when acks ride on a lossy channel, and protocol-level
robustness of BSMB.
"""

from repro.analysis.harness import (
    build_ack_stack,
    build_approg_stack,
    build_combined_stack,
    run_local_broadcast_experiment,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import line_deployment, uniform_disk
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.sinr.channel import JammingAdversary
from repro.sinr.params import SINRParameters

import numpy as np


FAST_APPROG = ApproxProgressConfig(
    lambda_bound=4.0, eps_approg=0.2, alpha=3.0, t_scale=0.2, bcast_scale=4.0
)


class TestAckUnderErasures:
    def test_acks_still_fire_under_light_loss(self):
        """The B.1 halt condition is budget-based, so acks always fire;
        loss only hurts *completeness*."""
        params = SINRParameters()
        pts = uniform_disk(10, radius=8.0, seed=71)
        adversary = JammingAdversary(
            drop_probability=0.2, rng=np.random.default_rng(0)
        )
        stack = build_ack_stack(
            pts, params, eps_ack=0.1, seed=8, adversary=adversary
        )
        report, _ = run_local_broadcast_experiment(stack, [0, 3, 6])
        assert all(r.ack_slot is not None for r in report.records)

    def test_heavy_loss_degrades_completeness(self):
        params = SINRParameters()
        pts = uniform_disk(10, radius=8.0, seed=71)

        def completeness(drop):
            adversary = JammingAdversary(
                drop_probability=drop, rng=np.random.default_rng(1)
            )
            stack = build_ack_stack(
                pts, params, eps_ack=0.1, seed=9, adversary=adversary
            )
            report, _ = run_local_broadcast_experiment(stack, list(range(10)))
            total = sum(r.neighbor_count for r in report.records)
            covered = sum(r.covered_by_ack for r in report.records)
            return covered / max(total, 1)

        assert completeness(0.95) < completeness(0.0)


def paired_layout(n_pairs=4, pair_distance=2.0, pair_spacing=60.0):
    """Pairs of close nodes, pairs far apart: every node's reliability
    neighbor is exactly its partner, so H̃̃ edges form deterministically
    and the MIS machinery genuinely engages."""
    from repro.geometry.points import PointSet

    coords = []
    for k in range(n_pairs):
        coords.append([k * pair_spacing, 0.0])
        coords.append([k * pair_spacing + pair_distance, 0.0])
    return PointSet(np.array(coords), name=f"pairs({n_pairs})")


PAIRS_CONFIG = ApproxProgressConfig(
    lambda_bound=4.0,
    eps_approg=0.2,
    alpha=3.0,
    p=0.25,
    mu=0.03,
    t_scale=0.2,
    bcast_scale=4.0,
)


def run_pairs(adversary=None, seed=10, epochs=1):
    params = SINRParameters()
    pts = paired_layout()
    stack = build_approg_stack(
        pts,
        params,
        approg_config=PAIRS_CONFIG,
        seed=seed,
        adversary=adversary,
    )
    schedule = stack.macs[0].schedule
    for mac in stack.macs:
        mac.bcast(payload=f"m{mac.node_id}")
    stack.runtime.run(epochs * schedule.epoch_slots)
    return stack, schedule


class TestApprogDropout:
    def test_neighbors_form_on_clean_channel(self):
        """Sanity precondition: partners detect each other as H̃̃
        neighbors during estimation (inspected right after phase 0's
        est2 block, before per-phase state resets)."""
        params = SINRParameters()
        stack = build_approg_stack(
            paired_layout(), params, approg_config=PAIRS_CONFIG, seed=10
        )
        for mac in stack.macs:
            mac.bcast(payload=f"m{mac.node_id}")
        t = PAIRS_CONFIG.repetitions
        stack.runtime.run(2 * t + 2)  # est1 + est2 + into the MIS block
        with_neighbors = sum(
            1
            for mac in stack.macs
            if mac.engine is not None and mac.engine._neighbors
        )
        assert with_neighbors >= 6  # most of the 8 nodes

    def test_jammed_mis_round_causes_dropouts(self):
        """Jamming one whole MIS round makes every node with an H̃̃
        neighbor miss it and drop out (§9.3.2's unsuccessful
        communication rule)."""
        t = PAIRS_CONFIG.repetitions
        first_round = set(range(2 * t, 3 * t))
        stack, _ = run_pairs(
            adversary=JammingAdversary(jam_slots=first_round), seed=10
        )
        drops = sum(
            mac.engine.drops for mac in stack.macs if mac.engine is not None
        )
        assert drops >= 6

    def test_clean_channel_has_no_dropouts(self):
        """Replay determinism (§9.3.2): reliable estimation-phase links
        re-deliver during MIS rounds, so no node should drop out."""
        stack, _ = run_pairs(seed=11)
        drops = sum(
            mac.engine.drops for mac in stack.macs if mac.engine is not None
        )
        assert drops == 0

    def test_mis_sparsifies_pairs(self):
        """The §9 sparsification cascade in its cleanest form: after one
        phase, exactly one member of each pair survives into S_2."""
        stack, schedule = run_pairs(seed=12)
        # Inspect engine state right after phase 0's membership
        # transition: run one more phase so _finish_phase applied.
        survivors = [
            mac.node_id
            for mac in stack.macs
            if mac.engine is not None and mac.engine._in_s
        ]
        # One survivor per pair at most; at least half the pairs settle.
        for k in range(4):
            pair = {2 * k, 2 * k + 1}
            assert len(pair & set(survivors)) <= 1


class TestBsmbUnderJamming:
    def test_broadcast_completes_despite_jam_window(self):
        """BSMB rides out a fully-jammed window: broadcasts straddling
        the window still deliver afterwards because B.1 keeps
        transmitting until its budget is spent."""
        params = SINRParameters()
        spacing = params.strong_range * 0.9
        pts = line_deployment(4, spacing=spacing)
        adversary = JammingAdversary(jam_slots=set(range(50, 150)))
        stack = build_combined_stack(
            pts,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=FAST_APPROG,
            seed=12,
            adversary=adversary,
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)
        assert adversary.erased_count > 0  # the jam actually bit
