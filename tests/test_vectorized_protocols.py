"""Columnar protocol kernels (BSMB/BMMB/consensus): decode-for-decode
identity with the object runtime.

The same three layers of evidence as ``test_vectorized_equivalence.py``
pins for the Decay/Ack MAC kernels, one level up the stack:

* **results** — ``run_trials`` over {smb, mmb, consensus} × {decay, ack}
  × {1, 8 trials} × {sync, staggered start} (and k ∈ {1, 4} messages
  for BMMB) returns dataclass-equal :class:`TrialResult` lists with
  ``vectorize=True`` and ``vectorize=False``;
* **traces** — direct :class:`VectorRuntime`-with-adapter vs object
  :class:`Runtime` comparisons of the full per-kind event streams,
  including the protocol-layer kinds (``bcast`` of relays/waves,
  ``decide``);
* **state machinery** — rebroadcast kernel resets, FIFO queue columns,
  and the max-(id, value) flood columns behave exactly like their
  object twins, including under failure injection (the adversary
  delivery path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.harness import build_ack_stack, build_decay_stack
from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.cache import deployment_artifacts, resolve_deployment
from repro.protocols.bmmb import BmmbClient
from repro.protocols.bsmb import BsmbClient
from repro.protocols.consensus import ConsensusClient
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.channel import Channel, JammingAdversary
from repro.vectorized import (
    AckKernel,
    BmmbClients,
    BsmbClients,
    ConsensusClients,
    DecayKernel,
    VectorMacAdapter,
    VectorRuntime,
    vector_eligible,
)

N = 12
RADIUS = 9.0
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=RADIUS, seed=33)

WAVES = 4
EVENT_KINDS = (
    "bcast",
    "wake",
    "transmit",
    "receive",
    "rcv",
    "ack",
    "decide",
)


def protocol_plan(workload, stack, **kwargs):
    if workload == "smb":
        options = TrialPlan.pack_options(
            source=kwargs.pop("source", 0)
        )
    elif workload == "mmb":
        options = TrialPlan.pack_options(arrivals=kwargs.pop("arrivals"))
    else:
        options = TrialPlan.pack_options(
            waves=WAVES, values=kwargs.pop("values", None)
        )
    return TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=workload,
        options=options,
        label=f"eq-{workload}-{stack}",
        **kwargs,
    )


# -- result-level equivalence (the acceptance matrix) -----------------------


@pytest.mark.slow
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize("source", [0, 7], ids=["sync", "staggered"])
def test_smb_results_bit_identical(stack, trials, source):
    plans = seeded_plans(
        protocol_plan("smb", stack, source=source),
        spawn_trial_seeds(trials, seed=5),
    )
    assert all(vector_eligible(plan) for plan in plans)
    vec = run_trials(plans, vectorize=True)
    obj = run_trials(plans, vectorize=False)
    assert vec == obj
    # The broadcast really crossed the network: every completion is a
    # positive slot count and relays transmitted beyond the source.
    assert all(result.completion > 0 for result in vec)
    assert all(result.broadcasts == N for result in vec)


@pytest.mark.slow
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize("k", [1, 4])
@pytest.mark.parametrize("spread", [False, True], ids=["sync", "staggered"])
def test_mmb_results_bit_identical(stack, trials, k, spread):
    tokens = tuple(f"msg-{j}" for j in range(k))
    if spread:
        arrivals = tuple(
            (j % N, (token,)) for j, token in enumerate(tokens)
        )
    else:
        arrivals = ((0, tokens),)
    plans = seeded_plans(
        protocol_plan("mmb", stack, arrivals=arrivals),
        spawn_trial_seeds(trials, seed=6),
    )
    assert all(vector_eligible(plan) for plan in plans)
    vec = run_trials(plans, vectorize=True)
    obj = run_trials(plans, vectorize=False)
    assert vec == obj
    assert all(result.completion > 0 for result in vec)
    # Relaying happened (the final relays may still await their acks at
    # the completion slot, so the acked count is below n·k).
    assert all(result.broadcasts >= N for result in vec)


@pytest.mark.slow
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize("explicit_values", [False, True])
def test_consensus_results_bit_identical(stack, trials, explicit_values):
    values = tuple(1 - (i % 2) for i in range(N)) if explicit_values else None
    plans = seeded_plans(
        protocol_plan("consensus", stack, values=values),
        spawn_trial_seeds(trials, seed=7),
    )
    assert all(vector_eligible(plan) for plan in plans)
    vec = run_trials(plans, vectorize=True)
    obj = run_trials(plans, vectorize=False)
    assert vec == obj
    expected = (
        values[N - 1] if explicit_values else (N - 1) % 2
    )  # max-id node's input
    for result in vec:
        assert result.extra_value("agreed") is True
        assert result.extra_value("decided_value") == expected
        # Every node performed all its waves: n·waves acked broadcasts.
        assert result.broadcasts == N * WAVES


def test_mixed_protocol_sweep_one_call():
    """One run_trials call mixing all three protocol workloads (and a
    bare one) over one deployment: the engine must split them into
    per-workload vector batches and still match the object path."""
    plans = [
        protocol_plan("smb", "decay", seed=3),
        protocol_plan("consensus", "decay", seed=4),
        protocol_plan("mmb", "decay", arrivals=((0, ("a", "b")),), seed=5),
        TrialPlan(
            deployment=DEPLOYMENT,
            stack="decay",
            workload="local_broadcast",
            seed=6,
        ),
    ]
    assert run_trials(plans, vectorize=True) == run_trials(
        plans, vectorize=False
    )


def test_combined_stack_protocols_stay_on_object_path():
    """The Table-1 headline stack (Algorithm 11.1) has no columnar
    kernel: protocol plans over it are ineligible and auto-selection
    must route them to the object executor unchanged."""
    plan = protocol_plan("smb", "decay")
    combined = TrialPlan(
        deployment=DEPLOYMENT,
        stack="combined",
        workload="smb",
        options=TrialPlan.pack_options(source=0),
    )
    assert vector_eligible(plan)
    assert not vector_eligible(combined)
    with pytest.raises(ValueError, match="not columnar-eligible"):
        run_trials([combined], vectorize=True)


# -- trace-level equivalence ------------------------------------------------


def _artifacts():
    points = resolve_deployment(DEPLOYMENT)
    params = TrialPlan(deployment=DEPLOYMENT).params
    return points, params, deployment_artifacts(points, params)


def _mac_config(stack):
    return (
        DecayConfig(contention_bound=16.0, eps_ack=0.2)
        if stack == "decay"
        else AckConfig(contention_bound=24.0, eps_ack=0.2)
    )


def _object_protocol_stack(stack, workload, seed, slots, drop=0.0):
    points, params, artifacts = _artifacts()
    config = _mac_config(stack)
    builder = build_decay_stack if stack == "decay" else build_ack_stack
    if workload == "smb":
        factory = lambda i: BsmbClient()  # noqa: E731
    elif workload == "mmb":
        factory = lambda i: BmmbClient()  # noqa: E731
    else:
        factory = lambda i: ConsensusClient(i, i % 2, waves=WAVES)  # noqa: E731
    adversary = (
        JammingAdversary(drop_probability=drop, rng=np.random.default_rng(1))
        if drop
        else None
    )
    kwargs = dict(
        client_factory=factory,
        seed=seed,
        adversary=adversary,
    )
    if stack == "decay":
        stack_bundle = builder(points, params, decay_config=config, **kwargs)
    else:
        stack_bundle = builder(points, params, ack_config=config, **kwargs)
    _start_object_workload(stack_bundle, workload)
    stack_bundle.runtime.run(slots)
    return stack_bundle.runtime


def _start_object_workload(bundle, workload):
    if workload == "smb":
        bundle.clients[0].start_as_source(bundle.macs[0], "smb-message")
    elif workload == "mmb":
        arrivals = {0: ["m-a", "m-b"], 3: ["m-c"]}
        for node, tokens in arrivals.items():
            bundle.macs[node].wake()
            for token in tokens:
                bundle.clients[node].arrive(token, slot=0)
    else:
        for mac in bundle.macs:
            mac.wake()


def _vector_protocol_stack(stack, workload, seed, slots, drop=0.0):
    points, params, artifacts = _artifacts()
    config = _mac_config(stack)
    kernel_cls = DecayKernel if stack == "decay" else AckKernel
    adversary = (
        JammingAdversary(drop_probability=drop, rng=np.random.default_rng(1))
        if drop
        else None
    )
    channel = Channel(
        points,
        params,
        adversary=adversary,
        distances=artifacts.distances,
        gains=artifacts.gains,
    )
    runtime = VectorRuntime([channel], kernel_cls([config], N), seeds=[seed])
    adapter = VectorMacAdapter(runtime)
    if workload == "smb":
        clients = BsmbClients(adapter)
        adapter.install(clients)
        clients.start_as_source(0, 0, "smb-message")
    elif workload == "mmb":
        clients = BmmbClients(adapter, [["m-a", "m-b", "m-c"]])
        adapter.install(clients)
        for node, tokens in ((0, ["m-a", "m-b"]), (3, ["m-c"])):
            runtime.wake_node(0, node)
            for token in tokens:
                clients.arrive(0, node, token)
    else:
        clients = ConsensusClients(
            adapter, waves=[WAVES], values=[[i % 2 for i in range(N)]]
        )
        adapter.install(clients)
        clients.start(0)
    runtime.run(slots)
    return runtime


def _stream(trace, kind):
    """The (slot, node, data) stream of one event kind, normalizing
    message objects to their mids."""
    out = []
    for event in trace:
        if event.kind != kind:
            continue
        data = event.data
        if kind == "transmit":
            data = data.mid
        elif kind == "receive":
            sender, payload = data
            data = (sender, payload.mid)
        out.append((event.slot, event.node, data))
    return out


@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("workload", ["smb", "mmb", "consensus"])
def test_trace_streams_bit_identical(stack, workload):
    """Every per-kind event stream — including the protocol-layer
    ``bcast`` rebroadcasts and consensus ``decide`` outputs — must
    match the object runtime event for event."""
    slots = 420 if stack == "decay" else 700
    if workload == "consensus" and stack == "ack":
        slots = 4200  # four Algorithm-B.1 waves need room to complete
    obj = _object_protocol_stack(stack, workload, 77, slots)
    vec = _vector_protocol_stack(stack, workload, 77, slots)
    for kind in EVENT_KINDS:
        assert _stream(vec.trace, kind) == _stream(obj.trace, kind), kind
    assert len(vec.trace) == len(obj.trace)
    assert vec.slot == obj.slot == slots
    assert (
        vec.channels[0].total_transmissions
        == obj.channel.total_transmissions
    )
    assert vec.channels[0].total_receptions == obj.channel.total_receptions
    # The run exercised the reactive layer: relays/waves rebroadcast.
    assert len(_stream(obj.trace, "bcast")) > 1
    assert _stream(obj.trace, "rcv")
    if workload == "consensus":
        assert _stream(obj.trace, "decide")


@pytest.mark.parametrize("workload", ["mmb", "consensus"])
def test_trace_streams_with_failure_injection(workload):
    """The adversary delivery path: erased receptions must suppress the
    same wakes/rcvs/client reactions on both executors (same adversary
    RNG stream), including the Ack fallback feedback."""
    slots = 700
    obj = _object_protocol_stack("ack", workload, 11, slots, drop=0.3)
    vec = _vector_protocol_stack("ack", workload, 11, slots, drop=0.3)
    for kind in EVENT_KINDS:
        assert _stream(vec.trace, kind) == _stream(obj.trace, kind), kind
    assert (
        vec.channels[0].adversary.erased_count
        == obj.channel.adversary.erased_count
        > 0
    )


# -- rebroadcast state machinery --------------------------------------------


@pytest.mark.parametrize("kernel_cls", [DecayKernel, AckKernel])
def test_kernel_reset_restores_fresh_engine_state(kernel_cls):
    """reset() must reproduce freshly constructed engine columns — the
    rebroadcast rule's foundation."""
    config = (
        DecayConfig(contention_bound=16.0)
        if kernel_cls is DecayKernel
        else AckConfig(contention_bound=8.0, eps_ack=0.3)
    )
    fresh = kernel_cls([config], 4)
    used = kernel_cls([config], 4)
    idx = np.arange(4, dtype=np.intp)
    rng = np.random.default_rng(2)
    for _ in range(30):
        used.step(idx, rng.random(4))
        used.notify(idx)
    used.reset(idx)
    for name, column in vars(fresh).items():
        if isinstance(column, np.ndarray):
            assert np.array_equal(
                column, getattr(used, name)
            ), f"column {name} not restored by reset()"


def test_rebroadcast_requires_idle_cell():
    points, params, artifacts = _artifacts()
    channel = Channel(
        points,
        params,
        distances=artifacts.distances,
        gains=artifacts.gains,
    )
    runtime = VectorRuntime(
        [channel],
        DecayKernel([DecayConfig(contention_bound=16.0)], N),
        seeds=[0],
    )
    runtime.bcast(0, 2, payload="first")
    with pytest.raises(RuntimeError, match="already broadcasting"):
        runtime.bcast(0, 2, payload="second")
