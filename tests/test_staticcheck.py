"""reprolint's own test suite: every rule, fixture-driven.

Each rule family gets three kinds of fixture: a positive hit (the
violation is found), a clean pass (the compliant spelling is not), and
a suppression check (the marker silences exactly that rule and nothing
else).  On top sit the engine-level contracts — parse failures are
findings (E100), suppressions must be justified (S100) and live (S101),
the baseline downgrades to warnings without touching the exit code
logic, and the JSON report is schema-stable.  The final section scans
the repository itself: HEAD must be clean, which is the acceptance
criterion `make staticcheck` enforces in CI.

Fixtures are written into tmp trees, never into the repo — and tests/
is outside reprolint's scan roots precisely so the forbidden spellings
in this file cannot trip the self-scan.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import RULES, run_analysis
from repro.staticcheck.engine import JSON_SCHEMA_VERSION

REPO = Path(__file__).resolve().parents[1]

ALL_RULE_IDS = {
    "E100", "S100", "S101",
    "D101", "D102", "D103", "D104",
    "C101", "C102", "C103",
    "P100", "P101", "P102",
    "X101", "X102", "X103",
    "R101", "R102",
}


def analyze(tmp_path: Path, files: dict[str, str], paths=None, baseline=None):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return run_analysis(tmp_path, paths=paths, baseline=baseline)


def hits(report, rule_id: str):
    return [f for f in report.findings if f.rule == rule_id]


# -- registry ----------------------------------------------------------------


def test_rule_registry_is_exactly_the_documented_set():
    assert set(RULES) == ALL_RULE_IDS


def test_every_rule_has_family_and_summary():
    for entry in RULES.values():
        assert entry.family
        assert entry.summary


# -- determinism (D1xx) ------------------------------------------------------


class TestDeterminism:
    def test_d101_flags_np_random_module_functions(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                x = np.random.rand(3)
            """},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "D101")) == 1
        assert report.exit_code == 1

    def test_d101_flags_from_import_of_global_stream_function(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": "from numpy.random import randint\n"},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "D101")) == 1

    def test_d101_clean_on_seeded_generator_api(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                from numpy.random import default_rng
                rng = np.random.default_rng(7)
                seq = np.random.SeedSequence(11)
                other = default_rng(3)
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D101")
        assert report.exit_code == 0

    def test_d101_suppression_is_honored(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                x = np.random.rand(3)  # reprolint: ignore[D101] — fixture exercising the marker
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D101")
        assert not hits(report, "S100")
        assert not hits(report, "S101")
        assert report.exit_code == 0

    def test_d102_flags_stdlib_random_in_src_only(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/mod.py": "import random\n",
                "scripts/tool.py": "import random\n",
            },
            paths=["src/mod.py", "scripts/tool.py"],
        )
        found = hits(report, "D102")
        assert len(found) == 1
        assert found[0].file == "src/mod.py"

    def test_d102_flags_from_import(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": "from random import choice\n"},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "D102")) == 1

    def test_d103_flags_unseeded_construction(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                from numpy.random import default_rng
                a = np.random.default_rng()
                b = default_rng()
                c = np.random.default_rng(None)
                d = np.random.PCG64()
            """},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "D103")) == 4

    def test_d103_clean_when_seeded(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                a = np.random.default_rng(42)
                b = np.random.SeedSequence(entropy=7)
                c = np.random.PCG64(9)
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D103")

    def test_d103_exempts_the_rng_module(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/simulation/rng.py": """\
                import numpy as np
                FALLBACK = np.random.default_rng()
            """},
            paths=["src/repro/simulation/rng.py"],
        )
        assert not hits(report, "D103")

    def test_d104_flags_wall_clock_seed(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import time
                import numpy as np
                rng = np.random.default_rng(int(time.time()))
                plan = make_plan(seed=time.time_ns())
            """},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "D104")) == 2

    def test_d104_clean_on_explicit_seed(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                rng = np.random.default_rng(42)
                plan = make_plan(seed=13)
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D104")


# -- concurrency (C1xx) ------------------------------------------------------


SERVICE = "src/repro/service/mod.py"


class TestConcurrency:
    def test_c101_flags_sleep_under_lock(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                import time
                def work(self):
                    with self._lock:
                        time.sleep(1.0)
            """},
            paths=[SERVICE],
        )
        assert len(hits(report, "C101")) == 1

    def test_c101_flags_untimed_get_under_lock(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                def drain(self):
                    with self._lock:
                        item = self.task_q.get()
            """},
            paths=[SERVICE],
        )
        assert hits(report, "C101")

    def test_c101_clean_outside_lock_and_in_nested_defs(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                import time
                def work(self):
                    with self._lock:
                        def later():
                            time.sleep(1.0)  # runs off the lock
                        callbacks.append(later)
                    time.sleep(0.1)
            """},
            paths=[SERVICE],
        )
        assert not hits(report, "C101")

    def test_c101_ignored_outside_service_scope(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/other/mod.py": """\
                import time
                def work(self):
                    with self._lock:
                        time.sleep(1.0)
            """},
            paths=["src/repro/other/mod.py"],
        )
        assert not hits(report, "C101")

    def test_c102_flags_untimed_queue_get(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: "message = task_q.get()\n"},
            paths=[SERVICE],
        )
        assert len(hits(report, "C102")) == 1

    def test_c102_flags_bound_get_passed_as_callable(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: "event = loop.run_in_executor(None, job.events.get)\n"},
            paths=[SERVICE],
        )
        assert len(hits(report, "C102")) == 1

    def test_c102_clean_with_timeout_or_non_queue_receiver(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                a = task_q.get(timeout=0.5)
                b = task_q.get(block=False)
                c = options.get("key")
            """},
            paths=[SERVICE],
        )
        assert not hits(report, "C102")

    def test_c102_suppression_is_honored(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: (
                "message = task_q.get()  "
                "# reprolint: ignore[C102] — fixture: idle wait by design\n"
            )},
            paths=[SERVICE],
        )
        assert not hits(report, "C102")
        assert report.exit_code == 0

    def test_c103_flags_mutable_class_state(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                class Scheduler:
                    pending = []
                    registry = {}
            """},
            paths=[SERVICE],
        )
        assert len(hits(report, "C103")) == 2

    def test_c103_clean_on_instance_state_and_field_factory(self, tmp_path):
        report = analyze(
            tmp_path,
            {SERVICE: """\
                from dataclasses import dataclass, field

                @dataclass
                class Job:
                    results: list = field(default_factory=list)

                class Scheduler:
                    workers = 2
                    def __init__(self):
                        self.pending = []
            """},
            paths=[SERVICE],
        )
        assert not hits(report, "C103")


# -- executor parity (X1xx) --------------------------------------------------


class TestParity:
    def test_x101_flags_missing_vector_twin(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                class SweepWorkload(Workload):
                    def vector_ready(self, plan):
                        return True
                    def finalize(self, stack, plan, completion):
                        return {"completion": completion}
            """},
            paths=["src/mod.py"],
        )
        found = hits(report, "X101")
        assert len(found) == 1
        assert "vector_finalize" in found[0].message

    def test_x101_clean_with_twin_or_marker(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                class PairedWorkload(Workload):
                    def vector_ready(self, plan):
                        return True
                    def finalize(self, stack, plan, completion):
                        return {"completion": completion}
                    def vector_finalize(self, runtime, trial, plan, completion):
                        return {"completion": completion}

                class ObjectOnlyWorkload(Workload):
                    vector_ineligible = True
                    def finalize(self, stack, plan, completion):
                        return {"completion": completion}
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "X101")

    def test_x101_suppression_is_honored(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                class SweepWorkload(Workload):  # reprolint: ignore[X101] — fixture: twin lands next commit
                    def finalize(self, stack, plan, completion):
                        return {"completion": completion}
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "X101")
        assert report.exit_code == 0

    def test_x102_flags_gateless_vector_hooks(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                class HalfWorkload(Workload):
                    def vector_start(self, runtime, trial, plan):
                        pass
            """},
            paths=["src/mod.py"],
        )
        assert len(hits(report, "X102")) == 1

    def test_x102_clean_with_gate_or_deep_subclass(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                class GatedWorkload(Workload):
                    def vector_ready(self, plan):
                        return True
                    def vector_start(self, runtime, trial, plan):
                        pass

                class Derived(GatedWorkload):
                    def vector_start(self, runtime, trial, plan):
                        pass
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "X102")

    _X103_RUNTIME = """\
        class VectorRuntime:
            def _native_ok(self):
                return (
                    self._use_native
                    and self.adapter is None
                    and self._seen is not None
                )
    """

    def test_x103_flags_predicate_without_table_row(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/repro/vectorized/runtime.py": self._X103_RUNTIME,
                "tests/test_native_equivalence.py": """\
                    NATIVE_ELIGIBILITY_CASES = [
                        ("_use_native", None, False),
                        ("adapter", None, False),
                    ]
                """,
            },
        )
        found = hits(report, "X103")
        assert len(found) == 1
        assert "_seen" in found[0].message
        assert "add a selection test" in found[0].message

    def test_x103_flags_stale_table_row(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/repro/vectorized/runtime.py": self._X103_RUNTIME,
                "tests/test_native_equivalence.py": """\
                    NATIVE_ELIGIBILITY_CASES = [
                        ("_use_native", None, False),
                        ("adapter", None, False),
                        ("_seen", None, False),
                        ("_retired_knob", None, False),
                    ]
                """,
            },
        )
        found = hits(report, "X103")
        assert len(found) == 1
        assert "_retired_knob" in found[0].message
        assert "stale" in found[0].message

    def test_x103_clean_when_matched(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/repro/vectorized/runtime.py": self._X103_RUNTIME,
                "tests/test_native_equivalence.py": """\
                    NATIVE_ELIGIBILITY_CASES = [
                        ("_use_native", None, False),
                        ("adapter", None, False),
                        ("_seen", None, False),
                    ]
                """,
            },
        )
        assert not hits(report, "X103")

    def test_x103_missing_table_is_an_error(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/vectorized/runtime.py": self._X103_RUNTIME},
        )
        found = hits(report, "X103")
        assert len(found) == 1
        assert "NATIVE_ELIGIBILITY_CASES" in found[0].message

    def test_x103_silent_without_the_runtime_module(self, tmp_path):
        # Synthetic fixture trees (every other test here) must not trip
        # the project rule just because they scan no runtime at all.
        report = analyze(tmp_path, {"src/mod.py": "x = 1\n"})
        assert not hits(report, "X103")


# -- plan purity (P1xx) ------------------------------------------------------


def purity_tree(
    deployment_frozen=True, extra_plan_field="", extra_defs="",
    wire_extra="", wire_body=None,
):
    deployment_deco = (
        "@dataclass(frozen=True)" if deployment_frozen else "@dataclass"
    )
    wire = wire_body if wire_body is not None else f"""\
        WIRE_TYPES: dict[str, type] = {{
            cls.__name__: cls
            for cls in (
                TrialPlan,
                TrialResult,
                ExecutionPolicy,
                DeploymentSpec,{wire_extra}
            )
        }}
    """
    files = {
        "src/repro/experiments/plans.py": f"""\
            from dataclasses import dataclass, field

            {deployment_deco}
            class DeploymentSpec:
                kind: str

            @dataclass(frozen=True)
            class TrialPlan:
                deployment: DeploymentSpec
                seed: int = 0
                {extra_plan_field}

            @dataclass(frozen=True)
            class TrialResult:
                completion: int
        """,
        "src/repro/experiments/policy.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExecutionPolicy:
                workers: int = 1
        """,
        "src/repro/service/wire.py": wire,
    }
    if extra_defs:
        # A sibling module: the traversal resolves annotation names
        # against the whole src/ dataclass index, not one file.
        files["src/repro/experiments/specs.py"] = (
            "from dataclasses import dataclass, field\n\n"
            + textwrap.dedent(extra_defs)
        )
    return files


class TestPurity:
    def test_clean_tree_has_no_purity_findings(self, tmp_path):
        report = analyze(tmp_path, purity_tree())
        assert not [
            f for f in report.findings if f.rule.startswith("P")
        ]

    def test_p101_flags_unfrozen_reachable_dataclass(self, tmp_path):
        report = analyze(tmp_path, purity_tree(deployment_frozen=False))
        found = hits(report, "P101")
        assert len(found) == 1
        assert "DeploymentSpec" in found[0].message

    def test_p102_flags_unregistered_reachable_dataclass(self, tmp_path):
        report = analyze(
            tmp_path,
            purity_tree(
                extra_defs="""\
            @dataclass(frozen=True)
            class ByzantineSpec:
                faults: int = 0
            """,
                extra_plan_field="byzantine: ByzantineSpec | None = None",
            ),
        )
        found = hits(report, "P102")
        assert len(found) == 1
        assert "ByzantineSpec" in found[0].message

    def test_p102_exempts_bases_but_requires_their_subclasses(self, tmp_path):
        report = analyze(
            tmp_path,
            purity_tree(
                extra_defs="""\
            @dataclass(frozen=True)
            class TopologyProvider:
                pass

            @dataclass(frozen=True)
            class StaticTopology(TopologyProvider):
                n: int = 0

            @dataclass(frozen=True)
            class ChurnSchedule(TopologyProvider):
                events: tuple = ()
            """,
                extra_plan_field="topology: TopologyProvider | None = None",
                wire_extra="\n        StaticTopology,",
            ),
        )
        found = hits(report, "P102")
        # The abstract base is exempt; registered StaticTopology passes;
        # unregistered ChurnSchedule (reached via the subclass edge,
        # not any field annotation) is the one violation.
        assert len(found) == 1
        assert "ChurnSchedule" in found[0].message

    def test_p100_flags_unreadable_registry(self, tmp_path):
        report = analyze(
            tmp_path,
            purity_tree(wire_body="WIRE_TYPES = build_registry()\n"),
        )
        assert hits(report, "P100")

    def test_p100_flags_missing_purity_root(self, tmp_path):
        tree = purity_tree()
        del tree["src/repro/experiments/policy.py"]
        report = analyze(tmp_path, tree)
        found = hits(report, "P100")
        assert any("ExecutionPolicy" in f.message for f in found)


# -- registry exhaustiveness (R1xx) ------------------------------------------


class TestRegistry:
    def test_r101_both_directions(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "benchmarks/bench_alpha.py": "pass\n",
                "scripts/bench_smoke.py": """\
                    SMOKE = {
                        "bench_ghost": None,
                    }
                """,
            },
        )
        found = hits(report, "R101")
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        assert "bench_alpha" in messages  # on disk, no entry
        assert "bench_ghost" in messages  # entry, not on disk

    def test_r101_clean_when_matched(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "benchmarks/bench_alpha.py": "pass\n",
                "scripts/bench_smoke.py": 'SMOKE = {"bench_alpha": None}\n',
            },
        )
        assert not hits(report, "R101")

    def test_r101_flags_missing_registry_file(self, tmp_path):
        report = analyze(
            tmp_path, {"benchmarks/bench_alpha.py": "pass\n"}
        )
        assert hits(report, "R101")

    def test_r102_reads_the_tests_registry_as_an_extra(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "examples/quickstart.py": "pass\n",
                "tests/test_examples.py": 'SMOKE = {"quickstart": None}\n',
            },
        )
        assert not hits(report, "R102")

    def test_r102_flags_unregistered_example(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "examples/quickstart.py": "pass\n",
                "examples/orphan.py": "pass\n",
                "tests/test_examples.py": 'SMOKE = {"quickstart": None}\n',
            },
        )
        found = hits(report, "R102")
        assert len(found) == 1
        assert "orphan" in found[0].message


# -- engine contracts --------------------------------------------------------


class TestEngine:
    def test_e100_parse_failure_is_a_finding_not_a_crash(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/broken.py": "def f(:\n",
                "src/fine.py": "x = 1\n",
            },
            paths=["src/broken.py", "src/fine.py"],
        )
        found = hits(report, "E100")
        assert len(found) == 1
        assert found[0].file == "src/broken.py"
        assert report.exit_code == 1
        assert report.checked_files == 2

    def test_s100_unjustified_suppression_fails(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                x = np.random.rand()  # reprolint: ignore[D101]
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D101")  # the suppression still works...
        assert hits(report, "S100")  # ...but its bareness is the finding
        assert report.exit_code == 1

    def test_s101_stale_suppression_fails(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": (
                "x = 1  # reprolint: ignore[D101] — nothing to see here\n"
            )},
            paths=["src/mod.py"],
        )
        assert hits(report, "S101")
        assert report.exit_code == 1

    def test_suppression_only_silences_its_named_rule(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                import time
                x = np.random.default_rng(int(time.time()))  # reprolint: ignore[D104] — fixture
            """},
            paths=["src/mod.py"],
        )
        assert not hits(report, "D104")
        # D103 would not fire (seed present); D104 was the only finding.
        assert report.exit_code == 0

    def test_baseline_downgrades_to_warning(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"warn": ["D101"]}))
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                x = np.random.rand()
            """},
            paths=["src/mod.py"],
            baseline=baseline,
        )
        found = hits(report, "D101")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert report.exit_code == 0

    def test_baseline_rejects_unknown_rules(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"warn": ["Z999"]}))
        with pytest.raises(ValueError, match="unknown rules"):
            analyze(
                tmp_path,
                {"src/mod.py": "x = 1\n"},
                paths=["src/mod.py"],
                baseline=baseline,
            )

    def test_json_report_schema(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/mod.py": """\
                import numpy as np
                x = np.random.rand()
            """},
            paths=["src/mod.py"],
        )
        payload = report.to_json()
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["checked_files"] == 1
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert set(payload["rules"]) <= ALL_RULE_IDS
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "file", "line", "message", "severity"}
        assert finding["rule"] == "D101"
        assert finding["file"] == "src/mod.py"


# -- the repository itself ---------------------------------------------------


class TestSelfScan:
    def test_head_is_clean(self):
        report = run_analysis(REPO)
        assert report.exit_code == 0, report.to_text()

    def test_cli_full_scan_and_json(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = tmp_path / "report.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.staticcheck",
                "--root",
                str(REPO),
                "--format",
                "json",
                "--output",
                str(out),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text())
        assert payload["errors"] == 0
        assert payload["version"] == JSON_SCHEMA_VERSION

    def test_cli_list_rules_names_every_rule(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "--list-rules"],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rule_id in ALL_RULE_IDS:
            assert rule_id in proc.stdout

    def test_cli_fails_on_reintroduced_violation(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text(
            "import numpy as np\nx = np.random.rand()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.staticcheck",
                "--root",
                str(tmp_path),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "D101" in proc.stdout
