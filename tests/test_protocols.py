"""Tests for BSMB, BMMB and consensus over the ideal absMAC.

Running the higher-level protocols over the *ideal* layer isolates
protocol-logic bugs from MAC-implementation bugs; the integration tests
(test_integration_stacks.py) then re-run them over the real SINR MAC.
"""

import networkx as nx
import pytest

from repro.absmac.ideal import IdealMacConfig, IdealMacLayer, IdealMacNetwork
from repro.core.events import MessageRegistry
from repro.geometry.deployment import line_deployment
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.protocols.consensus import ConsensusClient, run_consensus
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


def ideal_stack(graph, client_factory, config=None, seed=0):
    n = graph.number_of_nodes()
    net = IdealMacNetwork(graph, config or IdealMacConfig(), seed=seed)
    reg = MessageRegistry()
    clients = [client_factory(i) for i in range(n)]
    macs = [IdealMacLayer(i, reg, net, clients[i]) for i in range(n)]
    pts = line_deployment(n, spacing=4.0)
    rt = Runtime(
        Channel(pts, SINRParameters()), macs, RuntimeConfig(seed=seed)
    )
    return rt, macs, clients


class TestBSMB:
    def test_all_nodes_deliver_on_path(self):
        g = nx.path_graph(8)
        rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
        final = run_single_message_broadcast(rt, macs, clients, source=0)
        assert all(c.done for c in clients)
        assert final > 0

    def test_delivery_order_respects_hops(self):
        g = nx.path_graph(6)
        rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
        run_single_message_broadcast(rt, macs, clients, source=0)
        slots = [c.delivered_slot for c in clients]
        # Monotone in hop distance from the source on a path.
        assert slots == sorted(slots)

    def test_each_node_relays_once(self):
        g = nx.complete_graph(5)
        rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
        run_single_message_broadcast(rt, macs, clients, source=2)
        bcasts = rt.trace.of_kind("bcast")
        assert len(bcasts) == 5  # source + 4 relays, one each

    def test_completion_scales_with_diameter(self):
        # run_until polls every 32 slots, so sizes are chosen to land in
        # clearly different polling windows.
        times = []
        for n in (4, 40):
            g = nx.path_graph(n)
            rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
            times.append(
                run_single_message_broadcast(rt, macs, clients, source=0)
            )
        assert times[1] > times[0]

    def test_star_topology_two_rounds(self):
        g = nx.star_graph(6)
        rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
        run_single_message_broadcast(rt, macs, clients, source=1)
        assert all(c.done for c in clients)

    def test_misaligned_clients_rejected(self):
        g = nx.path_graph(2)
        rt, macs, clients = ideal_stack(g, lambda i: BsmbClient())
        with pytest.raises(ValueError, match="wired"):
            run_single_message_broadcast(
                rt, macs, [BsmbClient(), BsmbClient()], source=0
            )


class TestBMMB:
    def test_single_source_multiple_messages(self):
        g = nx.path_graph(5)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        final = run_multi_message_broadcast(
            rt, macs, clients, arrivals={0: ["m0", "m1", "m2"]}
        )
        for c in clients:
            assert c.has_all(["m0", "m1", "m2"])

    def test_multiple_sources(self):
        g = nx.cycle_graph(6)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        run_multi_message_broadcast(
            rt,
            macs,
            clients,
            arrivals={0: ["a"], 3: ["b"], 5: ["c"]},
        )
        for c in clients:
            assert c.has_all(["a", "b", "c"])

    def test_fifo_relay_order_at_source(self):
        g = nx.path_graph(2)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        run_multi_message_broadcast(
            rt, macs, clients, arrivals={0: ["x", "y", "z"]}
        )
        arrival_slots = [clients[1].delivered[t] for t in ["x", "y", "z"]]
        assert arrival_slots == sorted(arrival_slots)

    def test_duplicate_tokens_rejected(self):
        g = nx.path_graph(2)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        with pytest.raises(ValueError, match="duplicate"):
            run_multi_message_broadcast(
                rt, macs, clients, arrivals={0: ["m"], 1: ["m"]}
            )

    def test_empty_arrivals_complete_immediately(self):
        g = nx.path_graph(2)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        final = run_multi_message_broadcast(rt, macs, clients, arrivals={})
        assert final == 0

    def test_dedup_prevents_rebroadcast_storms(self):
        g = nx.complete_graph(4)
        rt, macs, clients = ideal_stack(g, lambda i: BmmbClient())
        run_multi_message_broadcast(rt, macs, clients, arrivals={0: ["m"]})
        # Each node broadcasts m at most once: <= 4 bcasts total.
        assert len(rt.trace.of_kind("bcast")) <= 4


class TestConsensus:
    def make(self, graph, values, waves=None, seed=0):
        n = graph.number_of_nodes()
        diameter = nx.diameter(graph)
        w = waves if waves is not None else 2 * diameter + 2
        return ideal_stack(
            graph,
            lambda i: ConsensusClient(i, values[i], waves=w),
            seed=seed,
        )

    def test_agreement_and_validity_on_path(self):
        g = nx.path_graph(7)
        values = [0, 1, 0, 1, 0, 1, 0]
        rt, macs, clients = self.make(g, values)
        result = run_consensus(rt, macs, clients)
        assert result.agreed
        # Validity: max id is 6, whose value is 0.
        assert result.decided_value() == 0

    def test_unanimous_input_decides_that_value(self):
        g = nx.cycle_graph(5)
        rt, macs, clients = self.make(g, [1] * 5)
        result = run_consensus(rt, macs, clients)
        assert result.agreed
        assert result.decided_value() == 1

    def test_decision_is_max_id_value(self):
        g = nx.path_graph(5)
        for max_value in (0, 1):
            values = [1 - max_value] * 4 + [max_value]
            rt, macs, clients = self.make(g, values)
            result = run_consensus(rt, macs, clients)
            assert result.decided_value() == max_value

    def test_termination_records_slots(self):
        g = nx.path_graph(4)
        rt, macs, clients = self.make(g, [0, 1, 1, 0])
        result = run_consensus(rt, macs, clients)
        assert set(result.decision_slots) == {0, 1, 2, 3}
        assert all(s <= result.completion_slot for s in result.decision_slots.values())

    def test_insufficient_waves_can_break_agreement(self):
        """With one wave on a long path, the far end cannot learn the
        max id: documents why 2D+2 waves are needed."""
        g = nx.path_graph(12)
        values = [0] * 11 + [1]
        rt, macs, clients = self.make(g, values, waves=1)
        result = run_consensus(rt, macs, clients)
        assert not result.agreed

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ConsensusClient(0, 2, waves=5)
        with pytest.raises(ValueError):
            ConsensusClient(0, 1, waves=0)

    def test_decide_events_traced(self):
        g = nx.path_graph(3)
        rt, macs, clients = self.make(g, [0, 1, 1])
        run_consensus(rt, macs, clients)
        assert rt.trace.count("decide") == 3
