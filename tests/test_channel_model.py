"""The stochastic channel subsystem (fading / shadowing / power).

Four layers of evidence:

* **config + draws** — :class:`ChannelModel` validation, the transform
  helpers in :mod:`repro.sinr.physics`, and the dedicated channel RNG
  stream (:func:`spawn_channel_rng` — independent of every node
  stream, so enabling the model perturbs only the physics);
* **physics** — the ``link_powers`` override of the reception kernels:
  feeding the deterministic powers back through it changes nothing,
  and the batched kernel resolves per-trial power blocks exactly like
  per-trial sequential calls;
* **channel** — :meth:`Channel.bind_trial_seed` /
  :meth:`Channel.slot_link_powers` semantics (arming, determinism,
  stream consumption, the unarmed error);
* **executors** — the ISSUE acceptance matrix: with fading enabled,
  vectorized runs are dataclass-equal to the object runtime across
  {decay, ack} x {1, 8 trials}, the object lockstep batch matches the
  sequential path for non-columnar stacks, and an inert model is
  byte-identical to no model at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
)
from repro.experiments.plans import seeded_plans
from repro.simulation.rng import (
    LinkUniformBuffer,
    spawn_channel_rng,
    spawn_node_rngs,
    spawn_trial_seeds,
)
from repro.sinr.channel import Channel
from repro.sinr.params import ChannelModel, SINRParameters
from repro.sinr.physics import (
    draw_power_multipliers,
    draw_shadowing,
    rayleigh_gains,
    successful_receptions,
    successful_receptions_batch,
)

N = 12
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=9.0, seed=33)
FULL_MODEL = ChannelModel(
    rayleigh=True, shadowing_sigma_db=4.0, power_spread=4.0
)


def fading_params(model: ChannelModel = FULL_MODEL) -> SINRParameters:
    return SINRParameters(channel_model=model)


# -- configuration ----------------------------------------------------------


class TestChannelModel:
    def test_defaults_are_inert(self):
        assert not ChannelModel().is_active
        assert ChannelModel().describe() == "deterministic"

    def test_each_axis_activates(self):
        assert ChannelModel(rayleigh=True).is_active
        assert ChannelModel(shadowing_sigma_db=2.0).is_active
        assert ChannelModel(power_spread=3.0).is_active

    def test_validation(self):
        with pytest.raises(ValueError, match="shadowing_sigma_db"):
            ChannelModel(shadowing_sigma_db=-1.0)
        with pytest.raises(ValueError, match="power_spread"):
            ChannelModel(power_spread=0.5)

    def test_describe_lists_active_axes(self):
        text = FULL_MODEL.describe()
        assert "rayleigh" in text and "shadow" in text and "spread" in text

    def test_params_carry_model_through_rescaling(self):
        params = fading_params().with_strong_range(50.0)
        assert params.channel_model == FULL_MODEL
        assert "model=" in params.describe()

    def test_params_hashable_for_batch_keys(self):
        assert hash(fading_params()) == hash(fading_params())
        assert fading_params() != SINRParameters()


# -- draws ------------------------------------------------------------------


class TestDraws:
    def test_rayleigh_gains_are_exponential(self):
        u = np.random.default_rng(0).random(20_000)
        gains = rayleigh_gains(u)
        assert (gains > 0).all() and np.isfinite(gains).all()
        assert gains.mean() == pytest.approx(1.0, rel=0.05)  # Exp(1)
        # The inverse-CDF map stays finite at the float64 edge.
        assert np.isfinite(rayleigh_gains(np.array([np.nextafter(1.0, 0.0)])))

    def test_power_multipliers_in_range(self):
        rng = np.random.default_rng(1)
        mult = draw_power_multipliers(ChannelModel(power_spread=5.0), rng, 500)
        assert mult.shape == (500,)
        assert (mult >= 1.0).all() and (mult <= 5.0).all()
        assert draw_power_multipliers(ChannelModel(), rng, 5) is None

    def test_shadowing_symmetric_positive(self):
        rng = np.random.default_rng(2)
        shadow = draw_shadowing(ChannelModel(shadowing_sigma_db=6.0), rng, 40)
        assert shadow.shape == (40, 40)
        assert (shadow > 0).all()
        assert np.array_equal(shadow, shadow.T)  # reciprocal links
        assert np.array_equal(np.diag(shadow), np.ones(40))
        assert draw_shadowing(ChannelModel(), rng, 5) is None

    def test_channel_stream_independent_of_node_streams(self):
        """Child n of the seed sequence: deterministic, and disjoint
        from every node generator's output."""
        a = spawn_channel_rng(N, seed=7).random(8)
        b = spawn_channel_rng(N, seed=7).random(8)
        assert np.array_equal(a, b)
        for node_rng in spawn_node_rngs(N, seed=7):
            assert not np.array_equal(node_rng.random(8), a)

    def test_link_buffer_is_chunk_independent(self):
        """Irregular takes (crossing refills, exceeding the chunk) must
        serve exactly the generator's scalar stream."""
        buffered = LinkUniformBuffer(np.random.default_rng(5), chunk=16)
        takes = [3, 20, 1, 0, 40, 16, 7]
        served = np.concatenate([buffered.take(k) for k in takes])
        direct = np.random.default_rng(5).random(sum(takes))
        assert np.array_equal(served, direct)
        with pytest.raises(ValueError):
            LinkUniformBuffer(np.random.default_rng(0), chunk=0)
        with pytest.raises(ValueError):
            buffered.take(-1)


# -- physics: the link_powers override --------------------------------------


class TestLinkPowers:
    def test_identity_when_powers_are_the_gains(self):
        """Routing the deterministic gain rows through link_powers must
        reproduce the gain-cache path decode for decode."""
        points = resolve_deployment(DEPLOYMENT)
        params = SINRParameters()
        art = deployment_artifacts(points, params)
        tx = np.array([0, 3, 5], dtype=np.intp)
        base = successful_receptions(
            params, art.distances, tx, gains=art.gains
        )
        routed = successful_receptions(
            params, art.distances, tx, link_powers=art.gains[tx, :]
        )
        assert routed == base

    def test_batch_matches_per_trial_blocks(self):
        """The batched kernel with a flat (sum k, n) power layout must
        equal per-trial sequential resolution of the same blocks."""
        points = resolve_deployment(DEPLOYMENT)
        params = SINRParameters()
        art = deployment_artifacts(points, params)
        rng = np.random.default_rng(3)
        tx_lists = [
            np.array([0, 2], dtype=np.intp),
            np.empty(0, dtype=np.intp),
            np.array([1, 4, 7], dtype=np.intp),
        ]
        blocks = [
            art.gains[tx, :] * rayleigh_gains(rng.random((tx.size, N)))
            for tx in tx_lists
            if tx.size
        ]
        dist_stack = np.broadcast_to(art.distances, (3, N, N))
        batched = successful_receptions_batch(
            params,
            dist_stack,
            tx_lists,
            link_powers=np.concatenate(blocks),
        )
        block_iter = iter(blocks)
        for tx, got in zip(tx_lists, batched):
            expected = (
                successful_receptions(
                    params, art.distances, tx, link_powers=next(block_iter)
                )
                if tx.size
                else {}
            )
            assert got == expected

    def test_link_powers_shape_validated(self):
        points = resolve_deployment(DEPLOYMENT)
        params = SINRParameters()
        art = deployment_artifacts(points, params)
        tx = np.array([0, 1], dtype=np.intp)
        with pytest.raises(ValueError, match="link_powers"):
            successful_receptions(
                params, art.distances, tx, link_powers=art.gains
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            successful_receptions(
                params,
                art.distances,
                tx,
                tx_powers=np.array([1.0, 2.0]),
                link_powers=art.gains[tx, :],
            )


# -- channel ----------------------------------------------------------------


class TestChannelBinding:
    def _channel(self, model=FULL_MODEL) -> Channel:
        points = resolve_deployment(DEPLOYMENT)
        return Channel(points, fading_params(model))

    def test_deterministic_channel_is_transparent(self):
        channel = Channel(resolve_deployment(DEPLOYMENT), SINRParameters())
        assert not channel.stochastic
        channel.bind_trial_seed(0)  # no-op
        assert channel.slot_link_powers(np.array([0, 1], dtype=np.intp)) is None

    def test_inert_model_is_transparent(self):
        channel = self._channel(ChannelModel())
        assert not channel.stochastic
        assert channel.slot_link_powers(np.array([0], dtype=np.intp)) is None

    def test_unarmed_stochastic_channel_raises(self):
        channel = self._channel()
        with pytest.raises(RuntimeError, match="bind_trial_seed"):
            channel.resolve_slot({0: "payload"})

    def test_binding_is_deterministic_per_seed(self):
        tx = np.array([0, 4], dtype=np.intp)
        one, two, other = self._channel(), self._channel(), self._channel()
        one.bind_trial_seed(9)
        two.bind_trial_seed(9)
        other.bind_trial_seed(10)
        first = one.slot_link_powers(tx)
        assert np.array_equal(first, two.slot_link_powers(tx))
        assert not np.array_equal(first, other.slot_link_powers(tx))
        # Fresh fading every slot: the next call must differ.
        assert not np.array_equal(first, one.slot_link_powers(tx))

    def test_static_multipliers_persist_across_slots(self):
        """Without Rayleigh the per-trial effective gains are static:
        every slot sees the same powers, scaled rows of the base gains."""
        channel = self._channel(
            ChannelModel(shadowing_sigma_db=3.0, power_spread=2.0)
        )
        channel.bind_trial_seed(4)
        tx = np.array([1, 6], dtype=np.intp)
        first = channel.slot_link_powers(tx)
        assert np.array_equal(first, channel.slot_link_powers(tx))
        assert first.shape == (2, N)
        assert (first > 0).all()
        assert not np.array_equal(first, channel.gains[tx, :])

    def test_empty_transmitter_set_consumes_no_draws(self):
        channel = self._channel()
        channel.bind_trial_seed(2)
        tx = np.array([0, 3], dtype=np.intp)
        expected = self._channel()
        expected.bind_trial_seed(2)
        channel.slot_link_powers(np.empty(0, dtype=np.intp))
        assert np.array_equal(
            channel.slot_link_powers(tx), expected.slot_link_powers(tx)
        )


# -- executors: the acceptance matrix ---------------------------------------


def fading_plans(stack, trials, model=FULL_MODEL, **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        params=fading_params(model),
        label=f"fade-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


@pytest.mark.slow
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
def test_fading_vectorized_equals_object(stack, trials):
    """The ISSUE acceptance matrix: with the full stochastic model on,
    the columnar fast path is dataclass-equal to the object runtime."""
    plans = fading_plans(stack, trials)
    vec = run_trials(plans, vectorize=True)
    obj = run_trials(plans, vectorize=False)
    assert vec == obj
    assert all(result.transmissions > 0 for result in vec)


def test_fading_sequential_matches_batched():
    """The third executor: one-at-a-time sequential runs agree too."""
    plans = fading_plans("decay", 4)
    assert run_trials(plans, mode="sequential") == run_trials(plans)


@pytest.mark.slow
def test_fading_object_lockstep_matches_sequential():
    """Non-columnar stacks (combined Algorithm 11.1) run fading trials
    on the object lockstep executor; its per-trial link-power blocks
    must reproduce the sequential channel stream exactly."""
    plans = fading_plans("combined", 4)
    assert run_trials(plans) == run_trials(plans, mode="sequential")


def test_fading_protocol_workload_on_fast_path():
    """Fading plans with protocol workloads stay columnar-eligible and
    bit-identical (BSMB delivery under a stochastic channel)."""
    plans = fading_plans(
        "decay", 4, workload="smb", options=TrialPlan.pack_options(source=0)
    )
    assert run_trials(plans, vectorize=True) == run_trials(
        plans, vectorize=False
    )


def test_inert_model_byte_identical_to_no_model():
    """ChannelModel() attached but inactive: results must equal the
    plain deterministic plan field for field (the disabled path does
    not consume a single extra draw)."""
    plain = seeded_plans(
        TrialPlan(deployment=DEPLOYMENT, stack="decay", label="fade-decay"),
        spawn_trial_seeds(3, seed=5),
    )
    inert = fading_plans("decay", 3, model=ChannelModel())
    assert run_trials(inert) == run_trials(plain)


def test_fading_changes_outcomes():
    """The model must actually perturb the physics: a full stochastic
    channel yields different trial results than the deterministic one
    (same seeds, same deployment)."""
    det = seeded_plans(
        TrialPlan(deployment=DEPLOYMENT, stack="decay", label="fade-decay"),
        spawn_trial_seeds(3, seed=5),
    )
    faded = fading_plans("decay", 3)
    assert run_trials(faded) != run_trials(det)


def test_shadowing_sweep_shares_one_artifact_entry():
    """Different channel models over one deployment must share the
    deterministic artifact cache entry (distances/gains/graphs are
    model-independent)."""
    from repro.experiments.cache import ArtifactCache

    cache = ArtifactCache()
    points = resolve_deployment(DEPLOYMENT)
    first = cache.artifacts(points, SINRParameters())
    second = cache.artifacts(
        points, fading_params(ChannelModel(shadowing_sigma_db=6.0))
    )
    assert second is first
    assert cache.stats()["artifact_entries"] == 1
