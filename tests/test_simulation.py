"""Unit tests for the simulation runtime, node model, trace and rngs."""

import numpy as np
import pytest

from repro.geometry.points import PointSet
from repro.simulation.node import ProtocolNode
from repro.simulation.rng import spawn_node_rngs
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.simulation.trace import EventTrace
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


def make_runtime(nodes, n_points=None, seed=0, max_slots=100_000):
    n = n_points or len(nodes)
    pts = PointSet(
        np.column_stack([np.arange(n) * 4.0, np.zeros(n)])
    )
    channel = Channel(pts, SINRParameters())
    return Runtime(channel, nodes, RuntimeConfig(seed=seed, max_slots=max_slots))


class Beacon(ProtocolNode):
    """Transmits its id every slot."""

    def on_slot(self, slot):
        return ("beacon", self.node_id)


class Listener(ProtocolNode):
    """Records everything it hears."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.heard = []

    def on_receive(self, slot, sender, payload):
        self.heard.append((slot, sender, payload))


class TestRuntimeBasics:
    def test_node_count_must_match(self, params):
        pts = PointSet(np.array([[0.0, 0.0], [4.0, 0.0]]))
        with pytest.raises(ValueError, match="node count"):
            Runtime(Channel(pts, params), [Beacon(0)])

    def test_node_ids_must_be_dense(self, params):
        pts = PointSet(np.array([[0.0, 0.0], [4.0, 0.0]]))
        with pytest.raises(ValueError, match="node ids"):
            Runtime(Channel(pts, params), [Beacon(0), Beacon(5)])

    def test_sleeping_nodes_do_not_transmit(self):
        rt = make_runtime([Beacon(0), Listener(1)])
        rt.run(5)  # nobody woken
        assert rt.trace.count("transmit") == 0

    def test_awake_beacon_reaches_listener(self):
        nodes = [Beacon(0), Listener(1)]
        rt = make_runtime(nodes)
        rt.wake_node(0)
        rt.run(3)
        assert len(nodes[1].heard) == 3
        assert nodes[1].heard[0][1] == 0

    def test_reception_wakes_sleeping_node(self):
        """Conditional wakeup (Definition 4.4): decoding wakes a node."""
        nodes = [Beacon(0), Listener(1)]
        rt = make_runtime(nodes)
        rt.wake_node(0)
        assert not nodes[1].awake
        rt.run(1)
        assert nodes[1].awake
        wake_events = rt.trace.of_kind("wake")
        assert {e.node for e in wake_events} == {0, 1}

    def test_run_until_predicate(self):
        nodes = [Beacon(0), Listener(1)]
        rt = make_runtime(nodes)
        rt.wake_node(0)
        final = rt.run_until(lambda r: len(nodes[1].heard) >= 5)
        assert final >= 5
        assert len(nodes[1].heard) >= 5

    def test_slot_budget_enforced(self):
        nodes = [Listener(0), Listener(1)]
        rt = make_runtime(nodes, max_slots=50)
        with pytest.raises(RuntimeError, match="budget"):
            rt.run_until(lambda r: False)

    def test_run_rejects_negative(self):
        rt = make_runtime([Listener(0)], n_points=1)
        with pytest.raises(ValueError):
            rt.run(-1)

    def test_wake_all(self):
        nodes = [Listener(0), Listener(1), Listener(2)]
        rt = make_runtime(nodes)
        rt.wake_all()
        assert all(node.awake for node in nodes)

    def test_physical_trace_recording(self):
        nodes = [Beacon(0), Listener(1)]
        rt = make_runtime(nodes)
        rt.wake_node(0)
        rt.run(2)
        assert rt.trace.count("transmit") == 2
        assert rt.trace.count("receive") == 2

    def test_physical_trace_can_be_disabled(self, params):
        pts = PointSet(np.array([[0.0, 0.0], [4.0, 0.0]]))
        rt = Runtime(
            Channel(pts, params),
            [Beacon(0), Listener(1)],
            RuntimeConfig(record_physical=False),
        )
        rt.wake_node(0)
        rt.run(2)
        assert rt.trace.count("transmit") == 0
        assert rt.trace.count("receive") == 0


class TestNodeAPI:
    def test_private_randomness_is_reproducible(self):
        class Coin(ProtocolNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.flips = []

            def on_slot(self, slot):
                self.flips.append(self.api.random())
                return None

        runs = []
        for _ in range(2):
            nodes = [Coin(0), Coin(1)]
            rt = make_runtime(nodes, seed=99)
            rt.wake_all()
            rt.run(10)
            runs.append((tuple(nodes[0].flips), tuple(nodes[1].flips)))
        assert runs[0] == runs[1]  # same seed, same draws
        assert runs[0][0] != runs[0][1]  # nodes draw independently

    def test_emit_records_at_current_slot(self):
        class Emitter(ProtocolNode):
            def on_slot(self, slot):
                if slot == 3:
                    self.api.emit("custom", data="hi")
                return None

        nodes = [Emitter(0)]
        rt = make_runtime(nodes, n_points=1)
        rt.wake_all()
        rt.run(5)
        events = rt.trace.of_kind("custom")
        assert len(events) == 1
        assert events[0].slot == 3
        assert events[0].data == "hi"

    def test_randint_bounds(self):
        rngs = spawn_node_rngs(1, seed=0)

        class R(ProtocolNode):
            pass

        node = R(0)
        rt = make_runtime([node], n_points=1)
        draws = [node.api.randint(1, 6) for _ in range(100)]
        assert min(draws) >= 1
        assert max(draws) <= 6


class TestTrace:
    def test_of_kind_and_at_node(self):
        trace = EventTrace()
        trace.record(0, "a", 1)
        trace.record(1, "b", 1)
        trace.record(2, "a", 2)
        assert len(trace.of_kind("a")) == 2
        assert len(trace.at_node(1)) == 2

    def test_first_with_predicate(self):
        trace = EventTrace()
        trace.record(0, "x", 1, data=10)
        trace.record(1, "x", 2, data=20)
        found = trace.first("x", lambda e: e.data > 15)
        assert found.slot == 1

    def test_first_missing_returns_none(self):
        assert EventTrace().first("nope") is None

    def test_last_slot(self):
        trace = EventTrace()
        assert trace.last_slot() == -1
        trace.record(7, "x", 0)
        assert trace.last_slot() == 7

    def test_iteration_order(self):
        trace = EventTrace()
        for s in range(5):
            trace.record(s, "t", 0)
        assert [e.slot for e in trace] == list(range(5))


class TestRngSpawning:
    def test_count(self):
        assert len(spawn_node_rngs(5, seed=1)) == 5

    def test_determinism(self):
        a = spawn_node_rngs(3, seed=2)
        b = spawn_node_rngs(3, seed=2)
        for ga, gb in zip(a, b):
            assert ga.random() == gb.random()

    def test_independence_across_nodes(self):
        rngs = spawn_node_rngs(2, seed=3)
        assert rngs[0].random() != rngs[1].random()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_node_rngs(-1)
