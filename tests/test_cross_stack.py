"""Cross-stack matrix tests: every protocol over every MAC.

The absMAC promise (§1) is that higher-level algorithms are written
once and run over any implementation.  This module runs the protocol x
MAC matrix on one small multihop deployment and asserts functional
correctness everywhere (timing differs; outcomes must not).
"""

import pytest

from repro.analysis.harness import (
    build_combined_stack,
    build_decay_stack,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import line_deployment
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.protocols.consensus import ConsensusClient, run_consensus
from repro.sinr.channel import GrayZoneAdversary
from repro.sinr.graphs import strong_connectivity_graph
from repro.sinr.params import SINRParameters

FAST_APPROG = ApproxProgressConfig(
    lambda_bound=4.0, eps_approg=0.2, alpha=3.0, t_scale=0.2, bcast_scale=4.0
)


def deployment(params, hops=3):
    return line_deployment(hops + 1, spacing=params.approx_range * 0.9)


def build(kind, params, points, client_factory, seed, adversary=None):
    if kind == "combined":
        return build_combined_stack(
            points,
            params,
            client_factory=client_factory,
            approg_config=FAST_APPROG,
            seed=seed,
            adversary=adversary,
        )
    return build_decay_stack(
        points,
        params,
        client_factory=client_factory,
        seed=seed,
        adversary=adversary,
    )


@pytest.mark.parametrize("mac", ["combined", "decay"])
class TestProtocolMatrix:
    def test_bsmb(self, mac):
        params = SINRParameters()
        points = deployment(params)
        stack = build(mac, params, points, lambda i: BsmbClient(), seed=21)
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)

    def test_bmmb(self, mac):
        params = SINRParameters()
        points = deployment(params)
        stack = build(mac, params, points, lambda i: BmmbClient(), seed=22)
        run_multi_message_broadcast(
            stack.runtime,
            stack.macs,
            stack.clients,
            arrivals={0: ["x"], 3: ["y"]},
        )
        assert all(c.has_all(["x", "y"]) for c in stack.clients)

    def test_consensus(self, mac):
        params = SINRParameters()
        points = deployment(params)
        n = len(points)
        stack = build(
            mac,
            params,
            points,
            lambda i: ConsensusClient(i, i % 2, waves=2 * n + 2),
            seed=23,
        )
        result = run_consensus(stack.runtime, stack.macs, stack.clients)
        assert result.agreed
        assert result.decided_value() == (n - 1) % 2

    def test_bsmb_with_gray_zone_erased(self, mac):
        """Outcomes are identical when the unreliable fringe is removed:
        the protocols only ever rely on strong links."""
        params = SINRParameters()
        points = deployment(params)
        graph = strong_connectivity_graph(points, params)
        stack = build(
            mac,
            params,
            points,
            lambda i: BsmbClient(),
            seed=24,
            adversary=GrayZoneAdversary(graph, gray_drop=1.0),
        )
        run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        assert all(c.done for c in stack.clients)
