"""Tests for Remark 4.6's exact local broadcast (range filtering).

The paper's default setting delivers any decodable message (a node may
successfully receive from a G_1-neighbor that is not a G_{1-ε}
neighbor); Remark 4.6 notes that a platform able to detect a message's
origin range can discard those, making local broadcast exact on
G_{1-ε}.  The feature is the ``neighbor_oracle`` hook on every MAC.
"""

import numpy as np

from repro.analysis.harness import (
    attach_exact_local_broadcast,
    build_ack_stack,
)
from repro.core.ack_protocol import AckConfig, AckMacLayer
from repro.core.events import MessageRegistry
from repro.geometry.points import PointSet
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


def weak_link_pair(params):
    """Two nodes between R_{1-eps} and R: decodable but not G-neighbors."""
    distance = 0.95 * params.transmission_range
    assert distance > params.strong_range
    return PointSet(np.array([[0.0, 0.0], [distance, 0.0]]))


class TestNeighborOracle:
    def test_default_delivers_weak_links(self):
        """Without the oracle, decodable weak-link messages are rcv'ed
        (the paper's main setting, Remark 4.6 first paragraph)."""
        params = SINRParameters()
        pts = weak_link_pair(params)
        reg = MessageRegistry()
        cfg = AckConfig(contention_bound=4.0, eps_ack=0.2)
        macs = [AckMacLayer(i, reg, cfg) for i in range(2)]
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        m = macs[0].bcast(payload="weak")
        rt.run_until(lambda r: not macs[0].busy)
        assert m.mid in macs[1].delivered_mids

    def test_oracle_filters_weak_links(self):
        """With the oracle, the same weak-link message is discarded."""
        params = SINRParameters()
        pts = weak_link_pair(params)
        reg = MessageRegistry()
        cfg = AckConfig(contention_bound=4.0, eps_ack=0.2)
        macs = [AckMacLayer(i, reg, cfg) for i in range(2)]
        macs[1].neighbor_oracle = lambda sender: False  # nobody in range
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        m = macs[0].bcast(payload="weak")
        rt.run_until(lambda r: not macs[0].busy)
        assert m.mid not in macs[1].delivered_mids
        # The physical reception still happened; only rcv was withheld.
        received = [
            e for e in rt.trace.of_kind("receive") if e.node == 1
        ]
        assert received

    def test_oracle_keeps_strong_links(self):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0], [5.0, 0.0]]))
        reg = MessageRegistry()
        cfg = AckConfig(contention_bound=4.0, eps_ack=0.2)
        macs = [AckMacLayer(i, reg, cfg) for i in range(2)]
        macs[1].neighbor_oracle = lambda sender: sender == 0
        rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=0))
        m = macs[0].bcast(payload="strong")
        rt.run_until(lambda r: not macs[0].busy)
        assert m.mid in macs[1].delivered_mids


class TestAttachHelper:
    def test_attach_builds_graph_oracle(self):
        params = SINRParameters()
        # Three nodes: 0-1 strong link, 1-2 weak link (decodable only).
        weak = 0.95 * params.transmission_range
        pts = PointSet(
            np.array([[0.0, 0.0], [5.0, 0.0], [5.0 + weak, 0.0]])
        )
        stack = build_ack_stack(pts, params, eps_ack=0.2, seed=1)
        attach_exact_local_broadcast(stack)
        m = stack.macs[1].bcast(payload="x")
        stack.runtime.run_until(lambda r: not stack.macs[1].busy)
        assert m.mid in stack.macs[0].delivered_mids  # strong neighbor
        assert m.mid not in stack.macs[2].delivered_mids  # weak only

    def test_exact_mode_preserves_ack_behaviour(self):
        from repro.geometry.deployment import uniform_disk

        params = SINRParameters()
        pts = uniform_disk(10, radius=8.0, seed=91)
        stack = build_ack_stack(pts, params, eps_ack=0.1, seed=2)
        attach_exact_local_broadcast(stack)
        from repro.analysis.harness import run_local_broadcast_experiment

        report, _ = run_local_broadcast_experiment(stack, [0, 5])
        assert all(r.ack_slot is not None for r in report.records)
