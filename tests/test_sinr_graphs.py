"""Unit tests for repro.sinr.graphs (induced connectivity graphs)."""

import networkx as nx
import numpy as np
import pytest

from repro.geometry.deployment import line_deployment, uniform_disk
from repro.geometry.points import PointSet
from repro.sinr.graphs import (
    approx_connectivity_graph,
    graph_degree,
    graph_diameter,
    induced_graph,
    link_length_ratio,
    require_connected,
    strong_connectivity_graph,
    weak_connectivity_graph,
)
from repro.sinr.params import SINRParameters


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


class TestInducedGraph:
    def test_edges_respect_radius(self, params):
        # Nodes spaced so only adjacent pairs are within R_{1-eps}.
        spacing = params.strong_range * 0.9
        pts = line_deployment(4, spacing=spacing)
        g = strong_connectivity_graph(pts, params)
        assert set(g.edges) == {(0, 1), (1, 2), (2, 3)}

    def test_edge_lengths_attached(self, params):
        pts = line_deployment(3, spacing=5.0)
        g = strong_connectivity_graph(pts, params)
        assert g.edges[0, 1]["length"] == pytest.approx(5.0)

    def test_strength_validation(self, params):
        pts = line_deployment(2, spacing=5.0)
        with pytest.raises(ValueError):
            induced_graph(pts, params, 0.0)
        with pytest.raises(ValueError):
            induced_graph(pts, params, 1.5)

    def test_nested_graphs(self, params):
        """G_{1-2eps} ⊆ G_{1-eps} ⊆ G_1 (paper §4.3)."""
        pts = uniform_disk(25, radius=20.0, seed=9)
        g_weak = weak_connectivity_graph(pts, params)
        g_strong = strong_connectivity_graph(pts, params)
        g_approx = approx_connectivity_graph(pts, params)
        assert set(g_approx.edges) <= set(g_strong.edges)
        assert set(g_strong.edges) <= set(g_weak.edges)

    def test_single_node(self, params):
        g = strong_connectivity_graph(line_deployment(1), params)
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0

    def test_positions_stored(self, params):
        pts = PointSet(np.array([[1.0, 2.0], [3.0, 4.0]]))
        g = strong_connectivity_graph(pts, params)
        assert g.nodes[0]["pos"] == (1.0, 2.0)


class TestLinkLengthRatio:
    def test_known_ratio(self, params):
        # Distances 2 and 10 both within strong range (~16.9).
        pts = PointSet(np.array([[0.0, 0.0], [2.0, 0.0], [12.0, 0.0]]))
        g = strong_connectivity_graph(pts, params)
        assert link_length_ratio(g) == pytest.approx(12.0 / 2.0)

    def test_edgeless_graph_returns_one(self, params):
        far = 5 * params.transmission_range
        pts = PointSet(np.array([[0.0, 0.0], [far, 0.0]]))
        g = strong_connectivity_graph(pts, params)
        assert link_length_ratio(g) == 1.0


class TestDegreeDiameter:
    def test_path_graph_metrics(self, params):
        spacing = params.strong_range * 0.9
        pts = line_deployment(5, spacing=spacing)
        g = strong_connectivity_graph(pts, params)
        assert graph_degree(g) == 2
        assert graph_diameter(g) == 4

    def test_diameter_requires_connectivity(self, params):
        far = 5 * params.transmission_range
        pts = PointSet(np.array([[0.0, 0.0], [far, 0.0]]))
        g = strong_connectivity_graph(pts, params)
        with pytest.raises(ValueError, match="disconnected"):
            graph_diameter(g)

    def test_degree_of_empty_graph(self):
        assert graph_degree(nx.Graph()) == 0


class TestRequireConnected:
    def test_passes_connected(self, params):
        pts = line_deployment(3, spacing=2.0)
        require_connected(strong_connectivity_graph(pts, params))

    def test_raises_disconnected(self, params):
        far = 5 * params.transmission_range
        pts = PointSet(np.array([[0.0, 0.0], [far, 0.0]]))
        with pytest.raises(ValueError, match="connected"):
            require_connected(strong_connectivity_graph(pts, params))
