"""Tests for the experiment harness (repro.analysis.harness builders)."""

import pytest

from repro.absmac.layer import MacClient
from repro.analysis.harness import (
    build_ack_stack,
    build_approg_stack,
    build_combined_stack,
    build_decay_stack,
)
from repro.core.ack_protocol import AckMacLayer
from repro.core.approx_progress import ApproxProgressConfig, ApproxProgressMacLayer
from repro.core.combined import CombinedMacLayer
from repro.core.decay import DecayMacLayer
from repro.geometry.deployment import uniform_disk
from repro.sinr.channel import JammingAdversary
from repro.sinr.params import SINRParameters


@pytest.fixture
def points():
    return uniform_disk(12, radius=9.0, seed=55)


@pytest.fixture
def params():
    return SINRParameters()


class TestBuilders:
    def test_combined_stack_layers(self, points, params):
        stack = build_combined_stack(points, params)
        assert all(isinstance(m, CombinedMacLayer) for m in stack.macs)
        assert len(stack.macs) == len(points)

    def test_ack_stack_layers(self, points, params):
        stack = build_ack_stack(points, params)
        assert all(isinstance(m, AckMacLayer) for m in stack.macs)

    def test_approg_stack_layers(self, points, params):
        stack = build_approg_stack(points, params)
        assert all(isinstance(m, ApproxProgressMacLayer) for m in stack.macs)

    def test_decay_stack_layers(self, points, params):
        stack = build_decay_stack(points, params)
        assert all(isinstance(m, DecayMacLayer) for m in stack.macs)

    def test_clients_wired_per_node(self, points, params):
        created = []

        def factory(i):
            client = MacClient()
            created.append((i, client))
            return client

        stack = build_combined_stack(points, params, client_factory=factory)
        assert len(created) == len(points)
        for (i, client), mac in zip(created, stack.macs):
            assert mac.client is client
            assert mac.node_id == i

    def test_metrics_and_graphs_consistent(self, points, params):
        stack = build_combined_stack(points, params)
        assert stack.metrics.n == len(points)
        assert stack.graph.number_of_nodes() == len(points)
        assert set(stack.approx_graph.edges) <= set(stack.graph.edges)

    def test_adversary_reaches_channel(self, points, params):
        adversary = JammingAdversary(drop_probability=1.0)
        stack = build_ack_stack(points, params, adversary=adversary)
        stack.macs[0].bcast()
        stack.runtime.run_until(lambda r: not stack.macs[0].busy)
        # Total erasure: nobody ever delivered anything.
        assert all(not m.delivered_mids for m in stack.macs)
        assert adversary.erased_count > 0

    def test_default_configs_derived_from_lambda(self, points, params):
        stack = build_combined_stack(points, params)
        lam = max(stack.metrics.lam, 2.0)
        assert stack.macs[0].ack_config.contention_bound == pytest.approx(
            4.0 * lam * lam
        )
        assert stack.macs[0].schedule.config.lambda_bound == pytest.approx(
            lam
        )

    def test_explicit_configs_honored(self, points, params):
        config = ApproxProgressConfig(
            lambda_bound=5.0, eps_approg=0.3, alpha=params.alpha
        )
        stack = build_approg_stack(points, params, approg_config=config)
        assert stack.macs[0].schedule.config is config

    def test_seeds_reproduce_runs(self, points, params):
        def run(seed):
            stack = build_ack_stack(points, params, seed=seed)
            stack.macs[0].bcast()
            stack.runtime.run_until(lambda r: not stack.macs[0].busy)
            return stack.runtime.slot

        assert run(42) == run(42)

    def test_reports_empty_before_running(self, points, params):
        stack = build_combined_stack(points, params)
        assert stack.ack_report().records == []
        assert stack.approg_report().records == []
