"""Smoke tests: the shipped examples run to completion.

Only the fast examples are exercised here (the heavier ones are covered
functionally by the integration tests and benchmarks that share their
code paths).
"""

import pathlib
import runpy


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_examples_exist(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        expected = {
            "quickstart.py",
            "sensor_field_broadcast.py",
            "emergency_consensus.py",
            "lower_bound_demo.py",
            "dual_graph_links.py",
        }
        assert expected <= present

    def test_lower_bound_demo_runs(self, capsys):
        out = run_example("lower_bound_demo.py", capsys)
        assert "worst-case progress = 5 = Δ" in out
        assert "escape hatch" in out

    def test_dual_graph_links_runs(self, capsys):
        out = run_example("dual_graph_links.py", capsys)
        assert "default (paper setting)" in out
        assert "exact broadcast" in out
        # The table must show: strong link always delivered, gray-zone
        # delivery suppressed in the filtered modes.
        lines = [
            line
            for line in out.splitlines()
            if line.startswith(
                ("default (", "gray zone jammed", "exact broadcast")
            )
        ]
        assert len(lines) == 3
        for line in lines:
            assert "True" in line  # strong rcv and ack everywhere
        assert "False" in lines[1]  # jammed gray zone
        assert "False" in lines[2]  # Rmk 4.6 filtering
