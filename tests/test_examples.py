"""Smoke-run every ``examples/*.py`` so examples cannot rot silently.

Each example is imported as a module (with ``examples/`` on the path)
and its ``main()`` executed at a *tiny* configuration — slow scenario
constants are hoisted to module level in the examples precisely so this
suite can shrink them, the same pattern ``scripts/bench_smoke.py`` uses
for the benchmark scripts.  The registry below is exhaustive by
construction: a new example without an entry fails the suite, and a
stale entry without a script does too.  ``make test`` runs this file
like any other tier-1 test.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def _load(name: str):
    if str(EXAMPLES) not in sys.path:
        sys.path.insert(0, str(EXAMPLES))
    module = importlib.import_module(name)
    # A fresh module per test: shrunk constants must not leak between
    # runs (or into a developer's interactive session).
    return importlib.reload(module)


def _shrink(module, **overrides):
    for name, value in overrides.items():
        if not hasattr(module, name):
            raise AttributeError(
                f"{module.__name__} has no constant {name!r}; "
                "update the example smoke registry"
            )
        setattr(module, name, value)


def smoke_quickstart(m, out):
    assert "acknowledgments" in out()
    assert "contract: ack ok=True" in out()


def smoke_dual_graph_links(m, out):
    text = out()
    assert "default (paper setting)" in text
    assert "exact broadcast" in text
    # The table must show: strong link always delivered, gray-zone
    # delivery suppressed in the filtered modes.
    lines = [
        line
        for line in text.splitlines()
        if line.startswith(
            ("default (", "gray zone jammed", "exact broadcast")
        )
    ]
    assert len(lines) == 3
    for line in lines:
        assert "True" in line  # strong rcv and ack everywhere
    assert "False" in lines[1]  # jammed gray zone
    assert "False" in lines[2]  # Rmk 4.6 filtering


def smoke_lower_bound_demo(m, out):
    assert "worst-case progress = 5 = Δ" in out()
    assert "escape hatch" in out()


def smoke_emergency_consensus(m, out):
    _shrink(m, N_RESPONDERS=8, FIELD_RADIUS=8.0, DROPS=(0.0, 0.3))
    assert "consensus" in out()


def smoke_native_backend_demo(m, out):
    _shrink(m, N_NODES=40, RADIUS=25.0, SLOTS=100, TRIALS=2)
    text = out()
    assert "bit-identical" in text
    # The demo must say which backend each leg ran, whatever this
    # machine has built.
    assert "ran backend=numpy" in text
    import repro.native

    if repro.native.available():
        assert "ran backend=native" in text


def smoke_sensor_field_broadcast(m, out):
    _shrink(
        m,
        N_CLUSTERS=2,
        NODES_PER_CLUSTER=4,
        READINGS={0: ["temp=21.4C@site0"], 5: ["vibration=0.3g@site1"]},
    )
    assert "sensor field" in out()


SMOKE = {
    "dual_graph_links": smoke_dual_graph_links,
    "emergency_consensus": smoke_emergency_consensus,
    "lower_bound_demo": smoke_lower_bound_demo,
    "native_backend_demo": smoke_native_backend_demo,
    "quickstart": smoke_quickstart,
    "sensor_field_broadcast": smoke_sensor_field_broadcast,
}


def examples_on_disk() -> list[str]:
    return sorted(p.stem for p in EXAMPLES.glob("*.py"))


def test_registry_matches_examples_on_disk():
    scripts = examples_on_disk()
    assert scripts, "examples directory must not be empty"
    missing = [name for name in scripts if name not in SMOKE]
    stale = [name for name in SMOKE if name not in scripts]
    assert not missing, (
        f"examples without a smoke entry: {missing} — add them to "
        "tests/test_examples.py's SMOKE registry"
    )
    assert not stale, (
        f"smoke entries without a script: {stale} — drop them from "
        "tests/test_examples.py's SMOKE registry"
    )


@pytest.mark.parametrize("name", sorted(SMOKE))
def test_example_runs(name, capsys):
    if name not in examples_on_disk():
        pytest.skip(f"{name} not on disk (registry drift is caught above)")
    module = _load(name)

    ran: dict[str, str] = {}

    def out() -> str:
        """main()'s stdout (run lazily so shrinks apply first)."""
        if "out" not in ran:
            module.main()
            ran["out"] = capsys.readouterr().out
            assert ran["out"].strip(), f"example {name} printed nothing"
        return ran["out"]

    SMOKE[name](module, out)
    out()  # entries that only shrink still execute the example
