"""The native backend's defining contract: decode-for-decode identity
with both pure-python executors.

The fused C slot loop (:mod:`repro.native`) is a *fourth* way to run a
trial — object runtime, columnar numpy, engine-batched columnar, and
now the compiled kernel — and every one of them must produce the same
:class:`TrialResult`, field for field.  This suite pins that:

* **results** — the acceptance matrix {Decay, Ack} × {1, 8 trials} ×
  {synchronous, staggered wakeup}: ``run_trials(native=True)`` must be
  dataclass-equal to the pure-numpy reference (``native=False``) and
  the object runtime (``vectorize=False``);
* **golden replay** — the committed ``tests/golden/*.json`` fixtures
  re-run with ``REPRO_NATIVE=1``: the golden sweep rides adapter
  workloads (smb, consensus), so this is the *fallback transparency*
  contract — demanding the native backend on work it cannot fuse must
  degrade to the numpy step per slot without moving a single bit;
* **selection** — ``REPRO_NATIVE=0`` forces the fallback
  (``native_slots`` stays 0), ``native=True`` without a built kernel
  fails loudly, and the auto mode picks whatever :func:`available`
  reports;
* **draw-count contract** — results are invariant under the
  :class:`NodeUniformBuffer` chunk size (the horizon pre-sizing
  optimisation in the vector engine rides exactly this property).

Everything that needs the compiled kernel skips cleanly when
``repro.native.available()`` is False (no C compiler): the portable
suite stays green, the CI ``native`` job proves the compiled side.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import native
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.cache import deployment_artifacts, resolve_deployment
from repro.simulation.rng import (
    NodeUniformBuffer,
    spawn_node_rngs,
    spawn_trial_seeds,
)
from repro.sinr.channel import Channel
from repro.vectorized import DecayKernel, VectorRuntime

from test_golden_results import _fixture_path, golden_plans, serialize

N = 12
RADIUS = 9.0
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=RADIUS, seed=33)

needs_native = pytest.mark.skipif(
    not native.available(),
    reason="native kernel not built (run `make native`)",
)


def make_plans(stack, trials, broadcasters, **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        broadcasters=broadcasters,
        label=f"native-eq-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


# -- result-level equivalence -----------------------------------------------


@needs_native
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize(
    "broadcasters", [None, (0, 1, 2)], ids=["sync", "staggered"]
)
def test_results_bit_identical_native(stack, trials, broadcasters):
    """The acceptance matrix: native == numpy == object, field for
    field (counters-only plans — the shape the C kernel fuses)."""
    plans = make_plans(stack, trials, broadcasters, record_physical=False)
    nat = run_trials(plans, vectorize=True, native=True)
    ref = run_trials(plans, vectorize=True, native=False)
    obj = run_trials(plans, vectorize=False)
    assert nat == ref == obj
    # Guard against the trivial way this could pass: the runs did work.
    assert all(result.transmissions > 0 for result in nat)


@needs_native
@pytest.mark.parametrize("stack", ["decay", "ack"])
def test_fixed_slots_native(stack):
    """Fixed-budget workloads (incl. an observation tail) match too."""
    plans = make_plans(
        stack,
        4,
        None,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=400),
        extra_slots=25,
        record_physical=False,
    )
    assert run_trials(plans, vectorize=True, native=True) == run_trials(
        plans, vectorize=True, native=False
    )


@needs_native
def test_native_kernel_actually_engages():
    """native=True on a fusible batch must advance slots *in C* — a
    silent always-fallback would render the whole matrix vacuous."""
    runtime = _direct_runtime(native=True)
    runtime.run(200)
    assert runtime.native_slots == 200
    assert runtime.channels[0].total_transmissions > 0


# -- golden-fixture replay (fallback transparency) --------------------------


@needs_native
@pytest.mark.parametrize("name", sorted(golden_plans()))
def test_golden_fixtures_replay_under_forced_native(name, monkeypatch):
    """REPRO_NATIVE=1 on the committed golden sweep: the adapter
    workloads (smb, consensus) are outside the fusion boundary, so the
    runtime must transparently take the numpy step yet reproduce the
    committed fixtures bit for bit."""
    monkeypatch.setenv("REPRO_NATIVE", "1")
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    actual = serialize(run_trials(golden_plans()[name]))
    assert actual == expected


# -- backend selection ------------------------------------------------------


def _direct_runtime(chunk: int = 512, native: bool | None = None):
    points = resolve_deployment(DEPLOYMENT)
    params = TrialPlan(deployment=DEPLOYMENT).params
    artifacts = deployment_artifacts(points, params)
    config = DecayConfig(contention_bound=16.0, eps_ack=0.2)
    channel = Channel(
        points,
        params,
        distances=artifacts.distances,
        gains=artifacts.gains,
    )
    runtime = VectorRuntime(
        [channel],
        DecayKernel([config], N),
        seeds=[77],
        record_physical=False,
        chunk=chunk,
        native=native,
    )
    for node in range(N):
        runtime.bcast(0, node, payload=f"m{node}")
    return runtime


def test_env_zero_forces_numpy_fallback(monkeypatch):
    """REPRO_NATIVE=0 pins the reference path even when the compiled
    kernel is built: not one slot runs in C, same results."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    env_off = _direct_runtime()
    env_off.run(200)
    assert env_off.native_slots == 0
    monkeypatch.delenv("REPRO_NATIVE")
    reference = _direct_runtime(native=False)
    reference.run(200)
    assert reference.native_slots == 0
    assert (
        env_off.channels[0].total_transmissions
        == reference.channels[0].total_transmissions
    )
    assert (
        env_off.channels[0].total_receptions
        == reference.channels[0].total_receptions
    )


def test_resolve_backend_decision_table(monkeypatch):
    """explicit=False always wins; env 0 forces the fallback; env 1 and
    native=True demand the kernel (loud RuntimeError when unbuilt);
    unset auto-selects whatever available() reports."""
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert native.resolve_backend(False) is False
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert native.resolve_backend(None) is False
    monkeypatch.delenv("REPRO_NATIVE")

    monkeypatch.setattr(native, "available", lambda: True)
    assert native.resolve_backend(None) is True
    assert native.resolve_backend(True) is True
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert native.resolve_backend(None) is True
    monkeypatch.delenv("REPRO_NATIVE")

    monkeypatch.setattr(native, "available", lambda: False)
    assert native.resolve_backend(None) is False
    with pytest.raises(RuntimeError, match="native=True demands"):
        native.resolve_backend(True)
    monkeypatch.setenv("REPRO_NATIVE", "1")
    with pytest.raises(RuntimeError, match="REPRO_NATIVE=1 demands"):
        native.resolve_backend(None)


def test_available_is_a_clean_probe():
    """available() must answer without raising on any machine — it is
    the skip guard for this whole suite."""
    assert native.available() in (True, False)
    assert native.lib_path().name == "_advance.so"


# -- RNG draw-count / chunk-size contract -----------------------------------


@pytest.mark.parametrize("chunk", [7, 4096])
def test_results_invariant_under_chunk_size(chunk):
    """One Generator.random(chunk) call per refill yields the same
    per-node stream for any chunk (PCG64 emits one output per double),
    so the engine's horizon pre-sizing — one big refill instead of many
    per-slot ones — cannot move a bit.  Pinned here at the runtime
    level for whichever backend is active."""
    baseline = _direct_runtime(chunk=512)
    resized = _direct_runtime(chunk=chunk)
    baseline.run(300)
    resized.run(300)
    for a, b in zip(baseline.channels, resized.channels):
        assert a.total_transmissions == b.total_transmissions
        assert a.total_receptions == b.total_receptions
    assert [e[:3] for e in baseline.traces[0]] == [
        e[:3] for e in resized.traces[0]
    ]


def test_uniform_buffer_chunk_equivalence():
    """NodeUniformBuffer serves the identical stream regardless of
    chunk size — the property the horizon pre-sizing rides on."""
    small = NodeUniformBuffer(spawn_node_rngs(5, seed=21), chunk=3)
    large = NodeUniformBuffer(spawn_node_rngs(5, seed=21), chunk=1000)
    lanes = np.arange(5, dtype=np.intp)
    for _ in range(50):
        assert small.take(lanes).tolist() == large.take(lanes).tolist()
