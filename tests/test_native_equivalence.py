"""The native backend's defining contract: decode-for-decode identity
with both pure-python executors.

The fused C slot loop (:mod:`repro.native`) is a *fourth* way to run a
trial — object runtime, columnar numpy, engine-batched columnar, and
now the compiled kernel — and every one of them must produce the same
:class:`TrialResult`, field for field.  This suite pins that:

* **results** — the acceptance matrix {Decay, Ack} × {1, 8 trials} ×
  {synchronous, staggered wakeup}: ``run_trials(native=True)`` must be
  dataclass-equal to the pure-numpy reference (``native=False``) and
  the object runtime (``vectorize=False``);
* **golden replay** — the committed ``tests/golden/*.json`` fixtures
  re-run with ``REPRO_NATIVE=1``: the golden sweep rides adapter
  workloads (smb, consensus), so this is the *fallback transparency*
  contract — demanding the native backend on work it cannot fuse must
  degrade to the numpy step per slot without moving a single bit;
* **selection** — ``REPRO_NATIVE=0`` forces the fallback
  (``native_slots`` stays 0), ``native=True`` without a built kernel
  fails loudly, and the auto mode picks whatever :func:`available`
  reports;
* **draw-count contract** — results are invariant under the
  :class:`NodeUniformBuffer` chunk size (the horizon pre-sizing
  optimisation in the vector engine rides exactly this property).

Everything that needs the compiled kernel skips cleanly when
``repro.native.available()`` is False (no C compiler): the portable
suite stays green, the CI ``native`` job proves the compiled side.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import native
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.cache import deployment_artifacts, resolve_deployment
from repro.simulation.rng import (
    NodeUniformBuffer,
    spawn_node_rngs,
    spawn_trial_seeds,
)
from repro.sinr.channel import Channel
from repro.sinr.params import SparseResolution
from repro.vectorized import DecayKernel, VectorRuntime

from test_golden_results import _fixture_path, golden_plans, serialize

N = 12
RADIUS = 9.0
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=RADIUS, seed=33)

needs_native = pytest.mark.skipif(
    not native.available(),
    reason="native kernel not built (run `make native`)",
)


def make_plans(stack, trials, broadcasters, **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        broadcasters=broadcasters,
        label=f"native-eq-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


# -- result-level equivalence -----------------------------------------------


@needs_native
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize(
    "broadcasters", [None, (0, 1, 2)], ids=["sync", "staggered"]
)
def test_results_bit_identical_native(stack, trials, broadcasters):
    """The acceptance matrix: native == numpy == object, field for
    field (counters-only plans — the shape the C kernel fuses)."""
    plans = make_plans(stack, trials, broadcasters, record_physical=False)
    nat = run_trials(plans, vectorize=True, native=True)
    ref = run_trials(plans, vectorize=True, native=False)
    obj = run_trials(plans, vectorize=False)
    assert nat == ref == obj
    # Guard against the trivial way this could pass: the runs did work.
    assert all(result.transmissions > 0 for result in nat)


@needs_native
@pytest.mark.parametrize("stack", ["decay", "ack"])
def test_fixed_slots_native(stack):
    """Fixed-budget workloads (incl. an observation tail) match too."""
    plans = make_plans(
        stack,
        4,
        None,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=400),
        extra_slots=25,
        record_physical=False,
    )
    assert run_trials(plans, vectorize=True, native=True) == run_trials(
        plans, vectorize=True, native=False
    )


@needs_native
def test_native_kernel_actually_engages():
    """native=True on a fusible batch must advance slots *in C* — a
    silent always-fallback would render the whole matrix vacuous."""
    runtime = _direct_runtime(native=True)
    runtime.run(200)
    assert runtime.native_slots == 200
    assert runtime.channels[0].total_transmissions > 0


# -- sparse-native CSR path + trial-parallel threading -----------------------


def sparse_exact_params():
    """The batch params that ride the fused CSR decode path.

    ``min_n=1`` forces the resolver on for these deliberately tiny
    deployments (the production crossover would route n=12 to the
    dense kernels and leave nothing sparse under test)."""
    params = TrialPlan(deployment=DEPLOYMENT).params
    return dataclasses.replace(
        params, sparse=SparseResolution(mode="exact", min_n=1)
    )


@needs_native
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize("physics", ["dense", "sparse-exact"])
@pytest.mark.parametrize("threads", [1, 2, 8])
def test_native_matrix_physics_and_threads(stack, trials, physics, threads):
    """The PR-10 acceptance matrix: {Decay, Ack} × {1, 8 trials} ×
    {dense, sparse-exact} × threads {1, 2, 8} — the native kernel must
    be dataclass-equal to the pure-numpy reference and the object
    runtime in every cell.  Threads partition the trials axis, so this
    also pins that results cannot depend on the thread count."""
    kwargs = {"record_physical": False}
    if physics == "sparse-exact":
        kwargs["params"] = sparse_exact_params()
    plans = make_plans(stack, trials, (0, 1, 2), **kwargs)
    nat = run_trials(
        plans,
        ExecutionPolicy(vectorize=True, native=True, native_threads=threads),
    )
    ref = run_trials(plans, ExecutionPolicy(vectorize=True, native=False))
    obj = run_trials(plans, ExecutionPolicy(vectorize=False))
    assert nat == ref == obj
    assert all(result.transmissions > 0 for result in nat)


@needs_native
def test_sparse_native_kernel_engages():
    """Sparse-exact batches must actually advance in C — without this
    pin the sparse half of the matrix could silently pass through the
    numpy fallback."""
    runtime = _direct_runtime(native=True, sparse=True, threads=2)
    assert runtime._native_ok()
    runtime.run(200)
    assert runtime.native_slots == 200
    assert runtime.channels[0].total_transmissions > 0


@needs_native
def test_sparse_farfield_stays_numpy():
    """Only *exact* sparse mode is inside the fusion boundary: the
    farfield approximation keeps the numpy step (its ε-contract decode
    has no C twin), transparently."""
    params = dataclasses.replace(
        TrialPlan(deployment=DEPLOYMENT).params,
        sparse=SparseResolution(mode="farfield", min_n=1),
    )
    plans = make_plans("decay", 2, (0, 1, 2),
                       record_physical=False, params=params)
    nat = run_trials(plans, ExecutionPolicy(vectorize=True, native=True))
    ref = run_trials(plans, ExecutionPolicy(vectorize=True, native=False))
    assert nat == ref


@needs_native
@pytest.mark.parametrize("threads", [3, 5])
def test_thread_count_invariance_direct(threads):
    """Same runtime, same seeds, different thread partition: traces and
    counters must not move — per-trial event order is preserved because
    each trial's events drain from the same per-thread segment in
    ascending trial-range order."""
    baseline = _direct_runtime(native=True)
    threaded = _direct_runtime(native=True, threads=threads)
    baseline.run(300)
    threaded.run(300)
    assert threaded.native_slots == 300
    for a, b in zip(baseline.channels, threaded.channels):
        assert a.total_transmissions == b.total_transmissions
        assert a.total_receptions == b.total_receptions
    assert list(baseline.traces[0]) == list(threaded.traces[0])


def test_resolve_threads_decision_table(monkeypatch):
    """explicit wins over the environment; unset defaults to 1; a bad
    REPRO_NATIVE_THREADS fails loudly instead of silently serializing."""
    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    assert native.resolve_threads() == 1
    assert native.resolve_threads(4) == 4
    with pytest.raises(ValueError, match="native_threads"):
        native.resolve_threads(0)
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "8")
    assert native.resolve_threads() == 8
    assert native.resolve_threads(2) == 2
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "two")
    with pytest.raises(RuntimeError, match="not an integer"):
        native.resolve_threads()
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "0")
    with pytest.raises(RuntimeError, match=">= 1"):
        native.resolve_threads()


# -- eligibility decision table (mirrored by reprolint X103) -----------------

# One row per predicate of VectorRuntime._native_ok.  Each row trips
# exactly one eligibility knob on an otherwise-fusible runtime and
# states whether the probe must still pass.  reprolint rule X103
# cross-checks this table against the _native_ok source: a new
# predicate without a row here fails the lint, so the selection tests
# can never silently lag the probe.
NATIVE_ELIGIBILITY_CASES = [
    ("_use_native", lambda rt: setattr(rt, "_use_native", False), False),
    ("adapter", lambda rt: setattr(rt, "adapter", object()), False),
    ("_has_adversary", lambda rt: setattr(rt, "_has_adversary", True), False),
    # sparse physics is ineligible unless the batch qualified for the
    # CSR decode path (exact mode, one shared resolver)...
    (
        "_sparse",
        lambda rt: (
            setattr(rt, "_sparse", True),
            setattr(rt, "_sparse_native_ok", False),
        ),
        False,
    ),
    # ...in which case it stays fusible.
    (
        "_sparse_native_ok",
        lambda rt: (
            setattr(rt, "_sparse", True),
            setattr(rt, "_sparse_native_ok", True),
        ),
        True,
    ),
    ("_stochastic", lambda rt: setattr(rt, "_stochastic", True), False),
    ("_dynamic", lambda rt: setattr(rt, "_dynamic", True), False),
    (
        "_alive",
        lambda rt: setattr(
            rt, "_alive", np.ones(rt.trials * rt.n, dtype=bool)
        ),
        False,
    ),
    (
        "record_physical",
        lambda rt: setattr(rt, "record_physical", True),
        False,
    ),
    ("_seen", lambda rt: setattr(rt, "_seen", None), False),
    ("kernel", lambda rt: setattr(rt, "kernel", object()), False),
]


@needs_native
@pytest.mark.parametrize(
    "attr,trip,expected",
    NATIVE_ELIGIBILITY_CASES,
    ids=[case[0] for case in NATIVE_ELIGIBILITY_CASES],
)
def test_native_eligibility_decision_table(attr, trip, expected):
    """Every _native_ok predicate flips eligibility exactly as the
    decision table states."""
    runtime = _direct_runtime(native=True)
    assert runtime._native_ok(), "baseline runtime must be fusible"
    trip(runtime)
    assert runtime._native_ok() is expected


# -- golden-fixture replay (fallback transparency) --------------------------


@needs_native
@pytest.mark.parametrize("name", sorted(golden_plans()))
def test_golden_fixtures_replay_under_forced_native(name, monkeypatch):
    """REPRO_NATIVE=1 on the committed golden sweep: the adapter
    workloads (smb, consensus) are outside the fusion boundary, so the
    runtime must transparently take the numpy step yet reproduce the
    committed fixtures bit for bit."""
    monkeypatch.setenv("REPRO_NATIVE", "1")
    expected = json.loads(_fixture_path(name).read_text(encoding="utf-8"))
    actual = serialize(run_trials(golden_plans()[name]))
    assert actual == expected


# -- backend selection ------------------------------------------------------


def _direct_runtime(
    chunk: int = 512,
    native: bool | None = None,
    sparse: bool = False,
    threads: int | None = None,
):
    points = resolve_deployment(DEPLOYMENT)
    params = TrialPlan(deployment=DEPLOYMENT).params
    if sparse:
        params = sparse_exact_params()
    config = DecayConfig(contention_bound=16.0, eps_ack=0.2)
    if sparse:
        channel = Channel(points, params)
    else:
        artifacts = deployment_artifacts(points, params)
        channel = Channel(
            points,
            params,
            distances=artifacts.distances,
            gains=artifacts.gains,
        )
    runtime = VectorRuntime(
        [channel],
        DecayKernel([config], N),
        seeds=[77],
        record_physical=False,
        chunk=chunk,
        native=native,
        native_threads=threads,
    )
    for node in range(N):
        runtime.bcast(0, node, payload=f"m{node}")
    return runtime


def test_env_zero_forces_numpy_fallback(monkeypatch):
    """REPRO_NATIVE=0 pins the reference path even when the compiled
    kernel is built: not one slot runs in C, same results."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    env_off = _direct_runtime()
    env_off.run(200)
    assert env_off.native_slots == 0
    monkeypatch.delenv("REPRO_NATIVE")
    reference = _direct_runtime(native=False)
    reference.run(200)
    assert reference.native_slots == 0
    assert (
        env_off.channels[0].total_transmissions
        == reference.channels[0].total_transmissions
    )
    assert (
        env_off.channels[0].total_receptions
        == reference.channels[0].total_receptions
    )


def test_resolve_backend_decision_table(monkeypatch):
    """explicit=False always wins; env 0 forces the fallback; env 1 and
    native=True demand the kernel (loud RuntimeError when unbuilt);
    unset auto-selects whatever available() reports."""
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert native.resolve_backend(False) is False
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert native.resolve_backend(None) is False
    monkeypatch.delenv("REPRO_NATIVE")

    monkeypatch.setattr(native, "available", lambda: True)
    assert native.resolve_backend(None) is True
    assert native.resolve_backend(True) is True
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert native.resolve_backend(None) is True
    monkeypatch.delenv("REPRO_NATIVE")

    monkeypatch.setattr(native, "available", lambda: False)
    assert native.resolve_backend(None) is False
    with pytest.raises(RuntimeError, match="native=True demands"):
        native.resolve_backend(True)
    monkeypatch.setenv("REPRO_NATIVE", "1")
    with pytest.raises(RuntimeError, match="REPRO_NATIVE=1 demands"):
        native.resolve_backend(None)


def test_available_is_a_clean_probe():
    """available() must answer without raising on any machine — it is
    the skip guard for this whole suite."""
    assert native.available() in (True, False)
    assert native.lib_path().name == "_advance.so"


# -- RNG draw-count / chunk-size contract -----------------------------------


@pytest.mark.parametrize("chunk", [7, 4096])
def test_results_invariant_under_chunk_size(chunk):
    """One Generator.random(chunk) call per refill yields the same
    per-node stream for any chunk (PCG64 emits one output per double),
    so the engine's horizon pre-sizing — one big refill instead of many
    per-slot ones — cannot move a bit.  Pinned here at the runtime
    level for whichever backend is active."""
    baseline = _direct_runtime(chunk=512)
    resized = _direct_runtime(chunk=chunk)
    baseline.run(300)
    resized.run(300)
    for a, b in zip(baseline.channels, resized.channels):
        assert a.total_transmissions == b.total_transmissions
        assert a.total_receptions == b.total_receptions
    assert [e[:3] for e in baseline.traces[0]] == [
        e[:3] for e in resized.traces[0]
    ]


# -- build staleness --------------------------------------------------------


def test_build_stamp_catches_flag_and_source_changes(tmp_path, monkeypatch):
    """The stamp sidecar must rebuild on _FLAGS changes — the case the
    old mtime-only check missed (the .so postdates the .c, so a flag
    like -pthread appearing in a new revision silently kept a stale
    kernel).  Exercised against a scratch source so the real kernel is
    never touched."""
    import importlib

    # repro.native re-exports the build *function*, shadowing the
    # submodule attribute; resolve the module itself.
    build_mod = importlib.import_module("repro.native.build")

    compiler = build_mod._find_compiler()
    if compiler is None:
        pytest.skip("no C compiler available")
    source = tmp_path / "stamped.c"
    source.write_text("int stamped(void) { return 7; }\n", encoding="utf-8")
    monkeypatch.setattr(build_mod, "SOURCE", source)
    monkeypatch.setattr(build_mod, "TARGET", source.with_suffix(".so"))
    monkeypatch.setattr(
        build_mod, "STAMP", source.with_suffix(".buildstamp.json")
    )

    target = build_mod.build(quiet=True)
    assert target is not None and target.is_file()
    assert build_mod.STAMP.is_file()
    assert build_mod._is_fresh(compiler)

    # Same source, same flags: a second build is a no-op.
    mtime = target.stat().st_mtime_ns
    assert build_mod.build(quiet=True) == target
    assert target.stat().st_mtime_ns == mtime

    # A flag change makes the build stale even though the .so still
    # postdates the .c — exactly what mtime comparison cannot see.
    monkeypatch.setattr(
        build_mod, "_FLAGS", (*build_mod._FLAGS, "-DSTAMP_TEST")
    )
    assert not build_mod._is_fresh(compiler)
    assert build_mod.build(quiet=True) == target
    assert build_mod._is_fresh(compiler)

    # Source edits and stamp corruption are stale too.
    source.write_text("int stamped(void) { return 8; }\n", encoding="utf-8")
    assert not build_mod._is_fresh(compiler)
    build_mod.build(quiet=True)
    build_mod.STAMP.write_text("not json", encoding="utf-8")
    assert not build_mod._is_fresh(compiler)


def test_uniform_buffer_chunk_equivalence():
    """NodeUniformBuffer serves the identical stream regardless of
    chunk size — the property the horizon pre-sizing rides on."""
    small = NodeUniformBuffer(spawn_node_rngs(5, seed=21), chunk=3)
    large = NodeUniformBuffer(spawn_node_rngs(5, seed=21), chunk=1000)
    lanes = np.arange(5, dtype=np.intp)
    for _ in range(50):
        assert small.take(lanes).tolist() == large.take(lanes).tolist()
