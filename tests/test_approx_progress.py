"""Tests for Algorithm 9.1 (repro.core.approx_progress)."""

import numpy as np
import pytest

from repro.analysis.harness import build_approg_stack
from repro.core.approx_progress import (
    ApproxProgressConfig,
    ApproxProgressEngine,
    EpochSchedule,
)
from repro.core.events import BcastMessage
from repro.geometry.deployment import uniform_disk
from repro.sinr.params import SINRParameters


@pytest.fixture
def config():
    return ApproxProgressConfig(lambda_bound=8.0, eps_approg=0.1, alpha=3.0)


@pytest.fixture
def schedule(config):
    return EpochSchedule(config)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=0.5)
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=4, eps_approg=0.0)
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=4, alpha=2.0)
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=4, p=0.6)
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=4, p=0.3, mu=0.3)
        with pytest.raises(ValueError):
            ApproxProgressConfig(lambda_bound=4, gamma=1.0)

    def test_phi_scales_with_lambda(self):
        small = ApproxProgressConfig(lambda_bound=4.0)
        large = ApproxProgressConfig(lambda_bound=256.0)
        assert large.phi_count > small.phi_count

    def test_q_scales_polynomially_in_log_lambda(self):
        """Q = Θ(log^α Λ) (Line 11)."""
        lo = ApproxProgressConfig(lambda_bound=4.0, alpha=3.0, q_scale=1.0)
        hi = ApproxProgressConfig(lambda_bound=64.0, alpha=3.0, q_scale=1.0)
        # log2 jumped 2 -> 6, so Q should jump ~27x.
        assert hi.q_factor >= 20 * lo.q_factor / 8

    def test_h_values_recursion(self, config):
        """Definition 9.2: h'_φ = 3 h_{φ+1}, h_φ = h'_φ + c·log* + 1."""
        h, h_prime = config.h_values()
        phi = config.phi_count
        assert h[phi - 1] == 1
        assert h_prime[phi - 1] == 1
        for idx in range(phi - 1):
            assert h_prime[idx] == 3 * h[idx + 1]
            assert h[idx] == h_prime[idx] + config.log_star_term + 1

    def test_h_values_bounds(self, config):
        """Lemma 10.4: 3^{Φ-1} <= h_1 <= c·4^Φ·log*(Λ/ε)."""
        phi = config.phi_count
        assert config.h1 >= 3 ** (phi - 1)
        assert config.h1 <= 4**phi * config.log_star_term * 4

    def test_repetitions_grow_with_tighter_eps(self):
        loose = ApproxProgressConfig(lambda_bound=8, eps_approg=0.5)
        tight = ApproxProgressConfig(lambda_bound=8, eps_approg=0.001)
        assert tight.repetitions > loose.repetitions

    def test_potential_threshold_below_mu_T(self, config):
        assert config.potential_threshold < config.mu * config.repetitions

    def test_label_space_polynomial(self):
        cfg = ApproxProgressConfig(lambda_bound=10.0, eps_approg=0.1)
        assert cfg.labels >= (10.0 / 0.1) ** 2 - 1

    def test_explicit_overrides(self):
        cfg = ApproxProgressConfig(
            lambda_bound=8, mis_round_budget=3, label_space=100
        )
        assert cfg.mis_rounds == 3
        assert cfg.labels == 100


class TestEpochSchedule:
    def test_epoch_composition(self, schedule, config):
        expected_phase = (2 + config.mis_rounds) * config.repetitions + (
            config.bcast_block_slots
        )
        assert schedule.phase_slots == expected_phase
        assert schedule.epoch_slots == config.phi_count * expected_phase

    def test_locate_blocks_in_order(self, schedule):
        t = schedule.t
        assert schedule.locate(0)[2] == EpochSchedule.EST1
        assert schedule.locate(t)[2] == EpochSchedule.EST2
        assert schedule.locate(2 * t)[2] == EpochSchedule.MIS
        bcast_start = (2 + schedule.rounds) * t
        assert schedule.locate(bcast_start)[2] == EpochSchedule.BCAST

    def test_locate_phase_and_epoch_indices(self, schedule):
        epoch, phase, block, off = schedule.locate(
            schedule.epoch_slots + schedule.phase_slots + 3
        )
        assert epoch == 1
        assert phase == 1
        assert block == EpochSchedule.EST1
        assert off == 3

    def test_mis_offset_encodes_round(self, schedule):
        t = schedule.t
        virtual = 2 * t + 1 * t + 5  # round 1, slot 5
        _, _, block, off = schedule.locate(virtual)
        assert block == EpochSchedule.MIS
        rnd, slot_in_round = divmod(off, t)
        assert rnd == 1
        assert slot_in_round == 5

    def test_negative_slot_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.locate(-1)

    def test_describe_mentions_parameters(self, schedule):
        text = schedule.describe()
        for token in ("epoch", "T=", "Q="):
            assert token in text


class TestEngineStateMachine:
    def make_engine(self, schedule, seed=0, with_message=True):
        engine = ApproxProgressEngine(
            schedule, np.random.default_rng(seed), node_id=0
        )
        if with_message:
            engine.message = BcastMessage(1, 0, "m")
        return engine

    def test_idle_without_message(self, schedule):
        engine = self.make_engine(schedule, with_message=False)
        payloads = [engine.step(v) for v in range(schedule.phase_slots)]
        assert all(p is None for p in payloads)

    def test_est1_payload_format(self, schedule):
        engine = self.make_engine(schedule, seed=1)
        sent = [
            p
            for v in range(schedule.t)
            if (p := engine.step(v)) is not None
        ]
        assert sent, "engine with a message should transmit in est1"
        for payload in sent:
            kind, phase, label = payload
            assert kind == "est1"
            assert phase == 0
            assert 1 <= label <= schedule.config.labels

    def test_send_pattern_recorded_matches_transmissions(self, schedule):
        engine = self.make_engine(schedule, seed=2)
        sent_slots = []
        for v in range(schedule.t):
            if engine.step(v) is not None:
                sent_slots.append(v)
        assert [
            i for i, sent in enumerate(engine._send_pattern) if sent
        ] == sent_slots

    def test_mis_replays_est1_schedule(self, schedule):
        engine = self.make_engine(schedule, seed=3)
        pattern = []
        for v in range(schedule.t):
            pattern.append(engine.step(v) is not None)
        # est2 block.
        for v in range(schedule.t, 2 * schedule.t):
            engine.step(v)
        # First MIS round must replay exactly the est1 pattern.
        replay = []
        for v in range(2 * schedule.t, 3 * schedule.t):
            replay.append(engine.step(v) is not None)
        assert replay == pattern

    def test_counting_receptions_creates_potentials(self, schedule):
        engine = self.make_engine(schedule, seed=4)
        threshold = schedule.config.potential_threshold
        # Simulate hearing label 7 often enough during est1.
        for v in range(schedule.t):
            engine.step(v)
            if v < threshold + 2:
                engine.on_reception(v, ("est1", 0, 7))
        engine.step(schedule.t)  # first est2 slot freezes potentials
        assert 7 in engine._potentials

    def test_below_threshold_not_potential(self, schedule):
        engine = self.make_engine(schedule, seed=5)
        engine.step(0)
        engine.on_reception(0, ("est1", 0, 9))  # heard once only
        for v in range(1, schedule.t + 1):
            engine.step(v)
        assert 9 not in engine._potentials

    def test_mutual_potentials_become_neighbors(self, schedule):
        engine = self.make_engine(schedule, seed=6)
        threshold = int(schedule.config.potential_threshold) + 1
        for v in range(schedule.t):
            engine.step(v)
            if v < threshold:
                engine.on_reception(v, ("est1", 0, 7))
        engine.step(schedule.t)
        my_label = engine._label
        engine.on_reception(
            schedule.t + 1, ("est2", 0, 7, frozenset({my_label}))
        )
        assert 7 in engine._neighbors

    def test_non_mutual_potential_rejected(self, schedule):
        engine = self.make_engine(schedule, seed=7)
        threshold = int(schedule.config.potential_threshold) + 1
        for v in range(schedule.t):
            engine.step(v)
            if v < threshold:
                engine.on_reception(v, ("est1", 0, 7))
        engine.step(schedule.t)
        engine.on_reception(
            schedule.t + 1, ("est2", 0, 7, frozenset({99999}))
        )
        assert 7 not in engine._neighbors

    def test_missing_neighbor_causes_dropout(self, schedule):
        engine = self.make_engine(schedule, seed=8)
        threshold = int(schedule.config.potential_threshold) + 1
        for v in range(schedule.t):
            engine.step(v)
            if v < threshold:
                engine.on_reception(v, ("est1", 0, 7))
        engine.step(schedule.t)
        my_label = engine._label
        engine.on_reception(
            schedule.t + 1, ("est2", 0, 7, frozenset({my_label}))
        )
        # Run the whole MIS block without ever hearing neighbor 7.
        for v in range(schedule.t + 2, (2 + schedule.rounds) * schedule.t + 1):
            engine.step(v)
        assert engine.drops == 1
        assert not engine._alive

    def test_isolated_node_becomes_dominator_and_bcasts(self, schedule):
        """A lone broadcaster survives every phase and transmits in
        every bcast block with probability p/Q."""
        engine = self.make_engine(schedule, seed=9)
        bcast_payloads = []
        for v in range(schedule.epoch_slots):
            payload = engine.step(v)
            _, _, block, _ = schedule.locate(v)
            if block == EpochSchedule.BCAST and payload is not None:
                bcast_payloads.append(payload)
        assert bcast_payloads, "lone node should transmit its message"
        assert all(isinstance(p, BcastMessage) for p in bcast_payloads)

    def test_first_bcast_recorded_per_epoch(self, schedule):
        engine = self.make_engine(schedule, seed=10, with_message=False)
        engine.step(0)
        incoming = BcastMessage(42, 3, "other")
        engine.on_reception(1, incoming)
        assert engine.first_bcast is incoming
        # A later message does not overwrite the first.
        engine.on_reception(2, BcastMessage(43, 4, "later"))
        assert engine.first_bcast.mid == 42

    def test_new_epoch_resets_first_bcast(self, schedule):
        engine = self.make_engine(schedule, seed=11, with_message=False)
        engine.step(0)
        engine.on_reception(1, BcastMessage(42, 3))
        engine.step(schedule.epoch_slots)  # first slot of epoch 1
        assert engine.first_bcast is None

    def test_mid_epoch_wake_stays_passive_until_boundary(self, schedule):
        """§9.3: a node woken mid-epoch joins at the next epoch
        boundary; until then it transmits nothing despite holding a
        message."""
        engine = self.make_engine(schedule, seed=12)
        start = schedule.t + 3  # first step lands inside est2 of phase 0
        for virtual in range(start, schedule.epoch_slots):
            assert engine.step(virtual) is None
        # At the boundary the node joins and eventually transmits.
        transmitted = False
        for virtual in range(
            schedule.epoch_slots, 2 * schedule.epoch_slots
        ):
            if engine.step(virtual) is not None:
                transmitted = True
                break
        assert transmitted

    def test_mid_epoch_wake_still_delivers_bcasts(self, schedule):
        """Passive observers still record overheard bcast-messages."""
        engine = self.make_engine(schedule, seed=13, with_message=False)
        start = 2 * schedule.t + 5  # mid-MIS of phase 0
        engine.step(start)
        incoming = BcastMessage(77, 9)
        engine.on_reception(start + 1, incoming)
        assert engine.first_bcast is incoming


class TestApproxProgressBehaviour:
    """End-to-end behaviour of Algorithm 9.1 on real channels."""

    @pytest.fixture
    def fast_config(self):
        # Smaller constants keep the test quick while preserving shape.
        return ApproxProgressConfig(
            lambda_bound=8.0,
            eps_approg=0.2,
            alpha=3.0,
            t_scale=0.2,
            bcast_scale=4.0,
        )

    def test_progress_on_small_deployment(self, fast_config):
        params = SINRParameters()
        pts = uniform_disk(12, radius=8.0, seed=31)
        stack = build_approg_stack(
            pts, params, approg_config=fast_config, seed=3
        )
        schedule = stack.macs[0].schedule
        for mac in stack.macs:
            mac.bcast(payload=f"m{mac.node_id}")
        stack.runtime.run(2 * schedule.epoch_slots)
        report = stack.approg_report()
        assert report.records, "dense deployment must trigger episodes"
        satisfied = report.success_fraction(2 * schedule.epoch_slots)
        assert satisfied >= 0.8

    def test_no_acks_ever(self, fast_config):
        """Remark 10.19: Algorithm 9.1 alone never acknowledges."""
        params = SINRParameters()
        pts = uniform_disk(8, radius=6.0, seed=32)
        stack = build_approg_stack(
            pts, params, approg_config=fast_config, seed=4
        )
        stack.macs[0].bcast(payload="m")
        stack.runtime.run(stack.macs[0].schedule.epoch_slots)
        assert stack.runtime.trace.count("ack") == 0
        assert stack.macs[0].busy
