"""Plan-level failure injection (:class:`AdversarySpec`) on every executor.

PR 3 pinned the columnar protocol path under *imperatively constructed*
adversaries (direct ``VectorRuntime`` tests); this suite pins the
plan-level contract: a :class:`TrialPlan` carrying an
:class:`AdversarySpec` either rides the columnar fast path with
dataclass-equal results — jamming and gray-zone both deliver through
``Channel.finalize_slot``, so the same per-trial adversary RNG stream is
consumed in the same order on all three executors — or, for
columnar-ineligible stacks, deterministically falls back to the object
lockstep executor (never silently dropping the injection).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    AdversarySpec,
    DeploymentSpec,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.engine import build_stack, run_trial
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.channel import GrayZoneAdversary, JammingAdversary
from repro.vectorized import vector_eligible

N = 12
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=9.0, seed=33)

JAMMING = AdversarySpec(kind="jamming", drop_probability=0.15, seed=11)
GRAY = AdversarySpec(kind="gray_zone", gray_drop=0.5, seed=11)
SPECS = {"jamming": JAMMING, "gray_zone": GRAY}


def make_plans(trials, adversary, stack="decay", **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        adversary=adversary,
        label=f"adv-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


class TestSpecValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError, match="unknown adversary kind"):
            AdversarySpec(kind="emp")

    def test_probabilities_checked(self):
        with pytest.raises(ValueError, match="drop_probability"):
            AdversarySpec(drop_probability=1.5)
        with pytest.raises(ValueError, match="gray_drop"):
            AdversarySpec(kind="gray_zone", gray_drop=-0.1)

    def test_plan_rejects_non_spec(self):
        with pytest.raises(TypeError, match="AdversarySpec"):
            TrialPlan(
                deployment=DEPLOYMENT, stack="decay", adversary="jammer"
            )

    def test_build_kinds(self):
        stack = build_stack(make_plans(1, JAMMING)[0])
        assert isinstance(stack.runtime.channel.adversary, JammingAdversary)
        stack = build_stack(make_plans(1, GRAY)[0])
        adversary = stack.runtime.channel.adversary
        assert isinstance(adversary, GrayZoneAdversary)
        assert adversary.reliable_graph is stack.graph

    def test_per_trial_streams_differ(self):
        plans = make_plans(2, JAMMING)
        a = plans[0].adversary.build(None, plans[0].seed)
        b = plans[1].adversary.build(None, plans[1].seed)
        assert a.rng.random() != b.rng.random()


@pytest.mark.parametrize("kind", ["jamming", "gray_zone"])
@pytest.mark.parametrize("stack", ["decay", "ack"])
def test_adversary_plans_ride_fast_path_dataclass_equal(kind, stack):
    """The pin: adversary plans are columnar-eligible, and demanding the
    fast path (vectorize=True — no silent fallback possible) produces
    dataclass-equal results on all three executors."""
    plans = make_plans(4, SPECS[kind], stack=stack)
    assert all(vector_eligible(plan) for plan in plans)
    sequential = [run_trial(plan) for plan in plans]
    batched = run_trials(plans, vectorize=False)
    columnar = run_trials(plans, vectorize=True)
    assert sequential == batched
    assert batched == columnar
    assert all(result.transmissions > 0 for result in sequential)


@pytest.mark.parametrize("kind", ["jamming", "gray_zone"])
def test_adversary_protocol_workload_on_fast_path(kind):
    plans = make_plans(
        2,
        SPECS[kind],
        workload="smb",
        options=TrialPlan.pack_options(source=0),
    )
    sequential = [run_trial(plan) for plan in plans]
    assert sequential == run_trials(plans, vectorize=True)


def test_erasures_actually_happen():
    """Guard against the trivial pass: the injected adversary erases."""
    plan = make_plans(1, JAMMING)[0]
    stack = build_stack(plan)
    from repro.experiments.workloads import get_workload

    workload = get_workload(plan.workload)
    workload.start(stack, plan)
    stack.runtime.run_until(
        lambda _rt: workload.done(stack, plan), check_every=16
    )
    assert stack.runtime.channel.adversary.erased_count > 0
    # And the injection visibly perturbs the clean run.
    clean = run_trial(dataclasses.replace(plan, adversary=None))
    assert run_trial(plan) != clean


def test_ineligible_stack_falls_back_deterministically():
    """A columnar-ineligible stack with an adversary spec runs the
    object lockstep executor under auto-selection — same results as
    sequential, and vectorize=True refuses loudly rather than dropping
    the injection."""
    plans = make_plans(2, JAMMING, stack="combined")
    assert not any(vector_eligible(plan) for plan in plans)
    sequential = [run_trial(plan) for plan in plans]
    assert sequential == run_trials(plans)  # auto-select: object path
    with pytest.raises(ValueError, match="not columnar-eligible"):
        run_trials(plans, vectorize=True)


def test_jam_slots_and_pool_pickling():
    plans = make_plans(
        4,
        AdversarySpec(
            kind="jamming", jam_slots=tuple(range(0, 64, 4)), seed=3
        ),
    )
    assert run_trials(plans, workers=1) == run_trials(plans, workers=2)
