"""The job server: sharded execution, faults, streaming, and the TCP front.

The acceptance pin lives here: a 3-worker service run of a mixed
Decay/Ack + protocol-workload batch returns results dataclass-equal to
in-process :func:`run_trials` — the engine's bit-identity contract
extended across process boundaries.  Around it: plan-order streaming,
duplicate-submission cache hits, deterministic cancellation and
worker-crash requeue (via the ``REPRO_SERVICE_FAULT`` hooks in
:mod:`repro.service.worker` — no sleeps, no timing races), and a
round trip through the asyncio TCP front with
:class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.plans import TrialResult
from repro.service import (
    JobState,
    Scheduler,
    ServiceClient,
    SimulationService,
    shard_plans,
    start_service,
)
from repro.service.jobs import Job, JobQueue
from repro.simulation.rng import spawn_trial_seeds

DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=10, radius=6.0, seed=41)


def make_plans(stack="decay", trials=2, workload="local_broadcast", **kwargs):
    if stack == "decay":
        kwargs.setdefault(
            "decay_config", DecayConfig(contention_bound=16.0)
        )
    elif stack in ("ack", "combined"):
        kwargs.setdefault("ack_config", AckConfig(contention_bound=16.0))
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=workload,
        label=f"svc-{stack}-{workload}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=13))


def mixed_batch():
    """Decay + Ack + a protocol workload, the acceptance-criteria mix."""
    return (
        make_plans("decay", trials=3)
        + make_plans("ack", trials=3)
        + make_plans("decay", trials=2, workload="smb")
    )


# -- sharding ---------------------------------------------------------------


class TestShardPlans:
    def test_shards_are_contiguous_and_cover(self):
        plans = make_plans(trials=9)
        shards = shard_plans(plans, ExecutionPolicy(workers=2), job_id=1,
                             workers=2)
        assert [s.shard_id for s in shards] == sorted(
            s.shard_id for s in shards
        )
        covered = []
        cursor = 0
        for shard in shards:
            assert shard.start == cursor
            covered.extend(shard.plans)
            cursor = shard.stop
        assert covered == plans

    def test_never_more_shards_than_plans(self):
        plans = make_plans(trials=3)
        shards = shard_plans(plans, ExecutionPolicy(workers=8), job_id=1,
                             workers=8)
        assert len(shards) == 3

    def test_empty_plan_list_means_no_shards(self):
        assert shard_plans([], ExecutionPolicy(), job_id=1, workers=2) == []


# -- job bookkeeping --------------------------------------------------------


def _dummy_results(plans):
    return run_trials(plans, ExecutionPolicy(mode="sequential"))


class TestJobStreaming:
    def test_out_of_order_results_stream_in_plan_order(self):
        plans = tuple(make_plans(trials=3))
        results = _dummy_results(plans)
        job = Job(job_id=1, plans=plans, policy=ExecutionPolicy())
        job.record(2, results[2])
        job.record(0, results[0])
        job.record(1, results[1])
        job.finish(JobState.DONE)
        seen = [e for e in job.stream(timeout=1.0) if e[0] == "result"]
        assert [index for _, index, _ in seen] == [0, 1, 2]
        assert [r for _, _, r in seen] == list(results)

    def test_record_is_idempotent(self):
        plans = tuple(make_plans(trials=2))
        results = _dummy_results(plans)
        job = Job(job_id=1, plans=plans, policy=ExecutionPolicy())
        job.record(0, results[0])
        job.record(0, results[0])  # a requeued shard replays its trials
        assert job.completed == 1

    def test_wait_raises_on_failure(self):
        job = Job(
            job_id=1,
            plans=tuple(make_plans(trials=1)),
            policy=ExecutionPolicy(),
        )
        job.finish(JobState.FAILED, "shard exploded")
        with pytest.raises(RuntimeError, match="shard exploded"):
            job.wait(timeout=1.0)

    def test_duplicate_submission_is_a_cache_hit(self):
        queue = JobQueue()
        plans = make_plans(trials=2)
        first = queue.submit(plans)
        for index, result in enumerate(_dummy_results(plans)):
            first.record(index, result)
        first.finish(JobState.DONE)
        queue.publish(first)

        second = queue.submit(plans)
        assert second.cached
        assert second.state is JobState.DONE
        assert second.wait(timeout=1.0) == first.results
        assert queue.stats()["cache_hits"] == 1


class TestStreamJobEvents:
    """The TCP front's streaming loop: bounded queue polls plus terminal
    synthesis, so a job whose producer dies without a terminal event
    ends the stream instead of pinning an executor thread forever
    (reprolint C102 regression)."""

    @staticmethod
    def _drive(job, poll=0.05, timeout=5.0):
        from repro.service import server as server_module

        sent = []

        async def main():
            loop = asyncio.get_running_loop()
            await asyncio.wait_for(
                server_module._stream_job_events(job, sent.append, loop),
                timeout=timeout,
            )

        original = server_module._STREAM_POLL_SECONDS
        server_module._STREAM_POLL_SECONDS = poll
        try:
            asyncio.run(main())
        finally:
            server_module._STREAM_POLL_SECONDS = original
        return sent

    def test_events_pass_through_to_the_real_terminal(self):
        plans = tuple(make_plans(trials=2))
        results = _dummy_results(plans)
        job = Job(job_id=1, plans=plans, policy=ExecutionPolicy())
        for index, result in enumerate(results):
            job.record(index, result)
        job.finish(JobState.DONE)
        sent = self._drive(job)
        assert [e["event"] for e in sent if e["event"] == "result"] == [
            "result",
            "result",
        ]
        assert sent[-1] == {"event": "done"}

    def test_dead_job_without_terminal_event_ends_the_stream(self):
        job = Job(
            job_id=1,
            plans=tuple(make_plans(trials=1)),
            policy=ExecutionPolicy(),
        )
        # The failure mode the bounded poll exists for: the drain thread
        # died before finish() ran, so no terminal event was ever queued.
        job.state = JobState.FAILED
        job.error = "drain thread died"
        sent = self._drive(job)
        assert sent == [{"event": "failed", "error": "drain thread died"}]

    def test_dead_job_drains_queued_results_before_synthesizing(self):
        plans = tuple(make_plans(trials=1))
        results = _dummy_results(plans)
        job = Job(job_id=1, plans=plans, policy=ExecutionPolicy())
        job.record(0, results[0])
        job.state = JobState.CANCELLED
        sent = self._drive(job)
        assert [e["event"] for e in sent] == [
            "result",
            "progress",
            "cancelled",
        ]

    def test_poll_is_bounded(self):
        from repro.service import server as server_module

        job = Job(
            job_id=1,
            plans=tuple(make_plans(trials=1)),
            policy=ExecutionPolicy(),
        )
        original = server_module._STREAM_POLL_SECONDS
        server_module._STREAM_POLL_SECONDS = 0.01
        try:
            assert server_module._next_event(job) is None
        finally:
            server_module._STREAM_POLL_SECONDS = original


# -- the scheduler against a real pool --------------------------------------


class TestSchedulerPool:
    def test_three_worker_mixed_batch_matches_in_process(self):
        plans = mixed_batch()
        expected = run_trials(plans)
        with SimulationService(workers=3) as service:
            job = service.submit(plans, ExecutionPolicy(workers=3))
            got = service.results(job.job_id, timeout=120.0)
        assert got == expected  # dataclass-equal, i.e. bit-identical
        assert job.state is JobState.DONE

    def test_run_trials_workers_rides_the_scheduler(self):
        plans = make_plans(trials=4)
        assert run_trials(plans, ExecutionPolicy(workers=2)) == run_trials(
            plans
        )

    def test_streamed_events_arrive_in_plan_order(self):
        plans = make_plans(trials=4)
        with SimulationService(workers=2) as service:
            job = service.submit(plans, ExecutionPolicy(workers=2))
            indices = [
                event[1]
                for event in service.stream(job.job_id, timeout=120.0)
                if event[0] == "result"
            ]
        assert indices == [0, 1, 2, 3]

    def test_duplicate_submission_skips_the_pool(self):
        plans = make_plans(trials=3)
        with SimulationService(workers=2) as service:
            first = service.submit(plans)
            results = service.results(first.job_id, timeout=120.0)
            dispatched = service.stats()["shards_dispatched"]
            second = service.submit(plans)
            assert second.cached
            assert second.wait(timeout=1.0) == results
            stats = service.stats()
        assert stats["shards_dispatched"] == dispatched  # no new work
        assert stats["cache_hits"] == 1

    def test_cancellation_discards_late_results(self, tmp_path, monkeypatch):
        release = tmp_path / "release-the-worker"
        monkeypatch.setenv("REPRO_SERVICE_FAULT", f"stall:{release}")
        plans = make_plans(trials=4)
        with Scheduler(workers=2) as scheduler:
            job = scheduler.submit(plans, ExecutionPolicy(workers=2))
            # Workers are stalled on the flag file: results cannot have
            # arrived, so the cancel is deterministic.
            assert scheduler.cancel(job.job_id)
            assert not scheduler.cancel(job.job_id)  # already terminal
            release.write_text("go\n")
            with pytest.raises(RuntimeError, match="cancelled"):
                job.wait(timeout=60.0)
            assert job.state is JobState.CANCELLED

    def test_worker_crash_requeues_and_completes(self, tmp_path, monkeypatch):
        crashed = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_SERVICE_FAULT", f"crash-once:{crashed}")
        plans = make_plans(trials=4)
        expected = run_trials(plans)
        with Scheduler(workers=1, poll_interval=0.02) as scheduler:
            job = scheduler.submit(plans, ExecutionPolicy(workers=1))
            got = job.wait(timeout=120.0)
            stats = scheduler.stats()
        assert crashed.exists()  # the fault actually fired
        assert stats["workers_respawned"] >= 1
        assert stats["shards_requeued"] >= 1
        assert got == expected  # replayed shards are bit-identical

    def test_shard_exception_fails_the_job(self):
        # An unknown workload passes plan validation (it is just a
        # string) but raises inside the worker — a deterministic error,
        # so no retry: the job fails with the traceback.
        plans = [
            TrialPlan(
                deployment=DEPLOYMENT,
                stack="decay",
                workload="local_broadcast",
            ),
            TrialPlan(
                deployment=DEPLOYMENT,
                stack="decay",
                workload="no-such-workload",
            ),
        ]
        with SimulationService(workers=2) as service:
            job = service.submit(plans, ExecutionPolicy(workers=2))
            with pytest.raises(RuntimeError, match="no-such-workload"):
                service.results(job.job_id, timeout=60.0)
        assert job.state is JobState.FAILED


# -- the TCP front ----------------------------------------------------------


class TestTcpService:
    def test_client_run_matches_in_process(self):
        plans = mixed_batch()
        expected = run_trials(plans)
        with start_service(workers=3) as handle:
            client = ServiceClient(handle.host, handle.port)
            got = client.run(plans, ExecutionPolicy(workers=3))
            assert got == expected
            assert all(isinstance(r, TrialResult) for r in got)

    def test_status_cancel_and_stats_ops(self):
        plans = make_plans(trials=2)
        with start_service(workers=2) as handle:
            client = ServiceClient(handle.host, handle.port)
            submitted = client.submit(plans)
            assert submitted["total"] == 2
            status = client.status(submitted["job_id"])
            assert status["state"] in ("running", "done")
            # Drain to done, then duplicate-submit: a wire-level cache hit.
            events = list(
                client.submit_stream(plans)
            )
            assert events[-1][0] == "done"
            duplicate = client.submit(plans)
            assert duplicate["cached"] is True
            assert client.stats()["cache_hits"] >= 1
            # Cancelling a finished job is a clean no-op.
            assert client.cancel(submitted["job_id"]) is False

    def test_protocol_errors_keep_the_connection_alive(self):
        with start_service(workers=1) as handle:
            client = ServiceClient(handle.host, handle.port)
            with pytest.raises(RuntimeError, match="unknown op"):
                client._call({"op": "reticulate"})
            with pytest.raises(RuntimeError, match="service error"):
                client._call({"op": "status", "job_id": 999})
            assert client.stats()["workers"] == 1
