"""The dynamic-topology layer (:mod:`repro.topology`).

Four layers of evidence:

* **providers** — unit behavior of :class:`WaypointMobility` (bounded
  displacement, box confinement, private RNG), :class:`ChurnSchedule`
  (validation, scheduling, initial liveness), :class:`CompositeTopology`
  and :func:`random_churn_schedule`;
* **channel** — the epoch contract on :class:`Channel`:
  ``advance_topology`` refreshes geometry only at epoch boundaries,
  re-binding restarts deterministically, per-epoch geometry is shared
  through the artifact cache, and the channel model's static
  multipliers re-fold without extra draws;
* **equivalence** — the acceptance matrix: mobility and churn plans
  produce dataclass-equal :class:`TrialResult`s across the sequential,
  lockstep-batched and columnar executors over {decay, ack} × {1, 8
  trials}, plus protocol workloads, stochastic channels, counters-only
  mode, mixed static/dynamic batches and the process pool;
* **static identity** — a plan with ``topology=None`` or
  :class:`StaticTopology` is byte-identical to the pre-topology seed
  (same TrialResults, zero provider state, zero extra draws).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    ArtifactCache,
    DeploymentSpec,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.cache import deployment_artifacts, resolve_deployment
from repro.experiments.engine import build_stack, run_trial
from repro.geometry.points import bounding_box
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.channel import Channel
from repro.sinr.params import ChannelModel, SINRParameters
from repro.topology import (
    ChurnSchedule,
    CompositeTopology,
    StaticTopology,
    TopologyProvider,
    WaypointMobility,
    random_churn_schedule,
)

N = 12
DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=9.0, seed=33)

MOBILITY = WaypointMobility(epoch_slots=32, speed=0.6, seed=3)
CHURN = ChurnSchedule(
    events=(
        (5, 0, "crash"),
        (60, 0, "recover"),
        (10, 3, "crash"),
        (200, 3, "recover"),
    )
)
COMPOSITE = CompositeTopology(parts=(MOBILITY, CHURN))


def make_plans(stack, trials, topology, **kwargs):
    base = TrialPlan(
        deployment=DEPLOYMENT,
        stack=stack,
        workload=kwargs.pop("workload", "local_broadcast"),
        topology=topology,
        label=f"topo-{stack}",
        **kwargs,
    )
    return seeded_plans(base, spawn_trial_seeds(trials, seed=5))


def assert_three_executors_agree(plans):
    """Sequential, lockstep-batched and columnar must be dataclass-equal."""
    sequential = [run_trial(plan) for plan in plans]
    batched = run_trials(plans, vectorize=False)
    columnar = run_trials(plans, vectorize=True)
    assert sequential == batched
    assert batched == columnar
    assert all(result.transmissions > 0 for result in sequential)
    return sequential


# -- providers ---------------------------------------------------------------


class TestWaypointMobility:
    def test_validation(self):
        with pytest.raises(ValueError, match="epoch_slots"):
            WaypointMobility(epoch_slots=0)
        with pytest.raises(ValueError, match="speed"):
            WaypointMobility(speed=0.0)
        with pytest.raises(ValueError, match="bounds"):
            WaypointMobility(bounds=(1.0, 0.0, 0.0, 1.0))

    def test_epoch_displacement_bounded_and_in_box(self):
        points = resolve_deployment(DEPLOYMENT)
        provider = WaypointMobility(epoch_slots=10, speed=0.5, seed=1)
        state = provider.bind(points, seed=None)
        xmin, ymin, xmax, ymax = bounding_box(points.coords)
        previous = points.coords
        for slot in range(1, 101):
            update = state.advance(slot)
            if slot % 10 != 0:
                assert update is None
                continue
            assert update is not None and update.points is not None
            coords = update.points.coords
            moved = np.hypot(*(coords - previous).T)
            assert (moved <= 0.5 + 1e-12).all()
            assert (coords[:, 0] >= xmin - 1e-12).all()
            assert (coords[:, 0] <= xmax + 1e-12).all()
            assert (coords[:, 1] >= ymin - 1e-12).all()
            assert (coords[:, 1] <= ymax + 1e-12).all()
            previous = coords
        # Something actually moved over ten epochs.
        assert np.hypot(*(previous - points.coords).T).max() > 0.5

    def test_trajectory_is_provider_seeded_not_trial_seeded(self):
        points = resolve_deployment(DEPLOYMENT)
        provider = WaypointMobility(epoch_slots=4, speed=1.0, seed=9)
        a = provider.bind(points, seed=123)
        b = provider.bind(points, seed=456)
        for slot in range(1, 13):
            ua, ub = a.advance(slot), b.advance(slot)
            assert (ua is None) == (ub is None)
            if ua is not None:
                assert (
                    ua.points.coords.tobytes() == ub.points.coords.tobytes()
                )


class TestChurnSchedule:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnSchedule(events=((1, 0, "explode"),))
        with pytest.raises(ValueError, match="invalid churn event"):
            ChurnSchedule(events=((-1, 0, "crash"),))

    def test_not_dynamic_when_empty(self):
        assert not ChurnSchedule().is_dynamic
        assert ChurnSchedule(events=((1, 0, "crash"),)).is_dynamic
        assert ChurnSchedule(initially_down=(2,)).is_dynamic

    def test_schedule_applies_at_slot_top(self):
        points = resolve_deployment(DEPLOYMENT)
        state = CHURN.bind(points, seed=None)
        assert state.initial_alive() is None
        changes = {}
        for slot in range(70):  # the epoch contract: every slot, in order
            update = state.advance(slot)
            if update is not None:
                changes[slot] = update.alive.copy()
        assert sorted(changes) == [5, 10, 60]
        assert not changes[5][0]
        assert not changes[10][3] and not changes[10][0]
        assert changes[60][0] and not changes[60][3]

    def test_initially_down(self):
        provider = ChurnSchedule(initially_down=(2, 4))
        state = provider.bind(resolve_deployment(DEPLOYMENT), seed=None)
        alive = state.initial_alive()
        assert not alive[2] and not alive[4] and alive[0]

    def test_node_bounds_checked_at_bind(self):
        provider = ChurnSchedule(events=((1, 99, "crash"),))
        with pytest.raises(ValueError, match="outside"):
            provider.bind(resolve_deployment(DEPLOYMENT), seed=None)


class TestRandomChurnSchedule:
    def test_deterministic_and_spares_respected(self):
        a = random_churn_schedule(20, 0.001, 500, 40, seed=7, spare=(0, 3))
        b = random_churn_schedule(20, 0.001, 500, 40, seed=7, spare=(0, 3))
        assert a == b
        assert a.events  # the rate is high enough to produce churn
        assert all(node not in (0, 3) for _s, node, _k in a.events)
        crashes = sum(1 for _s, _n, kind in a.events if kind == "crash")
        recovers = sum(1 for _s, _n, kind in a.events if kind == "recover")
        assert crashes == recovers

    def test_overlapping_outages_merge(self):
        """Every emitted outage window lasts >= downtime slots: a crash
        landing inside an earlier window extends it instead of emitting
        an interleaved pair whose first recover would revive the node
        mid-second-outage."""
        downtime = 40
        schedule = random_churn_schedule(8, 0.02, 300, downtime, seed=5)
        per_node: dict[int, list[tuple[int, str]]] = {}
        for slot, node, kind in schedule.events:
            per_node.setdefault(node, []).append((slot, kind))
        assert any(len(ev) > 2 for ev in per_node.values())  # real case
        for events in per_node.values():
            events.sort()
            kinds = [kind for _s, kind in events]
            assert kinds == ["crash", "recover"] * (len(kinds) // 2)
            for (down, _), (up, _) in zip(events[::2], events[1::2]):
                assert up - down >= downtime


class TestComposite:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            CompositeTopology()
        with pytest.raises(TypeError, match="not a TopologyProvider"):
            CompositeTopology(parts=("mobility",))

    def test_merges_points_and_alive(self):
        state = COMPOSITE.bind(resolve_deployment(DEPLOYMENT), seed=None)
        updates = {}
        for slot in range(33):  # the epoch contract: every slot, in order
            update = state.advance(slot)
            if update is not None:
                updates[slot] = update
        # Churn slots carry liveness only; the epoch boundary carries
        # geometry only (no churn event coincides with it).
        assert updates[5].points is None and updates[5].alive is not None
        assert updates[32].points is not None and updates[32].alive is None


def test_static_topology_is_not_dynamic():
    assert not StaticTopology().is_dynamic
    assert isinstance(StaticTopology(), TopologyProvider)


def test_plan_rejects_non_provider_topology():
    with pytest.raises(TypeError, match="TopologyProvider"):
        TrialPlan(deployment=DEPLOYMENT, stack="decay", topology="mobile")


# -- the channel's epoch contract --------------------------------------------


class TestChannelTopology:
    def test_geometry_refresh_only_at_epoch_boundaries(self):
        stack = build_stack(make_plans("decay", 1, MOBILITY)[0])
        channel = stack.runtime.channel
        initial = channel.distances
        for slot in range(32):
            assert not channel.advance_topology(slot)
        assert channel.distances is initial
        assert channel.advance_topology(32)
        assert channel.distances is not initial
        assert channel.gains.shape == initial.shape

    def test_static_channel_pays_nothing(self):
        stack = build_stack(make_plans("decay", 1, None)[0])
        channel = stack.runtime.channel
        assert channel.topology is None and channel.alive is None
        assert not channel.advance_topology(0)

    def test_epoch_geometry_shared_across_trials_via_cache(self):
        """Two trials of one provider share each epoch's matrices (the
        zero-stride batching property of provider-seeded trajectories)."""
        plans = make_plans("decay", 2, MOBILITY)
        stacks = [build_stack(plan) for plan in plans]
        for slot in range(33):
            for stack in stacks:
                stack.runtime.channel.advance_topology(slot)
        a, b = (stack.runtime.channel for stack in stacks)
        assert a.distances is b.distances
        assert a.gains is b.gains

    def test_rebinding_restarts_the_trajectory(self):
        plan = make_plans("decay", 1, MOBILITY)[0]
        first = run_trial(plan)
        second = run_trial(plan)
        assert first == second

    def test_channel_model_refolds_onto_fresh_gains(self):
        """Per-epoch refresh must re-apply the trial's static channel
        multipliers without consuming any channel-stream draws."""
        params = SINRParameters(
            channel_model=ChannelModel(shadowing_sigma_db=3.0, power_spread=2.0)
        )
        points = resolve_deployment(DEPLOYMENT)
        art = deployment_artifacts(points, params)
        channel = Channel(
            points,
            params,
            distances=art.distances,
            gains=art.gains,
            topology=MOBILITY,
        )
        channel.bind_trial_seed(7)
        folded_before = channel.effective_gains
        assert channel.advance_topology(32)
        assert channel.effective_gains is not folded_before
        # The fold is gains-elementwise: the multiplier field (ratio to
        # the refreshed base gains) is exactly the one from binding.
        ratio_before = folded_before / art.gains
        ratio_after = channel.effective_gains / channel.gains
        np.testing.assert_allclose(ratio_before, ratio_after, rtol=1e-12)

    def test_crashed_nodes_are_silent_and_deaf(self):
        plan = make_plans(
            "decay",
            1,
            ChurnSchedule(events=((0, 0, "crash"), (40, 0, "recover"))),
            workload="fixed_slots",
            options=TrialPlan.pack_options(slots=40),
        )[0]
        stack = build_stack(plan)
        from repro.experiments.workloads import get_workload

        workload = get_workload(plan.workload)
        workload.start(stack, plan)
        stack.runtime.run(40)
        for slot, kind, node, _data in stack.runtime.trace.events:
            if kind in ("transmit", "receive", "rcv") and 0 <= slot < 40:
                assert node != 0, (slot, kind)


# -- the acceptance matrix: three executors, dataclass-equal ------------------


@pytest.mark.slow
@pytest.mark.parametrize("stack", ["decay", "ack"])
@pytest.mark.parametrize("trials", [1, 8])
@pytest.mark.parametrize(
    "topology", [MOBILITY, CHURN], ids=["mobility", "churn"]
)
def test_dynamic_results_equal_across_executors(stack, trials, topology):
    assert_three_executors_agree(make_plans(stack, trials, topology))


def test_composite_with_stochastic_channel_across_executors():
    params = SINRParameters(
        channel_model=ChannelModel(
            rayleigh=True, shadowing_sigma_db=3.0, power_spread=2.0
        )
    )
    assert_three_executors_agree(
        make_plans("ack", 3, COMPOSITE, params=params)
    )


def test_counters_only_churn_across_executors():
    results = assert_three_executors_agree(
        make_plans("decay", 4, COMPOSITE, record_physical=False)
    )
    assert all(result.approg_latencies == () for result in results)


@pytest.mark.parametrize(
    "workload,stack,options",
    [
        ("smb", "decay", TrialPlan.pack_options(source=0)),
        ("mmb", "decay", TrialPlan.pack_options(arrivals=((0, ("m0", "m1")),))),
        ("consensus", "decay", TrialPlan.pack_options(waves=6)),
    ],
)
def test_protocol_workloads_under_dynamic_topology(workload, stack, options):
    topology = CompositeTopology(
        parts=(
            WaypointMobility(epoch_slots=40, speed=0.4, seed=7),
            random_churn_schedule(N, 0.0005, 400, 60, seed=3, spare=(0,)),
        )
    )
    assert_three_executors_agree(
        make_plans(stack, 2, topology, workload=workload, options=options)
    )


def test_mixed_static_and_dynamic_plans_in_one_run():
    static = make_plans("decay", 2, None)
    dynamic = make_plans("decay", 2, MOBILITY)
    plans = static + dynamic
    sequential = [run_trial(plan) for plan in plans]
    assert sequential == run_trials(plans, vectorize=False)
    assert sequential == run_trials(plans, vectorize=True)


def test_process_pool_with_dynamic_topology():
    plans = make_plans("decay", 4, COMPOSITE)
    assert run_trials(plans, workers=1) == run_trials(plans, workers=2)


def test_churn_slows_completion():
    """A crashed broadcaster freezes: its trial finishes strictly later
    than the identical static trial (the layer visibly does something)."""
    static = run_trial(make_plans("decay", 1, None)[0])
    churned = run_trial(make_plans("decay", 1, CHURN)[0])
    assert churned.slots > static.slots


# -- static identity ----------------------------------------------------------


def test_static_provider_and_none_are_byte_identical():
    """topology=None, StaticTopology() and a non-dynamic ChurnSchedule
    all run the exact pre-topology path (same TrialResults, and labels
    aside, the same plans batch together)."""
    none_plans = make_plans("ack", 2, None)
    static_plans = [
        dataclasses.replace(plan, topology=StaticTopology())
        for plan in none_plans
    ]
    empty_churn_plans = [
        dataclasses.replace(plan, topology=ChurnSchedule())
        for plan in none_plans
    ]
    baseline = run_trials(none_plans)
    assert baseline == run_trials(static_plans)
    assert baseline == run_trials(empty_churn_plans)
    stack = build_stack(static_plans[0])
    assert stack.runtime.channel.topology is None


def test_artifact_cache_ignores_topology():
    """Plans with and without a provider share the deployment's cached
    artifacts — the static segments of a topology sweep stay shared."""
    cache = ArtifactCache()
    for topology in (None, MOBILITY):
        plan = dataclasses.replace(
            make_plans("decay", 1, topology)[0],
            workload="fixed_slots",
            options=TrialPlan.pack_options(slots=8),
        )
        run_trials([plan], cache=cache)
    assert cache.stats()["artifact_entries"] == 1
