"""Batched SINR kernels: equivalence with the sequential reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.deployment import uniform_disk
from repro.geometry.points import pairwise_distances
from repro.sinr.params import SINRParameters
from repro.sinr.physics import (
    _check_unique_listeners,
    check_batch_tensor_budget,
    gain_matrix,
    received_power,
    sinr_matrix,
    stack_distances,
    successful_receptions,
    successful_receptions_batch,
)


@pytest.fixture
def params() -> SINRParameters:
    return SINRParameters(
        power=1.0, alpha=3.0, beta=1.5, noise=1.0e-4, epsilon=0.1
    )


def random_trials(params, trials=6, n=14, seed=0):
    """Distance stack + heterogeneous transmitter sets for testing."""
    rng = np.random.default_rng(seed)
    matrices = []
    tx_sets = []
    for t in range(trials):
        points = uniform_disk(n, radius=8.0, seed=1000 + seed * 100 + t)
        matrices.append(pairwise_distances(points.coords))
        k = int(rng.integers(0, n + 1))
        tx_sets.append(
            np.sort(rng.choice(n, size=k, replace=False)).astype(np.intp)
        )
    return stack_distances(matrices), tx_sets


class TestGainMatrix:
    def test_matches_received_power(self, params):
        dists = pairwise_distances(uniform_disk(10, 8.0, seed=3).coords)
        assert np.array_equal(
            gain_matrix(params, dists), received_power(params, dists)
        )

    def test_clamps_degenerate_distances(self, params):
        gains = gain_matrix(params, np.array([[0.0, 1e-15], [1e-15, 0.0]]))
        assert np.all(np.isfinite(gains))
        assert gains.max() > 1e20  # clamped, astronomically strong

    def test_batched_shape(self, params):
        stack, _ = random_trials(params, trials=3, n=7)
        assert gain_matrix(params, stack).shape == (3, 7, 7)


class TestSinrMatrixGainsPath:
    def test_gains_path_bit_identical(self, params):
        dists = pairwise_distances(uniform_disk(12, 8.0, seed=5).coords)
        gains = gain_matrix(params, dists)
        tx = np.array([0, 3, 7], dtype=np.intp)
        direct = sinr_matrix(params, dists, tx)
        cached = sinr_matrix(params, dists, tx, gains=gains)
        assert np.array_equal(direct, cached)

    def test_tx_powers_ignores_gains(self, params):
        dists = pairwise_distances(uniform_disk(8, 8.0, seed=6).coords)
        gains = gain_matrix(params, dists)
        tx = np.array([1, 4], dtype=np.intp)
        powered = sinr_matrix(
            params, dists, tx, tx_powers=np.array([2.0, 3.0]), gains=gains
        )
        assert not np.array_equal(powered, sinr_matrix(params, dists, tx))


class TestBatchedReceptions:
    def test_matches_sequential_per_trial(self, params):
        stack, tx_sets = random_trials(params, trials=8, n=14, seed=1)
        batch = successful_receptions_batch(params, stack, tx_sets)
        for b, tx in enumerate(tx_sets):
            assert batch[b] == successful_receptions(params, stack[b], tx)

    def test_precomputed_gains_identical(self, params):
        stack, tx_sets = random_trials(params, trials=5, n=12, seed=2)
        gains = gain_matrix(params, stack)
        assert successful_receptions_batch(
            params, stack, tx_sets, gains=gains
        ) == successful_receptions_batch(params, stack, tx_sets)

    def test_empty_transmitter_trials(self, params):
        stack, tx_sets = random_trials(params, trials=4, n=10, seed=3)
        tx_sets[1] = np.empty(0, dtype=np.intp)
        batch = successful_receptions_batch(params, stack, tx_sets)
        assert batch[1] == {}
        for b in (0, 2, 3):
            assert batch[b] == successful_receptions(
                params, stack[b], tx_sets[b]
            )

    def test_all_trials_silent(self, params):
        stack, _ = random_trials(params, trials=3, n=6, seed=4)
        empty = [np.empty(0, dtype=np.intp)] * 3
        assert successful_receptions_batch(params, stack, empty) == [{}] * 3

    def test_per_trial_listener_restriction(self, params):
        stack, tx_sets = random_trials(params, trials=4, n=12, seed=5)
        listeners = [np.array([0, 1, 2]), np.array([5]), np.arange(12), []]
        batch = successful_receptions_batch(
            params, stack, tx_sets, listeners=listeners
        )
        for b, (tx, ls) in enumerate(zip(tx_sets, listeners)):
            assert batch[b] == successful_receptions(
                params, stack[b], tx, listeners=np.asarray(ls, dtype=np.intp)
            )

    def test_half_duplex_in_batch(self, params):
        # Node 0 transmits in trial 0 only; it must still be able to
        # listen in trial 1 (padding/masking must be per-trial).
        points = uniform_disk(6, radius=4.0, seed=9)
        dists = pairwise_distances(points.coords)
        stack = stack_distances([dists, dists])
        batch = successful_receptions_batch(
            params, stack, [np.array([0]), np.array([1])]
        )
        assert 0 not in batch[0]
        assert batch[1].get(0) == 1  # dense disk: node 0 decodes node 1

    def test_rejects_wrong_rank(self, params):
        dists = pairwise_distances(uniform_disk(5, 6.0, seed=1).coords)
        with pytest.raises(ValueError, match="trials, n, n"):
            successful_receptions_batch(params, dists, [np.array([0])])

    def test_rejects_mismatched_trial_count(self, params):
        stack, tx_sets = random_trials(params, trials=3, n=8, seed=6)
        with pytest.raises(ValueError, match="one transmitter set"):
            successful_receptions_batch(params, stack, tx_sets[:2])
        with pytest.raises(ValueError, match="one listener set"):
            successful_receptions_batch(
                params, stack, tx_sets, listeners=[np.array([0])]
            )


class TestStackDistances:
    def test_stacks(self, params):
        a = pairwise_distances(uniform_disk(7, 6.0, seed=1).coords)
        b = pairwise_distances(uniform_disk(7, 6.0, seed=2).coords)
        stacked = stack_distances([a, b])
        assert stacked.shape == (2, 7, 7)
        assert np.array_equal(stacked[0], a)
        assert np.array_equal(stacked[1], b)

    def test_rejects_empty_and_mixed_shapes(self):
        with pytest.raises(ValueError, match="at least one"):
            stack_distances([])
        with pytest.raises(ValueError, match="square"):
            stack_distances([np.zeros((3, 4))])
        with pytest.raises(ValueError, match="one node count"):
            stack_distances([np.zeros((3, 3)), np.zeros((4, 4))])


class TestFlatIndexMode:
    """flat=True returns (trial, listener, sender) arrays equal to the
    dict mode's content, in (trial, transmitter, listener) order."""

    def test_flat_matches_dicts(self, params):
        stack, tx_sets = random_trials(params, trials=7, n=14, seed=7)
        dicts = successful_receptions_batch(params, stack, tx_sets)
        t_idx, u_idx, s_idx = successful_receptions_batch(
            params, stack, tx_sets, flat=True
        )
        rebuilt = [dict() for _ in range(len(tx_sets))]
        for t, u, s in zip(t_idx.tolist(), u_idx.tolist(), s_idx.tolist()):
            rebuilt[t][u] = s
        assert rebuilt == dicts
        # trial indices come back sorted (trial-major flat layout)
        assert np.all(np.diff(t_idx) >= 0)

    def test_flat_empty_batch(self, params):
        stack, _ = random_trials(params, trials=3, n=6, seed=8)
        empty = [np.empty(0, dtype=np.intp)] * 3
        t_idx, u_idx, s_idx = successful_receptions_batch(
            params, stack, empty, flat=True
        )
        assert t_idx.size == u_idx.size == s_idx.size == 0

    def test_flat_respects_listener_restriction(self, params):
        stack, tx_sets = random_trials(params, trials=4, n=12, seed=9)
        listeners = [np.array([0, 1, 2]), np.array([5]), np.arange(12), []]
        dicts = successful_receptions_batch(
            params, stack, tx_sets, listeners=listeners
        )
        t_idx, u_idx, s_idx = successful_receptions_batch(
            params, stack, tx_sets, listeners=listeners, flat=True
        )
        rebuilt = [dict() for _ in range(len(tx_sets))]
        for t, u, s in zip(t_idx.tolist(), u_idx.tolist(), s_idx.tolist()):
            rebuilt[t][u] = s
        assert rebuilt == dicts


class TestBatchTensorBudget:
    """The memory guard: oversized (trials, n, n) stacks refuse loudly."""

    def test_within_budget_passes(self):
        check_batch_tensor_budget(4, 100, max_bytes=4 * 100 * 100 * 8)

    def test_over_budget_raises_with_chunk_hint(self):
        with pytest.raises(MemoryError, match="chunks of <= 2 trial"):
            check_batch_tensor_budget(5, 100, max_bytes=2 * 100 * 100 * 8)

    def test_single_trial_too_big_says_so(self):
        with pytest.raises(MemoryError, match="already needs"):
            check_batch_tensor_budget(2, 1000, max_bytes=100)

    def test_zero_budget_disables_guard(self):
        check_batch_tensor_budget(10_000, 10_000, max_bytes=0)

    def test_stack_distances_guarded(self):
        mats = [np.ones((20, 20)) for _ in range(6)]
        with pytest.raises(MemoryError, match="REPRO_BATCH_TENSOR_BUDGET"):
            stack_distances(mats, max_bytes=3 * 20 * 20 * 8)
        assert stack_distances(mats, max_bytes=6 * 20 * 20 * 8).shape == (
            6, 20, 20,
        )

    def test_default_budget_admits_engine_scale(self):
        # The default must not get in the way of the recorded
        # 8-seed / 1000-node sweeps.
        check_batch_tensor_budget(8, 1000)


class TestUniquenessCheck:
    """The β > 1 invariant is enforced identically with and without -O."""

    def test_duplicate_listeners_raise(self):
        with pytest.raises(RuntimeError, match="beta > 1 violated"):
            _check_unique_listeners(np.array([3, 1, 3], dtype=np.intp))

    def test_unique_listeners_pass(self):
        _check_unique_listeners(np.array([2, 0, 5], dtype=np.intp))
        _check_unique_listeners(np.empty(0, dtype=np.intp))
