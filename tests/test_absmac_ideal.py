"""Tests for the ideal absMAC layer (repro.absmac.ideal)."""

import networkx as nx
import pytest

from repro.absmac.ideal import IdealMacConfig, IdealMacLayer, IdealMacNetwork
from repro.absmac.layer import MacClient
from repro.core.events import MessageRegistry
from repro.geometry.deployment import line_deployment
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


class RecordingClient(MacClient):
    def __init__(self):
        self.rcvs = []
        self.acks = []

    def on_rcv(self, slot, message):
        self.rcvs.append((slot, message))

    def on_ack(self, slot, message):
        self.acks.append((slot, message))


def make_ideal(graph, config=None, n=None, seed=0):
    n = n or graph.number_of_nodes()
    net = IdealMacNetwork(graph, config or IdealMacConfig(), seed=seed)
    reg = MessageRegistry()
    clients = [RecordingClient() for _ in range(n)]
    macs = [IdealMacLayer(i, reg, net, clients[i]) for i in range(n)]
    pts = line_deployment(n, spacing=4.0)
    rt = Runtime(Channel(pts, SINRParameters()), macs, RuntimeConfig(seed=seed))
    return rt, macs, clients


class TestIdealMacConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IdealMacConfig(ack_latency=1, rcv_latency=2)
        with pytest.raises(ValueError):
            IdealMacConfig(rcv_latency=0)
        with pytest.raises(ValueError):
            IdealMacConfig(delivery_probability=0.0)


class TestIdealMacLayer:
    def test_delivers_to_exactly_graph_neighbors(self):
        g = nx.path_graph(4)  # 0-1-2-3
        rt, macs, clients = make_ideal(g)
        macs[1].bcast(payload="p")
        rt.run(10)
        assert len(clients[0].rcvs) == 1
        assert len(clients[2].rcvs) == 1
        assert len(clients[3].rcvs) == 0

    def test_latencies_respected(self):
        g = nx.path_graph(2)
        cfg = IdealMacConfig(ack_latency=7, rcv_latency=3)
        rt, macs, clients = make_ideal(g, cfg)
        macs[0].bcast()
        rt.run(12)
        rcv_slot = clients[1].rcvs[0][0]
        ack_slot = clients[0].acks[0][0]
        assert ack_slot - rcv_slot == 4  # 7 - 3

    def test_rcv_precedes_ack(self):
        """Nice broadcasts (Definition 12.2): every neighbor receives
        before the ack."""
        g = nx.star_graph(5)
        rt, macs, clients = make_ideal(g)
        macs[0].bcast()
        rt.run(10)
        ack_slot = clients[0].acks[0][0]
        for i in range(1, 6):
            assert clients[i].rcvs[0][0] <= ack_slot

    def test_reception_wakes_sleeping_node(self):
        g = nx.path_graph(3)
        rt, macs, clients = make_ideal(g)
        macs[0].bcast()
        assert not macs[1].awake
        rt.run(5)
        assert macs[1].awake

    def test_lossy_delivery(self):
        g = nx.star_graph(30)
        cfg = IdealMacConfig(delivery_probability=0.5)
        rt, macs, clients = make_ideal(g, cfg, seed=3)
        macs[0].bcast()
        rt.run(10)
        delivered = sum(1 for c in clients[1:] if c.rcvs)
        assert 5 < delivered < 25  # ~15 expected

    def test_sequential_broadcasts(self):
        g = nx.path_graph(2)
        rt, macs, clients = make_ideal(g)
        macs[0].bcast(payload="a")
        rt.run(10)
        macs[0].bcast(payload="b")
        rt.run(10)
        payloads = [m.payload for _, m in clients[1].rcvs]
        assert payloads == ["a", "b"]
