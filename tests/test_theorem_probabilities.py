"""Statistical validation of the probabilistic theorem claims.

Theorem 9.1 and Theorem 5.1 are probability statements, not just
latency shapes; these tests run enough Bernoulli trials to check the
empirical success rates against the configured ε (with slack for the
finite sample).  Also covers Claim B.19's structure: Algorithm B.1's
fallback count scales with the actual contention.
"""

import numpy as np
import pytest

from repro.analysis.harness import build_approg_stack
from repro.core.ack_protocol import AckConfig, AckEngine
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.spec import measure_epoch_progress
from repro.geometry.deployment import uniform_disk
from repro.simulation.trace import EventTrace
from repro.sinr.params import SINRParameters


class TestEpochProgressMeasurement:
    def trace_with(self, events):
        trace = EventTrace()
        for slot, kind, node, data in events:
            trace.record(slot, kind, node, data)
        return trace

    def test_counts_trials_and_successes(self):
        import networkx as nx

        from repro.core.events import BcastMessage

        g = nx.path_graph(2)
        trace = self.trace_with(
            [
                (0, "bcast", 0, 1),
                # epoch 0 (slots 0..9): node 1 receives -> success.
                (4, "receive", 1, (0, BcastMessage(1, 0))),
                # epoch 1 (slots 10..19): silence -> failure.
                (25, "receive", 1, (0, BcastMessage(1, 0))),
                # epoch 2: success again.  Keep the broadcast open by
                # never acking.
                (29, "transmit", 0, None),
            ]
        )
        report = measure_epoch_progress(trace, g, g, epoch_slots=10)
        assert report.trials == 3
        assert report.successes == 2
        assert report.per_epoch[1] == (0, 1)

    def test_epoch_slots_validation(self):
        import networkx as nx

        with pytest.raises(ValueError):
            measure_epoch_progress(
                EventTrace(), nx.Graph(), nx.Graph(), epoch_slots=0
            )

    def test_partial_coverage_not_a_trial(self):
        """A broadcast covering only half an epoch is not a Thm 9.1
        trial (the theorem conditions on an ongoing broadcast)."""
        import networkx as nx

        g = nx.path_graph(2)
        trace = self.trace_with(
            [
                (5, "bcast", 0, 1),  # starts mid-epoch-0
                (9, "transmit", 0, None),
            ]
        )
        report = measure_epoch_progress(trace, g, g, epoch_slots=10)
        assert report.per_epoch.get(0) == (0, 0)


class TestTheorem91Probability:
    def test_per_epoch_success_rate_meets_epsilon(self):
        """Run Algorithm 9.1 for several epochs on a moderate network;
        the per-(node, epoch) success rate must clear 1 - ε with slack
        for sampling noise."""
        eps = 0.2
        params = SINRParameters()
        points = uniform_disk(16, radius=9.0, seed=99)
        stack = build_approg_stack(
            points,
            params,
            approg_config=ApproxProgressConfig(
                lambda_bound=8.0,
                eps_approg=eps,
                alpha=params.alpha,
                t_scale=0.2,
            ),
            seed=17,
        )
        schedule = stack.macs[0].schedule
        for mac in stack.macs:
            mac.bcast(payload=f"m{mac.node_id}")
        epochs = 5
        stack.runtime.run(epochs * schedule.epoch_slots)
        report = measure_epoch_progress(
            stack.runtime.trace,
            stack.graph,
            stack.approx_graph,
            epoch_slots=schedule.epoch_slots,
        )
        assert report.trials >= epochs * 10  # dense: most nodes trial
        # 1 - eps with generous sampling slack.
        assert report.success_fraction >= 1.0 - eps - 0.1, (
            f"per-epoch success {report.success_fraction:.2f} "
            f"below contract: {report.per_epoch}"
        )


class TestClaimB19FallbackScaling:
    """Claim B.19: the number of fallbacks k is O(N_x) — driven by the
    actual overheard traffic, since every fallback requires overhearing
    ~8·log(Ñ/ε) messages."""

    def run_engine(self, receptions_per_slot: int, seed: int = 0) -> int:
        config = AckConfig(contention_bound=64.0, eps_ack=0.1)
        engine = AckEngine(config, np.random.default_rng(seed))
        while not engine.halted:
            engine.step()
            for _ in range(receptions_per_slot):
                engine.notify_reception()
        return engine.fallbacks

    def test_quiet_channel_no_fallbacks(self):
        assert self.run_engine(0) == 0

    def test_fallbacks_grow_with_traffic(self):
        low = self.run_engine(1)
        high = self.run_engine(4)
        assert high >= low
        assert high >= 1
