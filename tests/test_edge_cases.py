"""Edge-case tests across modules: empty inputs, boundary values,
and degenerate networks that the main suites do not reach."""

import numpy as np
import pytest

from repro.core.events import MessageRegistry
from repro.core.spec import (
    AckRecord,
    AckReport,
    ProgressRecord,
    ProgressReport,
    measure_acknowledgments,
)
from repro.geometry.points import PointSet
from repro.simulation.trace import EventTrace
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters
from repro.sinr.physics import successful_receptions


class TestSpecReportHelpers:
    def make_record(self, latency, complete=True, neighbors=3):
        covered = neighbors if complete else neighbors - 1
        return AckRecord(
            mid=1,
            origin=0,
            bcast_slot=0,
            ack_slot=latency,
            neighbor_count=neighbors,
            covered_by_ack=covered,
        )

    def test_ack_report_mixed_latencies(self):
        report = AckReport(
            records=[self.make_record(10), self.make_record(30)]
        )
        assert report.mean_latency() == 20
        assert report.max_latency() == 30
        assert report.success_fraction(15) == 0.5

    def test_incomplete_ack_fails_success(self):
        report = AckReport(records=[self.make_record(10, complete=False)])
        assert report.success_fraction(100) == 0.0
        assert report.completeness_fraction() == 0.0

    def test_never_acked_record(self):
        record = AckRecord(
            mid=1,
            origin=0,
            bcast_slot=5,
            ack_slot=None,
            neighbor_count=2,
            covered_by_ack=0,
        )
        assert record.latency is None
        assert not record.complete
        report = AckReport(records=[record])
        assert report.latencies() == []
        assert report.completeness_fraction() == 1.0  # no acked records

    def test_progress_report_empty(self):
        report = ProgressReport()
        assert report.success_fraction(10) == 1.0
        assert report.max_latency() is None
        assert report.mean_latency() is None

    def test_progress_report_unsatisfied_counts_against(self):
        report = ProgressReport(
            records=[
                ProgressRecord(0, 0, 5),
                ProgressRecord(1, 0, None),
            ]
        )
        assert report.success_fraction(10) == 0.5

    def test_isolated_origin_ack_trivially_complete(self):
        """A broadcaster with zero graph neighbors is complete as soon
        as it acks (vacuous coverage)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        trace = EventTrace()
        trace.record(0, "bcast", 0, 1)
        trace.record(4, "ack", 0, 1)
        report = measure_acknowledgments(trace, graph)
        assert report.records[0].complete


class TestDegenerateNetworks:
    def test_single_node_channel(self):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0]]))
        channel = Channel(pts, params)
        out = channel.resolve_slot({0: "solo"})
        assert out.receptions == {}  # nobody to hear it

    def test_all_nodes_transmitting_nobody_receives(self):
        params = SINRParameters()
        pts = PointSet(np.array([[0.0, 0.0], [3.0, 0.0], [6.0, 0.0]]))
        dists = Channel(pts, params).distances
        result = successful_receptions(
            params, dists, np.array([0, 1, 2])
        )
        assert result == {}

    def test_coincident_listener_distance_clamped(self):
        """Distances are clamped away from zero so degenerate layouts
        do not produce NaNs (the near-field guard)."""
        params = SINRParameters()
        dists = np.array([[0.0, 1e-15], [1e-15, 0.0]])
        result = successful_receptions(params, dists, np.array([0]))
        assert result == {1: 0}  # astronomically strong, still decoded


class TestMessageRegistryLimits:
    def test_sequence_space_exhaustion(self):
        reg = MessageRegistry()
        reg._next_seq[7] = MessageRegistry._SEQ_SPACE  # simulate wrap
        with pytest.raises(OverflowError):
            reg.mint(7)

    def test_distinct_origins_do_not_collide_at_high_seq(self):
        reg = MessageRegistry()
        reg._next_seq[1] = MessageRegistry._SEQ_SPACE - 1
        a = reg.mint(1)
        b = reg.mint(2)
        assert a.mid != b.mid


class TestEpochScheduleBoundaries:
    def test_last_slot_of_epoch_is_bcast(self):
        from repro.core.approx_progress import (
            ApproxProgressConfig,
            EpochSchedule,
        )

        schedule = EpochSchedule(
            ApproxProgressConfig(lambda_bound=8.0, eps_approg=0.1)
        )
        epoch, phase, block, off = schedule.locate(schedule.epoch_slots - 1)
        assert epoch == 0
        assert phase == schedule.phi - 1
        assert block == EpochSchedule.BCAST
        assert off == schedule.bcast_slots - 1

    def test_first_slot_of_second_epoch(self):
        from repro.core.approx_progress import (
            ApproxProgressConfig,
            EpochSchedule,
        )

        schedule = EpochSchedule(
            ApproxProgressConfig(lambda_bound=8.0, eps_approg=0.1)
        )
        epoch, phase, block, off = schedule.locate(schedule.epoch_slots)
        assert (epoch, phase, block, off) == (1, 0, EpochSchedule.EST1, 0)
