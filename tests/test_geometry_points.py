"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import (
    PointSet,
    bounding_box,
    distance,
    enforce_min_distance,
    min_pairwise_distance,
    pairwise_distances,
)


class TestPairwiseDistances:
    def test_two_points(self):
        dists = pairwise_distances(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert dists.shape == (2, 2)
        assert dists[0, 1] == pytest.approx(5.0)
        assert dists[1, 0] == pytest.approx(5.0)

    def test_diagonal_is_zero(self):
        coords = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        dists = pairwise_distances(coords)
        assert np.allclose(np.diag(dists), 0.0)

    def test_symmetry(self):
        coords = np.random.default_rng(0).random((10, 2)) * 100
        dists = pairwise_distances(coords)
        assert np.allclose(dists, dists.T)

    def test_single_point(self):
        dists = pairwise_distances(np.array([[1.0, 1.0]]))
        assert dists.shape == (1, 1)
        assert dists[0, 0] == 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            pairwise_distances(np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            pairwise_distances(np.array([[0.0, np.nan]]))


class TestDistance:
    def test_pythagorean(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert distance((2.5, -1.0), (2.5, -1.0)) == 0.0

    def test_matches_matrix(self):
        coords = np.array([[1.0, 2.0], [4.0, 6.0]])
        dists = pairwise_distances(coords)
        assert distance(coords[0], coords[1]) == pytest.approx(dists[0, 1])


class TestMinPairwiseDistance:
    def test_known_min(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        assert min_pairwise_distance(coords) == pytest.approx(1.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            min_pairwise_distance(np.array([[0.0, 0.0]]))


class TestEnforceMinDistance:
    def test_rescales_to_target(self):
        coords = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 0.0]])
        scaled = enforce_min_distance(coords, target=1.0)
        assert min_pairwise_distance(scaled) == pytest.approx(1.0)

    def test_preserves_shape_ratios(self):
        coords = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 4.0]])
        scaled = enforce_min_distance(coords, target=1.0)
        orig = pairwise_distances(coords)
        new = pairwise_distances(scaled)
        ratio = new[0, 1] / orig[0, 1]
        assert new[0, 2] / orig[0, 2] == pytest.approx(ratio)

    def test_coincident_points_rejected(self):
        coords = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="coincident"):
            enforce_min_distance(coords)


class TestBoundingBox:
    def test_known_box(self):
        coords = np.array([[1.0, -2.0], [3.0, 5.0], [-1.0, 0.0]])
        assert bounding_box(coords) == (-1.0, -2.0, 3.0, 5.0)


class TestPointSet:
    def test_len_and_indexing(self):
        ps = PointSet(np.array([[0.0, 0.0], [1.0, 2.0]]))
        assert len(ps) == 2
        assert ps.n == 2
        assert ps[1] == (1.0, 2.0)

    def test_immutability(self):
        ps = PointSet(np.array([[0.0, 0.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            ps.coords[0, 0] = 99.0

    def test_translated(self):
        ps = PointSet(np.array([[0.0, 0.0], [1.0, 0.0]]))
        moved = ps.translated(10.0, -5.0)
        assert moved[0] == (10.0, -5.0)
        assert moved[1] == (11.0, -5.0)
        # Distances are translation-invariant.
        assert moved.min_distance() == pytest.approx(ps.min_distance())

    def test_union_concatenates(self):
        a = PointSet(np.array([[0.0, 0.0]]), name="a")
        b = PointSet(np.array([[5.0, 5.0]]), name="b")
        merged = a.union(b)
        assert len(merged) == 2
        assert merged.name == "a+b"

    def test_normalized(self):
        ps = PointSet(np.array([[0.0, 0.0], [0.25, 0.0]]))
        assert ps.normalized().min_distance() == pytest.approx(1.0)

    def test_single_coordinate_pair_promoted(self):
        ps = PointSet(np.array([3.0, 4.0]))
        assert len(ps) == 1
        assert ps[0] == (3.0, 4.0)
