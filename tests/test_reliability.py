"""Tests for the reliability graphs H^mu_p[S] (repro.core.reliability)."""

import numpy as np
import pytest

from repro.core.reliability import (
    edge_reliability,
    estimate_reliability_graph,
    reliability_graph,
)
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet, pairwise_distances
from repro.sinr.params import SINRParameters


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


def isolated_pair(params):
    """Two nodes close together, nothing else on the channel."""
    pts = PointSet(np.array([[0.0, 0.0], [2.0, 0.0]]))
    return pts, pairwise_distances(pts.coords)


class TestEdgeReliability:
    def test_isolated_pair_reliability_is_p_times_1_minus_p(self, params):
        """With only two nodes, success = (v sends) AND (u listens)."""
        pts, dists = isolated_pair(params)
        p = 0.3
        fwd, bwd = edge_reliability(
            params,
            dists,
            [0, 1],
            p,
            0,
            1,
            samples=4000,
            rng=np.random.default_rng(0),
        )
        expected = p * (1 - p)
        assert fwd == pytest.approx(expected, abs=0.03)
        assert bwd == pytest.approx(expected, abs=0.03)

    def test_out_of_range_pair_is_unreliable(self, params):
        far = 3 * params.transmission_range
        pts = PointSet(np.array([[0.0, 0.0], [far, 0.0]]))
        dists = pairwise_distances(pts.coords)
        fwd, bwd = edge_reliability(
            params, dists, [0, 1], 0.3, 0, 1, samples=500
        )
        assert fwd == 0.0
        assert bwd == 0.0

    def test_requires_membership(self, params):
        pts, dists = isolated_pair(params)
        with pytest.raises(ValueError, match="belong"):
            edge_reliability(params, dists, [0], 0.3, 0, 1)

    def test_interference_lowers_reliability(self, params):
        # A third node close to the listener halves the quiet chances.
        quiet = PointSet(np.array([[0.0, 0.0], [2.0, 0.0]]))
        noisy = PointSet(
            np.array([[0.0, 0.0], [2.0, 0.0], [3.5, 0.0]])
        )
        rng = np.random.default_rng(1)
        fwd_q, _ = edge_reliability(
            params,
            pairwise_distances(quiet.coords),
            [0, 1],
            0.4,
            0,
            1,
            samples=3000,
            rng=rng,
        )
        fwd_n, _ = edge_reliability(
            params,
            pairwise_distances(noisy.coords),
            [0, 1, 2],
            0.4,
            0,
            1,
            samples=3000,
            rng=np.random.default_rng(1),
        )
        assert fwd_n < fwd_q


class TestReliabilityGraph:
    def test_close_pair_connected(self, params):
        pts, dists = isolated_pair(params)
        g = reliability_graph(
            params, dists, [0, 1], p=0.4, mu=0.1, samples=2000
        )
        assert g.has_edge(0, 1)

    def test_threshold_excludes_weak_links(self, params):
        pts, dists = isolated_pair(params)
        # mu above p(1-p)=0.24: even the perfect link fails the bar.
        g = reliability_graph(
            params, dists, [0, 1], p=0.4, mu=0.35, samples=2000
        )
        assert not g.has_edge(0, 1)

    def test_parameter_validation(self, params):
        pts, dists = isolated_pair(params)
        with pytest.raises(ValueError, match="p must"):
            reliability_graph(params, dists, [0, 1], p=0.7, mu=0.1)
        with pytest.raises(ValueError, match="mu must"):
            reliability_graph(params, dists, [0, 1], p=0.4, mu=0.5)

    def test_constant_degree_property(self, params):
        """Paper footnote 9: H^mu_p has O(1/mu) potential neighbors."""
        pts = uniform_disk(25, radius=10.0, seed=21)
        dists = pairwise_distances(pts.coords)
        g = reliability_graph(
            params,
            dists,
            list(range(25)),
            p=0.25,
            mu=0.05,
            samples=1500,
            rng=np.random.default_rng(2),
        )
        max_degree = max((d for _, d in g.degree), default=0)
        assert max_degree <= 1 / 0.05  # loose but principled cap

    def test_nodes_always_present(self, params):
        pts, dists = isolated_pair(params)
        g = reliability_graph(params, dists, [0, 1], p=0.4, mu=0.39)
        assert set(g.nodes) == {0, 1}


class TestEstimatedGraph:
    def test_agrees_with_ground_truth_on_isolated_pair(self, params):
        pts, dists = isolated_pair(params)
        truth = reliability_graph(
            params, dists, [0, 1], p=0.4, mu=0.1, samples=3000
        )
        estimated = estimate_reliability_graph(
            params,
            dists,
            [0, 1],
            p=0.4,
            mu=0.1,
            gamma=0.5,
            repetitions=400,
            rng=np.random.default_rng(3),
        )
        assert set(truth.edges) == set(estimated.edges)

    def test_estimation_mostly_matches_truth_on_deployment(self, params):
        """The (1-γ)-approximation property, statistically."""
        pts = uniform_disk(15, radius=8.0, seed=22)
        dists = pairwise_distances(pts.coords)
        members = list(range(15))
        truth = reliability_graph(
            params,
            dists,
            members,
            p=0.25,
            mu=0.05,
            samples=4000,
            rng=np.random.default_rng(4),
        )
        est = estimate_reliability_graph(
            params,
            dists,
            members,
            p=0.25,
            mu=0.05,
            gamma=0.5,
            repetitions=600,
            rng=np.random.default_rng(5),
        )
        # Safely-reliable edges must be found: re-check truth edges at a
        # stricter threshold to avoid borderline flakiness.
        strict = reliability_graph(
            params,
            dists,
            members,
            p=0.25,
            mu=0.08,
            samples=4000,
            rng=np.random.default_rng(4),
        )
        missing = set(strict.edges) - set(est.edges)
        assert not missing, f"estimation missed solid edges: {missing}"

    def test_validation(self, params):
        pts, dists = isolated_pair(params)
        with pytest.raises(ValueError):
            estimate_reliability_graph(
                params, dists, [0, 1], 0.4, 0.1, gamma=0.5, repetitions=0
            )
        with pytest.raises(ValueError):
            estimate_reliability_graph(
                params, dists, [0, 1], 0.4, 0.1, gamma=1.5, repetitions=10
            )
