"""Unit tests for the absMAC spec checker (repro.core.spec).

The checker is exercised on hand-written traces with known answers so
that measurement bugs cannot hide behind protocol behaviour.
"""

import networkx as nx
import pytest

from repro.core.events import BcastMessage
from repro.core.spec import (
    AbsMacContract,
    broadcast_intervals,
    check_contract,
    measure_acknowledgments,
    measure_approximate_progress,
    measure_progress,
)
from repro.simulation.trace import EventTrace


def path3():
    """0 - 1 - 2."""
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2)])
    return g


def trace_with(events):
    trace = EventTrace()
    for slot, kind, node, data in events:
        trace.record(slot, kind, node, data)
    return trace


class TestBroadcastIntervals:
    def test_bcast_ack_pair(self):
        trace = trace_with([(0, "bcast", 0, 11), (9, "ack", 0, 11)])
        assert broadcast_intervals(trace) == {11: (0, 0, 9)}

    def test_abort_closes_interval(self):
        trace = trace_with([(0, "bcast", 0, 11), (4, "abort", 0, 11)])
        assert broadcast_intervals(trace)[11] == (0, 0, 4)

    def test_unclosed_interval_runs_to_horizon(self):
        trace = trace_with([(2, "bcast", 1, 5), (10, "transmit", 1, None)])
        assert broadcast_intervals(trace)[5] == (1, 2, 11)


class TestMeasureAcknowledgments:
    def test_complete_ack(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 1, 7),
                (3, "rcv", 0, 7),
                (4, "rcv", 2, 7),
                (8, "ack", 1, 7),
            ]
        )
        report = measure_acknowledgments(trace, g)
        assert len(report.records) == 1
        rec = report.records[0]
        assert rec.latency == 8
        assert rec.complete
        assert rec.covered_by_ack == 2

    def test_incomplete_ack_detected(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 1, 7),
                (3, "rcv", 0, 7),
                # neighbor 2 never receives
                (8, "ack", 1, 7),
            ]
        )
        rec = measure_acknowledgments(trace, g).records[0]
        assert not rec.complete
        assert rec.covered_by_ack == 1

    def test_rcv_after_ack_does_not_count(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 1, 7),
                (8, "ack", 1, 7),
                (9, "rcv", 0, 7),
                (9, "rcv", 2, 7),
            ]
        )
        rec = measure_acknowledgments(trace, g).records[0]
        assert not rec.complete

    def test_missing_ack(self):
        trace = trace_with([(0, "bcast", 1, 7)])
        rec = measure_acknowledgments(trace, path3()).records[0]
        assert rec.ack_slot is None
        assert rec.latency is None

    def test_success_fraction(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 1, 7),
                (1, "rcv", 0, 7),
                (1, "rcv", 2, 7),
                (5, "ack", 1, 7),
                (0, "bcast", 0, 8),
                (30, "rcv", 1, 8),
                (40, "ack", 0, 8),
            ]
        )
        report = measure_acknowledgments(trace, g)
        assert report.success_fraction(fack=10) == pytest.approx(0.5)
        assert report.success_fraction(fack=100) == pytest.approx(1.0)

    def test_empty_trace(self):
        report = measure_acknowledgments(EventTrace(), path3())
        assert report.records == []
        assert report.success_fraction(10) == 1.0
        assert report.max_latency() is None
        assert report.mean_latency() is None


def receive(slot, node, sender, origin, mid=99):
    """A physical reception of a bcast-message at `node`."""
    return (slot, "receive", node, (sender, BcastMessage(mid, origin)))


class TestMeasureProgress:
    def test_simple_progress(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 0, 1),
                receive(4, 1, 0, origin=0, mid=1),
            ]
        )
        report = measure_progress(trace, g)
        by_node = {r.node: r for r in report.records}
        assert by_node[1].latency == 4

    def test_unsatisfied_episode(self):
        g = path3()
        trace = trace_with([(0, "bcast", 0, 1)])
        report = measure_progress(trace, g)
        by_node = {r.node: r for r in report.records}
        assert by_node[1].latency is None

    def test_non_neighbor_origin_does_not_satisfy(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 0, 1),
                (0, "bcast", 2, 2),
                # node 1 triggers (neighbors 0 and 2 broadcast).  Node 2
                # also triggers (neighbor 1... no, neighbor of 2 is 1,
                # which does not broadcast) - only via its own bcast's
                # effect on node 1.  Node 1 hears a message originating
                # at 0 relayed by 2: origin 0 IS 1's neighbor, so it
                # satisfies; but a message originating at a non-neighbor
                # must not.  Check that with a fresh receiver: node 0
                # hears a message originating at 2 (not its neighbor).
                receive(4, 0, 1, origin=2, mid=2),
            ]
        )
        report = measure_progress(trace, g)
        by_node = {r.node: r for r in report.records}
        # Node 0's only broadcasting neighbor is... none (1 is silent),
        # so node 0 has no episode; node 1 triggered but never received.
        assert 0 not in by_node
        assert by_node[1].latency is None

    def test_nodes_without_broadcasting_neighbors_skipped(self):
        g = path3()
        trace = trace_with([(0, "bcast", 0, 1)])
        report = measure_progress(trace, g)
        nodes = {r.node for r in report.records}
        assert nodes == {1}  # only node 1 neighbors the broadcaster


class TestMeasureApproximateProgress:
    def make_graphs(self):
        """G has edges (0,1),(1,2); G-tilde only (0,1)."""
        g = path3()
        gt = nx.Graph()
        gt.add_nodes_from([0, 1, 2])
        gt.add_edge(0, 1)
        return g, gt

    def test_trigger_requires_gtilde_neighbor(self):
        g, gt = self.make_graphs()
        trace = trace_with([(0, "bcast", 2, 1)])  # node 2 broadcasts
        report = measure_approximate_progress(trace, g, gt)
        # 2's only G-neighbor is 1, but (1,2) is not a G-tilde edge:
        # no episode triggers.
        assert report.records == []

    def test_reception_from_any_g_neighbor_satisfies(self):
        g, gt = self.make_graphs()
        trace = trace_with(
            [
                (0, "bcast", 0, 1),
                # node 1 hears a message originating at its G-neighbor 2
                # (not the G-tilde trigger node 0) - still satisfies
                # Definition 7.1.
                receive(6, 1, 2, origin=2, mid=3),
            ]
        )
        report = measure_approximate_progress(trace, g, gt)
        by_node = {r.node: r for r in report.records}
        assert by_node[1].latency == 6

    def test_latency_measured_from_trigger(self):
        g, gt = self.make_graphs()
        trace = trace_with(
            [
                (10, "bcast", 0, 1),
                receive(17, 1, 0, origin=0, mid=1),
            ]
        )
        report = measure_approximate_progress(trace, g, gt)
        by_node = {r.node: r for r in report.records}
        assert by_node[1].start_slot == 10
        assert by_node[1].latency == 7


class TestContract:
    def test_validation(self):
        with pytest.raises(ValueError):
            AbsMacContract(fack=0, eps_ack=0.1)
        with pytest.raises(ValueError):
            AbsMacContract(fack=10, eps_ack=1.5)
        with pytest.raises(ValueError):
            AbsMacContract(fack=10, eps_ack=0.1, fapprog=5.0)

    def test_check_contract_passing(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 1, 7),
                (1, "rcv", 0, 7),
                (1, "rcv", 2, 7),
                (5, "ack", 1, 7),
            ]
        )
        contract = AbsMacContract(fack=10, eps_ack=0.2)
        result = check_contract(trace, g, None, contract)
        assert result["ack_ok"]
        assert result["ack_success_fraction"] == 1.0

    def test_check_contract_with_approg(self):
        g = path3()
        trace = trace_with(
            [
                (0, "bcast", 0, 1),
                receive(4, 1, 0, origin=0, mid=1),
            ]
        )
        contract = AbsMacContract(
            fack=10, eps_ack=0.2, fapprog=10.0, eps_approg=0.2
        )
        result = check_contract(trace, g, g, contract)
        assert "approg_ok" in result
        assert result["approg_success_fraction"] == 1.0
