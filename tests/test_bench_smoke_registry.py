"""The bench-smoke registry and bench-compare gate are enforced by
``make test``, not only by running the scripts.

``scripts/bench_smoke.py`` promises an *exhaustive* registry: every
``benchmarks/bench_*.py`` has a smoke entry and every entry has a
script.  Running the smoke gate catches drift, but only when someone
runs it — this suite pins the rule into the tier-1 suite so a new
benchmark without a smoke entry fails ``make test`` immediately.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_scripts_on_disk() -> list[str]:
    return sorted(p.stem for p in (REPO / "benchmarks").glob("bench_*.py"))


def test_smoke_registry_matches_bench_scripts_on_disk():
    smoke = _load_script("bench_smoke")
    scripts = bench_scripts_on_disk()
    assert scripts, "benchmark directory must not be empty"
    missing = [name for name in scripts if name not in smoke.SMOKE]
    stale = [name for name in smoke.SMOKE if name not in scripts]
    assert not missing, (
        f"benchmarks without a smoke entry: {missing} — add them to "
        "scripts/bench_smoke.py's SMOKE registry"
    )
    assert not stale, (
        f"smoke entries without a script: {stale} — drop them from "
        "scripts/bench_smoke.py's SMOKE registry"
    )
    assert all(callable(entry) for entry in smoke.SMOKE.values())


def test_committed_bench_records_exist_for_compare_gate():
    """The CI bench-regression gate needs its committed baselines."""
    for name in (
        "BENCH_vectorized.json",
        "BENCH_protocols.json",
        "BENCH_fading.json",
        "BENCH_mobility.json",
        "BENCH_sparse.json",
        "BENCH_native.json",
    ):
        report = json.loads((REPO / name).read_text(encoding="utf-8"))
        assert report["rows"], name
        for row in report["rows"]:
            assert "speedup" in row, name


def test_fading_record_is_in_the_compare_defaults():
    """BENCH_fading.json must ride the regression gate by default, with
    its speedup row in the counters-only shape the gate keys on."""
    compare_source = (REPO / "scripts" / "bench_compare.py").read_text(
        encoding="utf-8"
    )
    assert '"BENCH_fading.json",' in compare_source
    compare = _load_script("bench_compare")
    report = json.loads((REPO / "BENCH_fading.json").read_text("utf-8"))
    rows = compare.counters_only_rows(report)
    assert "fading-decay" in rows
    assert rows["fading-decay"]["bit_identical"]


def test_mobility_record_is_in_the_compare_defaults():
    """BENCH_mobility.json must ride the regression gate by default,
    with its speedup row in the counters-only shape the gate keys on."""
    compare_source = (REPO / "scripts" / "bench_compare.py").read_text(
        encoding="utf-8"
    )
    assert '"BENCH_mobility.json",' in compare_source
    compare = _load_script("bench_compare")
    report = json.loads((REPO / "BENCH_mobility.json").read_text("utf-8"))
    rows = compare.counters_only_rows(report)
    assert "mobility-decay" in rows
    assert rows["mobility-decay"]["bit_identical"]


def test_sparse_record_is_in_the_compare_defaults():
    """BENCH_sparse.json must ride the regression gate by default; its
    exact-mode rows carry the bit-identity contract and every row is in
    the counters-only shape the gate keys on."""
    compare_source = (REPO / "scripts" / "bench_compare.py").read_text(
        encoding="utf-8"
    )
    assert '"BENCH_sparse.json",' in compare_source
    compare = _load_script("bench_compare")
    report = json.loads((REPO / "BENCH_sparse.json").read_text("utf-8"))
    rows = compare.counters_only_rows(report)
    exact = [r for r in rows.values() if r["mode"] == "exact"]
    assert exact and all(r["bit_identical"] for r in exact)
    assert all(compare.row_speedup(r) is not None for r in rows.values())


def test_native_record_is_in_the_compare_defaults():
    """BENCH_native.json must ride the regression gate by default; its
    rows carry the bit-identity contract plus the ``backend`` field the
    gate's mismatch rule keys on."""
    compare_source = (REPO / "scripts" / "bench_compare.py").read_text(
        encoding="utf-8"
    )
    assert '"BENCH_native.json",' in compare_source
    compare = _load_script("bench_compare")
    report = json.loads((REPO / "BENCH_native.json").read_text("utf-8"))
    rows = compare.counters_only_rows(report)
    assert "native-decay" in rows and "native-ack" in rows
    for row in rows.values():
        assert row["bit_identical"]
        # The threaded row tags its backend native-c{cores} so the gate
        # warn-skips cross-machine core-count comparisons.
        assert row["backend"] in ("native", "numpy") or row[
            "backend"
        ].startswith("native-c")
        assert compare.row_speedup(row) is not None


class TestBenchCompare:
    def test_row_key_prefers_workload(self):
        compare = _load_script("bench_compare")
        assert compare.row_key({"workload": "smb"}) == "smb"
        assert compare.row_key({"record_physical": False}) == "counters-only"
        assert compare.row_key({"record_physical": True}) == "physical"

    def test_counters_only_rows_filters_physical(self):
        compare = _load_script("bench_compare")
        report = {
            "rows": [
                {"record_physical": False, "speedup": 3.0},
                {"record_physical": True, "speedup": 2.0},
                {"workload": "smb", "speedup": 2.5},
            ]
        }
        rows = compare.counters_only_rows(report)
        assert set(rows) == {"counters-only", "smb"}

    def test_compare_flags_regression(self, tmp_path, monkeypatch):
        compare = _load_script("bench_compare")
        candidate = {"rows": [{"workload": "smb", "speedup": 1.0}]}
        baseline = {"rows": [{"workload": "smb", "speedup": 2.0}]}
        monkeypatch.setattr(compare, "REPO", tmp_path)
        (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: baseline
        )
        _lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert failures and "regressed" in failures[0]

    def test_compare_skips_missing_baseline(self, tmp_path, monkeypatch):
        compare = _load_script("bench_compare")
        candidate = {"rows": [{"workload": "smb", "speedup": 1.0}]}
        monkeypatch.setattr(compare, "REPO", tmp_path)
        (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: None
        )
        lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert not failures
        assert any("skipped" in line for line in lines)

    def test_compare_skips_missing_fresh_record_with_warning(
        self, tmp_path, monkeypatch
    ):
        """A committed baseline without a freshly recorded file must
        warn-and-skip, not fail — otherwise introducing a new
        BENCH_*.json breaks the gate for every mid-PR state between
        committing the baseline and re-running bench-record."""
        compare = _load_script("bench_compare")
        baseline = {"rows": [{"workload": "smb", "speedup": 2.0}]}
        monkeypatch.setattr(compare, "REPO", tmp_path)  # no candidate file
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: baseline
        )
        lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert not failures
        assert any(
            "WARNING" in line and "skipped" in line for line in lines
        )

    def test_main_fails_when_nothing_was_recorded(
        self, tmp_path, monkeypatch, capsys
    ):
        """Per-file skips must not compound into an empty green gate:
        if no fresh file exists at all, the record step never ran and
        main() must fail loudly."""
        compare = _load_script("bench_compare")
        monkeypatch.setattr(compare, "REPO", tmp_path)
        assert compare.main(["BENCH_a.json", "BENCH_b.json"]) == 1
        out = capsys.readouterr().out
        assert "no freshly recorded benchmark file" in out

    def test_row_speedup_rejects_unusable_values(self):
        compare = _load_script("bench_compare")
        assert compare.row_speedup({"speedup": 2.5}) == 2.5
        assert compare.row_speedup({"speedup": "3.1"}) == 3.1
        assert compare.row_speedup({}) is None
        assert compare.row_speedup({"speedup": None}) is None
        assert compare.row_speedup({"speedup": "fast"}) is None
        assert compare.row_speedup({"speedup": 0.0}) is None
        assert compare.row_speedup({"speedup": -1.0}) is None
        assert compare.row_speedup({"speedup": float("nan")}) is None
        assert compare.row_speedup({"speedup": float("inf")}) is None

    def test_compare_skips_baseline_row_without_speedup(
        self, tmp_path, monkeypatch
    ):
        """A baseline row that never recorded a speedup (older schema
        generation) cannot gate anything — it must warn-and-skip, not
        crash with a KeyError as it used to."""
        compare = _load_script("bench_compare")
        candidate = {"rows": [{"workload": "smb", "speedup": 2.0}]}
        baseline = {"rows": [{"workload": "smb", "object_seconds": 4.0}]}
        monkeypatch.setattr(compare, "REPO", tmp_path)
        (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: baseline
        )
        lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert not failures
        assert any("no usable speedup" in line for line in lines)

    def test_compare_fails_candidate_row_without_speedup(
        self, tmp_path, monkeypatch
    ):
        """A fresh row that *lost* its speedup is a broken recorder and
        must fail the gate loudly — skipping it would let a perf
        regression hide behind a schema bug."""
        compare = _load_script("bench_compare")
        baseline = {"rows": [{"workload": "smb", "speedup": 2.0}]}
        for bad in ({}, {"speedup": None}, {"speedup": 0.0}):
            candidate = {"rows": [{"workload": "smb", **bad}]}
            monkeypatch.setattr(compare, "REPO", tmp_path)
            (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
            monkeypatch.setattr(
                compare, "committed_json", lambda ref, rel: baseline
            )
            _lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
            assert failures and "lost its speedup" in failures[0], bad

    def test_compare_skips_backend_mismatch(self, tmp_path, monkeypatch):
        """Baseline and fresh rows measured on different backends (a
        native-recorded baseline vs a machine without the compiled
        kernel) compare apples to oranges — the speedup gate must
        warn-skip such pairs instead of hard-failing."""
        compare = _load_script("bench_compare")
        candidate = {
            "rows": [
                {"workload": "native-decay", "backend": "numpy",
                 "speedup": 1.0}
            ]
        }
        baseline = {
            "rows": [
                {"workload": "native-decay", "backend": "native",
                 "speedup": 3.6}
            ]
        }
        monkeypatch.setattr(compare, "REPO", tmp_path)
        (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: baseline
        )
        lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert not failures
        assert any("backend mismatch" in line for line in lines)

    def test_compare_gates_matching_backends(self, tmp_path, monkeypatch):
        """Same backend on both sides: the mismatch rule must NOT fire
        — a genuine regression still fails (and rows without a backend
        field keep gating as before)."""
        compare = _load_script("bench_compare")
        for extra in ({"backend": "native"}, {}):
            candidate = {
                "rows": [{"workload": "native-decay", "speedup": 1.0,
                          **extra}]
            }
            baseline = {
                "rows": [{"workload": "native-decay", "speedup": 3.6,
                          **extra}]
            }
            monkeypatch.setattr(compare, "REPO", tmp_path)
            (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
            monkeypatch.setattr(
                compare, "committed_json", lambda ref, rel: baseline
            )
            _lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
            assert failures and "regressed" in failures[0], extra

    def test_compare_within_tolerance_passes(self, tmp_path, monkeypatch):
        compare = _load_script("bench_compare")
        candidate = {"rows": [{"workload": "smb", "speedup": 1.9}]}
        baseline = {"rows": [{"workload": "smb", "speedup": 2.0}]}
        monkeypatch.setattr(compare, "REPO", tmp_path)
        (tmp_path / "BENCH_x.json").write_text(json.dumps(candidate))
        monkeypatch.setattr(
            compare, "committed_json", lambda ref, rel: baseline
        )
        _lines, failures = compare.compare("BENCH_x.json", "HEAD", 0.2)
        assert not failures
