"""Unit tests for the temporary-label MIS (repro.core.mis)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.mis import (
    COMPETITOR,
    DOMINATED,
    DOMINATOR,
    DistributedMIS,
    greedy_mis,
    is_independent_set,
    is_maximal_independent_set,
    next_state,
)


class TestNextState:
    def test_isolated_competitor_becomes_dominator(self):
        assert next_state(5, COMPETITOR, []) == DOMINATOR

    def test_local_minimum_wins(self):
        views = [(7, COMPETITOR), (9, COMPETITOR)]
        assert next_state(5, COMPETITOR, views) == DOMINATOR

    def test_non_minimum_stays_competitor(self):
        views = [(3, COMPETITOR)]
        assert next_state(5, COMPETITOR, views) == COMPETITOR

    def test_dominator_neighbor_dominates(self):
        views = [(3, DOMINATOR), (9, COMPETITOR)]
        assert next_state(5, COMPETITOR, views) == DOMINATED

    def test_equal_labels_block_each_other(self):
        # Collision: neither strictly smaller => stay competitor.
        views = [(5, COMPETITOR)]
        assert next_state(5, COMPETITOR, views) == COMPETITOR

    def test_settled_states_never_change(self):
        views = [(1, COMPETITOR)]
        assert next_state(5, DOMINATOR, views) == DOMINATOR
        assert next_state(5, DOMINATED, views) == DOMINATED

    def test_dominated_neighbors_are_ignored_for_minimum(self):
        views = [(1, DOMINATED), (9, COMPETITOR)]
        assert next_state(5, COMPETITOR, views) == DOMINATOR


class TestDistributedMIS:
    def run_on(self, graph, seed=0, budget=30, label_space=10_000):
        rng = np.random.default_rng(seed)
        labels = DistributedMIS.random_labels(
            graph.nodes, label_space, rng
        )
        mis = DistributedMIS(graph, labels, round_budget=budget)
        mis.run()
        return mis

    def test_path_graph(self):
        mis = self.run_on(nx.path_graph(10))
        doms = mis.dominators()
        assert is_independent_set(mis.graph, doms)
        assert is_maximal_independent_set(mis.graph, doms)

    def test_cycle_graph(self):
        mis = self.run_on(nx.cycle_graph(12))
        doms = mis.dominators()
        assert is_maximal_independent_set(mis.graph, doms)

    def test_complete_graph_selects_exactly_one(self):
        mis = self.run_on(nx.complete_graph(8))
        assert len(mis.dominators()) == 1

    def test_empty_graph(self):
        mis = self.run_on(nx.empty_graph(5))
        # No edges: everyone is an isolated local minimum.
        assert mis.dominators() == set(range(5))

    def test_independence_holds_every_round(self):
        graph = nx.random_geometric_graph(40, 0.25, seed=3)
        rng = np.random.default_rng(4)
        labels = DistributedMIS.random_labels(graph.nodes, 1000, rng)
        mis = DistributedMIS(graph, labels, round_budget=25)
        for _ in range(25):
            mis.step()
            assert is_independent_set(graph, mis.dominators())

    def test_label_collisions_preserve_independence(self):
        # Tiny label space forces collisions; independence must survive.
        graph = nx.random_geometric_graph(30, 0.3, seed=5)
        rng = np.random.default_rng(6)
        labels = DistributedMIS.random_labels(graph.nodes, 2, rng)
        mis = DistributedMIS(graph, labels, round_budget=40)
        mis.run()
        assert is_independent_set(graph, mis.dominators())

    def test_budget_exhaustion_leaves_unsettled_nodes(self):
        # One round on a path: interior local minima settle, most do not.
        graph = nx.path_graph(50)
        rng = np.random.default_rng(7)
        labels = DistributedMIS.random_labels(graph.nodes, 10_000, rng)
        mis = DistributedMIS(graph, labels, round_budget=1)
        mis.run()
        assert mis.unsettled()  # budget too small to finish
        assert is_independent_set(graph, mis.dominators())

    def test_missing_labels_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError, match="labels missing"):
            DistributedMIS(graph, {0: 1}, round_budget=5)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            DistributedMIS(nx.path_graph(2), {0: 1, 1: 2}, round_budget=0)

    def test_maximality_with_high_probability(self):
        """Lemma 10.1's behaviour: with a large label space and a
        log-ish budget, the result is maximal in most runs."""
        graph = nx.random_geometric_graph(50, 0.2, seed=8)
        maximal = 0
        for seed in range(20):
            mis = self.run_on(graph, seed=seed, budget=30)
            if is_maximal_independent_set(graph, mis.dominators()):
                maximal += 1
        assert maximal >= 18  # >= 90 percent


class TestGreedyMIS:
    def test_maximal_on_random_graph(self):
        graph = nx.random_geometric_graph(40, 0.3, seed=9)
        mis = greedy_mis(graph)
        assert is_maximal_independent_set(graph, mis)

    def test_order_determines_selection(self):
        graph = nx.path_graph(3)
        assert greedy_mis(graph, order=[1]) == {1} or greedy_mis(
            graph, order=[1, 0, 2]
        ) == {1}

    def test_empty_graph(self):
        assert greedy_mis(nx.Graph()) == set()


class TestPredicates:
    def test_is_independent_set(self):
        graph = nx.path_graph(4)
        assert is_independent_set(graph, {0, 2})
        assert not is_independent_set(graph, {0, 1})

    def test_is_maximal(self):
        graph = nx.path_graph(4)
        assert is_maximal_independent_set(graph, {0, 2})  # 3 is covered by 2
        assert not is_maximal_independent_set(graph, {0})  # 2,3 uncovered
        assert is_maximal_independent_set(graph, {1, 3})
