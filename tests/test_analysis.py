"""Tests for repro.analysis (bounds, metrics, harness)."""

import pytest

from repro.analysis.bounds import (
    consensus_upper_bound,
    decay_approg_lower_bound,
    fack_upper_bound,
    fapprog_upper_bound,
    fprog_lower_bound,
    log2c,
    log_star,
    mmb_bound_decay_pipeline,
    mmb_upper_bound,
    smb_bound_daum,
    smb_bound_jurdzinski,
    smb_lower_bound,
    smb_upper_bound,
)
from repro.analysis.harness import correlation_with_shape, format_table
from repro.analysis.metrics import compute_metrics
from repro.geometry.deployment import line_deployment, uniform_disk
from repro.sinr.params import SINRParameters


class TestHelpers:
    def test_log2c_clamps(self):
        assert log2c(0.5) == 1.0
        assert log2c(8.0) == 3.0

    def test_log_star(self):
        assert log_star(2.0) == 1
        assert log_star(16.0) == 3
        assert log_star(0.5) == 1  # clamped to >= 1


class TestBoundShapes:
    def test_fack_linear_in_delta(self):
        lo = fack_upper_bound(4, 16, 0.1)
        hi = fack_upper_bound(8, 16, 0.1)
        # Doubling delta roughly doubles the dominant term (the additive
        # log·log term dampens the ratio below 2).
        assert 1.4 <= hi / lo < 2.1

    def test_fapprog_independent_of_delta(self):
        # The formula simply has no delta argument: structural check
        # that it grows only polylogarithmically in Lambda.
        small = fapprog_upper_bound(16, 0.1, alpha=3.0)
        large = fapprog_upper_bound(256, 0.1, alpha=3.0)
        assert large / small < (256 / 16) ** 1.0  # strictly sub-linear

    def test_fapprog_vs_fprog_separation_grows(self):
        """Remark 11.2: for Δ = Λ^c the f_prog >= Δ lower bound grows
        polynomially while f_approg grows polylogarithmically, so their
        ratio diverges (Θ-constants cancel in the ratio-of-ratios)."""

        def ratio(lam):
            delta = lam**1.5
            return fprog_lower_bound(delta) / fapprog_upper_bound(
                lam, 0.1, 3.0
            )

        assert ratio(2.0**20) > 10 * ratio(2.0**8)

    def test_smb_improves_on_daum_everywhere(self):
        """Table 2: ours beats [14] in the full parameter range (their
        bound carries an extra multiplicative log n on the D term)."""
        for d in (4, 32, 256):
            for n in (64, 1024):
                for lam in (4, 64):
                    ours = smb_upper_bound(d, n, 1.0 / n, lam, 3.0)
                    daum = smb_bound_daum(d, n, lam, 3.0)
                    assert ours <= daum * 1.01

    def test_smb_vs_jurdzinski_crossover(self):
        """Table 2: [32] wins when log^{α+1} Λ >> log² n, we win in the
        opposite regime."""
        # Small Lambda, big n: we win.
        ours = smb_upper_bound(10, 2**20, 2.0**-20, 4.0, 3.0)
        theirs = smb_bound_jurdzinski(10, 2**20)
        assert ours < theirs
        # Huge Lambda, small n: they win.
        ours2 = smb_upper_bound(10, 64, 1 / 64, 2.0**12, 3.0)
        theirs2 = smb_bound_jurdzinski(10, 64)
        assert theirs2 < ours2

    def test_mmb_drops_delta_from_the_diameter_term(self):
        """§2.1: the pipeline bound pays D·Δ·log n while ours pays only
        D·polylog Λ — scaling D and Δ together makes the pipeline/ours
        ratio grow without bound (constants cancel in the
        ratio-of-ratios)."""

        def ratio(scale):
            d, delta = 64 * scale, 64 * scale
            k, n, lam = 8, 4096, 16
            ours = mmb_upper_bound(d, k, delta, n, 0.01, lam, 3.0)
            pipeline = mmb_bound_decay_pipeline(d, k, delta, n)
            return pipeline / ours

        assert ratio(64) > 2 * ratio(1)

    def test_consensus_bound_formula(self):
        value = consensus_upper_bound(10, 8, 16, 100, 0.1)
        expected = 10 * (8 + 4) * log2c(100 * 16 / 0.1)
        assert value == pytest.approx(expected)

    def test_decay_lower_bound_linear_in_delta(self):
        assert decay_approg_lower_bound(64, 0.1) == pytest.approx(
            2 * decay_approg_lower_bound(32, 0.1)
        )

    def test_smb_lower_bound_shape(self):
        assert smb_lower_bound(1, 1024) >= log2c(1024) ** 2


class TestMetrics:
    def test_line_metrics(self):
        params = SINRParameters()
        spacing = params.strong_range * 0.9
        pts = line_deployment(6, spacing=spacing)
        m = compute_metrics(pts, params)
        assert m.n == 6
        assert m.degree == 2
        assert m.diameter == 5
        assert m.connected

    def test_gtilde_weaker_than_g(self):
        params = SINRParameters()
        pts = uniform_disk(25, radius=15.0, seed=19)
        m = compute_metrics(pts, params)
        assert m.degree_tilde <= m.degree
        if m.connected_tilde and m.connected:
            assert m.diameter_tilde >= m.diameter

    def test_disconnected_reports_none(self):
        params = SINRParameters()
        far = 5 * params.transmission_range
        import numpy as np

        from repro.geometry.points import PointSet

        pts = PointSet(np.array([[0.0, 0.0], [far, 0.0]]))
        m = compute_metrics(pts, params)
        assert not m.connected
        assert m.diameter is None

    def test_describe(self):
        params = SINRParameters()
        pts = line_deployment(3, spacing=4.0)
        assert "n=3" in compute_metrics(pts, params).describe()


class TestHarnessHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")

    def test_correlation_perfect_shape(self):
        measured = [2.0, 4.0, 8.0]
        predicted = [1.0, 2.0, 4.0]
        result = correlation_with_shape(measured, predicted)
        assert result["pearson"] == pytest.approx(1.0)
        assert result["ratio_spread"] == pytest.approx(1.0)

    def test_correlation_bad_shape(self):
        measured = [1.0, 10.0, 1.0]
        predicted = [1.0, 2.0, 4.0]
        result = correlation_with_shape(measured, predicted)
        assert result["pearson"] < 0.8

    def test_correlation_validates_input(self):
        with pytest.raises(ValueError):
            correlation_with_shape([1.0], [1.0])
        with pytest.raises(ValueError):
            correlation_with_shape([1, 2], [1, 2, 3])
