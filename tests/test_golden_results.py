"""Seeded golden pins: the full trial output, frozen as JSON fixtures.

The equivalence tests assert that executors agree *with each other*;
nothing so far pinned the absolute output against drift over time (a
subtly reordered reduction, a changed RNG consumption pattern and every
executor moves together — still "equivalent", silently different).
This suite freezes the complete :class:`~repro.experiments.plans.
TrialResult` dataclasses of one small {decay, ack} × {smb, consensus}
sweep as committed fixtures under ``tests/golden/``.

Any intentional physics/protocol change will fail these tests — that is
the point.  After reviewing the diff, regenerate with::

    PYTHONPATH=src python tests/test_golden_results.py --regenerate

and commit the updated fixtures alongside the change that moved them.

The sweep also rides the sparse-resolution contract: running the same
plans with exact sparse SINR resolution must reproduce the committed
fixtures bit for bit (the resolver's bit-identity promise, pinned
against an absolute reference rather than a peer executor).
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import SINRParameters, SparseResolution

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SEEDS = 2
MAX_SLOTS = 300_000


def _smb_deployment() -> DeploymentSpec:
    spacing = SINRParameters().approx_range * 0.8
    return DeploymentSpec.of(
        "cluster_deployment",
        n_clusters=6,
        nodes_per_cluster=5,
        cluster_radius=3.0,
        cluster_spacing=spacing,
        min_separation=1.0,
        seed=5,
    )


def _consensus_deployment() -> DeploymentSpec:
    return DeploymentSpec.of("uniform_disk", n=30, radius=14.0, seed=9)


def golden_plans(params: SINRParameters | None = None) -> dict[str, list]:
    """The pinned sweep: {decay, ack} × {smb, consensus}, 2 seeds."""
    params = params or SINRParameters()
    sweep: dict[str, list] = {}
    for stack in ("decay", "ack"):
        for workload in ("smb", "consensus"):
            if workload == "smb":
                deployment = _smb_deployment()
                options = TrialPlan.pack_options(source=0)
            else:
                deployment = _consensus_deployment()
                options = TrialPlan.pack_options(waves=6)
            base = TrialPlan(
                deployment=deployment,
                stack=stack,
                workload=workload,
                options=options,
                params=params,
                max_slots=MAX_SLOTS,
                record_physical=False,
                label=f"golden-{stack}-{workload}",
            )
            sweep[f"{stack}_{workload}"] = seeded_plans(
                base, spawn_trial_seeds(SEEDS, seed=13)
            )
    return sweep


def serialize(results) -> list[dict]:
    """JSON-normalized full dataclass dump (tuples become lists)."""
    return json.loads(
        json.dumps([dataclasses.asdict(r) for r in results])
    )


def _fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", sorted(golden_plans()))
def test_results_match_golden_fixture(name):
    fixture = _fixture_path(name)
    assert fixture.is_file(), (
        f"missing golden fixture {fixture}; generate it with "
        "`PYTHONPATH=src python tests/test_golden_results.py --regenerate`"
    )
    expected = json.loads(fixture.read_text(encoding="utf-8"))
    actual = serialize(run_trials(golden_plans()[name]))
    assert actual == expected, (
        f"{name}: trial output drifted from the committed golden pin. "
        "If the change is intentional, review the diff and regenerate "
        "the fixtures (see module docstring)."
    )


@pytest.mark.parametrize("name", sorted(golden_plans()))
def test_sparse_exact_reproduces_golden_fixture(name):
    """Exact sparse resolution pinned against the absolute reference."""
    fixture = _fixture_path(name)
    assert fixture.is_file()
    expected = json.loads(fixture.read_text(encoding="utf-8"))
    # min_n=1 forces the resolver on at these n=30 fixtures; the default
    # crossover would silently fall back to dense and pin nothing.
    sparse = SINRParameters(sparse=SparseResolution(mode="exact", min_n=1))
    actual = serialize(run_trials(golden_plans(sparse)[name]))
    assert actual == expected


def test_fixtures_have_no_strays():
    """Every committed fixture corresponds to a pinned sweep entry."""
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(golden_plans())


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, plans in sorted(golden_plans().items()):
        payload = serialize(run_trials(plans))
        path = _fixture_path(name)
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {path} ({len(payload)} trials)")


if __name__ == "__main__":
    if "--regenerate" not in sys.argv:
        print(__doc__)
        sys.exit(2)
    _regenerate()
