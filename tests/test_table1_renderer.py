"""Tests for the Table 1 generator (repro.analysis.table1)."""

import pytest

from repro.analysis.table1 import Table1Row, render_table1, table1_rows


class TestTable1Rows:
    def test_all_six_tasks_present(self):
        rows = table1_rows(n=256, delta=16, diameter=10, diameter_tilde=12)
        assert [r.task for r in rows] == [
            "f_ack",
            "f_prog",
            "f_approg",
            "global SMB",
            "global MMB",
            "global CONS",
        ]

    def test_caption_recipe_defaults(self):
        """Defaults follow the caption: Λ = n, ε = 1/n."""
        rows = table1_rows(n=256, delta=16, diameter=10, diameter_tilde=12)
        explicit = table1_rows(
            n=256,
            delta=16,
            diameter=10,
            diameter_tilde=12,
            lam=256.0,
            eps=1.0 / 256,
        )
        for a, b in zip(rows, explicit):
            assert a.upper_bound == b.upper_bound

    def test_upper_bounds_at_least_lower_bounds_for_mac_rows(self):
        """Consistency: the f_ack/f_prog upper bounds dominate their
        lower bounds (as they must, both measuring the same task)."""
        rows = {
            r.task: r
            for r in table1_rows(
                n=1024, delta=32, diameter=12, diameter_tilde=14
            )
        }
        assert rows["f_ack"].upper_bound >= rows["f_ack"].lower_bound
        assert rows["f_prog"].upper_bound >= rows["f_prog"].lower_bound

    def test_fapprog_beats_fprog_floor_for_high_degree(self):
        """Remark 11.2 visible in the generated table: when Δ is
        polynomial in Λ (dense geometry, moderate length ratio) the
        f_approg upper bound undercuts the f_prog lower bound.  Λ and Δ
        are decoupled here — Λ is a geometric ratio, while Δ can grow
        with density."""
        n = 2**12
        rows = {
            r.task: r
            for r in table1_rows(
                n=n,
                delta=4000,
                diameter=12,
                diameter_tilde=14,
                lam=16.0,
                eps=1.0 / n,
            )
        }
        assert rows["f_approg"].upper_bound < rows["f_prog"].lower_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            table1_rows(n=1, delta=4, diameter=2, diameter_tilde=2)
        with pytest.raises(ValueError):
            table1_rows(n=16, delta=4, diameter=5, diameter_tilde=2)

    def test_missing_bounds_rendered_as_dash(self):
        rows = table1_rows(n=64, delta=8, diameter=4, diameter_tilde=5)
        text = render_table1(rows)
        approg_line = next(
            line for line in text.splitlines() if "f_approg" in line
        )
        assert "-" in approg_line


class TestRenderer:
    def test_layout(self):
        rows = [Table1Row("demo", 10.0, 20.0, note="hello")]
        text = render_table1(rows)
        lines = text.splitlines()
        assert lines[0].startswith("Task")
        assert "demo" in lines[2]
        assert "hello" in lines[2]

    def test_thousands_separators(self):
        rows = [Table1Row("big", 1234567.0, None)]
        assert "1,234,567" in render_table1(rows)
