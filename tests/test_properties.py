"""Property-based tests (hypothesis) on core invariants.

These encode the structural facts the paper's analysis rests on:
SINR monotonicity, graph nesting, MIS independence, reception uniqueness,
trace well-formedness, and the schedule bijection of Algorithm 9.1.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.approx_progress import ApproxProgressConfig, EpochSchedule
from repro.core.mis import (
    DistributedMIS,
    is_independent_set,
    next_state,
    COMPETITOR,
    DOMINATOR,
)
from repro.geometry.points import pairwise_distances
from repro.sinr.params import SINRParameters
from repro.sinr.physics import (
    sinr_of_link,
    successful_receptions,
)

# -- strategies -----------------------------------------------------------

coords_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=3,
    max_size=12,
    unique=True,
)


def well_separated(points, min_distance=1.0):
    arr = np.array(points)
    if len(arr) < 2:
        return True
    dists = pairwise_distances(arr)
    np.fill_diagonal(dists, np.inf)
    return dists.min() >= min_distance


params_strategy = st.builds(
    SINRParameters,
    power=st.floats(min_value=0.5, max_value=10.0),
    alpha=st.floats(min_value=2.1, max_value=6.0),
    beta=st.floats(min_value=1.1, max_value=3.0),
    noise=st.floats(min_value=1e-6, max_value=1e-2),
    epsilon=st.floats(min_value=0.05, max_value=0.4),
)


class TestSINRProperties:
    @given(coords=coords_strategy, params=params_strategy)
    @settings(max_examples=50, deadline=None)
    def test_at_most_one_decoded_sender_per_listener(self, coords, params):
        """β > 1 ⇒ reception is a partial function listener→sender."""
        if not well_separated(coords):
            return
        arr = np.array(coords)
        dists = pairwise_distances(arr)
        tx = np.arange(0, len(arr), 2)
        result = successful_receptions(params, dists, tx)
        # dict keys are unique by construction; transmitters never listen.
        for listener in result:
            assert listener not in tx

    @given(
        coords=coords_strategy,
        params=params_strategy,
        extra=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_interferers_never_help(self, coords, params, extra):
        """SINR is monotone non-increasing in the transmitter set."""
        if not well_separated(coords) or len(coords) < 4:
            return
        arr = np.array(coords)
        dists = pairwise_distances(arr)
        small = np.array([0])
        big = np.array([0, 2, 3][: 1 + extra + 1])
        sinr_small = sinr_of_link(params, dists, small, 0, 1)
        sinr_big = sinr_of_link(params, dists, big, 0, 1)
        assert sinr_big <= sinr_small + 1e-12

    @given(params=params_strategy)
    @settings(max_examples=50, deadline=None)
    def test_range_nesting(self, params):
        """R_{1-2ε} < R_{1-ε} < R always."""
        assert params.approx_range < params.strong_range
        assert params.strong_range < params.transmission_range

    @given(
        params=params_strategy,
        d1=st.floats(min_value=1.0, max_value=50.0),
        d2=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_sinr_monotone_in_distance(self, params, d1, d2):
        """Closer sender ⇒ no worse SINR (lone transmitter)."""
        near, far = sorted([d1, d2])
        arr_near = np.array([[0.0, 0.0], [near, 0.0]])
        arr_far = np.array([[0.0, 0.0], [far, 0.0]])
        s_near = sinr_of_link(
            params, pairwise_distances(arr_near), np.array([0]), 0, 1
        )
        s_far = sinr_of_link(
            params, pairwise_distances(arr_far), np.array([0]), 0, 1
        )
        assert s_near >= s_far - 1e-12


class TestGraphNesting:
    @given(coords=coords_strategy, params=params_strategy)
    @settings(max_examples=30, deadline=None)
    def test_induced_graph_nesting(self, coords, params):
        """a <= b ⇒ G_a ⊆ G_b (paper §4.3)."""
        from repro.geometry.points import PointSet
        from repro.sinr.graphs import induced_graph

        if not well_separated(coords):
            return
        pts = PointSet(np.array(coords))
        g_small = induced_graph(pts, params, 1.0 - 2 * params.epsilon)
        g_mid = induced_graph(pts, params, 1.0 - params.epsilon)
        g_big = induced_graph(pts, params, 1.0)
        assert set(g_small.edges) <= set(g_mid.edges)
        assert set(g_mid.edges) <= set(g_big.edges)


class TestMISProperties:
    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.05, max_value=0.5),
        label_space=st.integers(min_value=2, max_value=1000),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_dominators_always_independent(self, n, p, label_space, seed):
        """Independence holds for ANY graph, label space and budget —
        including heavy label collisions (Lemma 10.1 part 1)."""
        graph = nx.gnp_random_graph(n, p, seed=seed)
        rng = np.random.default_rng(seed)
        labels = DistributedMIS.random_labels(graph.nodes, label_space, rng)
        mis = DistributedMIS(graph, labels, round_budget=1 + seed % 10)
        mis.run()
        assert is_independent_set(graph, mis.dominators())

    @given(
        my_label=st.integers(min_value=1, max_value=100),
        neighbor_labels=st.lists(
            st.integers(min_value=1, max_value=100), max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_adjacent_competitors_cannot_both_win(
        self, my_label, neighbor_labels
    ):
        """For any pair of adjacent competitors u, v seeing each other,
        at most one transitions to dominator in a round."""
        for other in neighbor_labels:
            me_wins = (
                next_state(my_label, COMPETITOR, [(other, COMPETITOR)])
                == DOMINATOR
            )
            other_wins = (
                next_state(other, COMPETITOR, [(my_label, COMPETITOR)])
                == DOMINATOR
            )
            assert not (me_wins and other_wins)


class TestScheduleProperties:
    @given(
        lam=st.floats(min_value=2.0, max_value=500.0),
        eps=st.floats(min_value=0.01, max_value=0.5),
        alpha=st.floats(min_value=2.1, max_value=5.0),
        probe=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_locate_is_total_and_consistent(self, lam, eps, alpha, probe):
        """Every virtual slot maps to exactly one (epoch, phase, block,
        offset) and the blocks tile the epoch."""
        config = ApproxProgressConfig(
            lambda_bound=lam, eps_approg=eps, alpha=alpha
        )
        schedule = EpochSchedule(config)
        epoch, phase, block, off = schedule.locate(probe)
        assert 0 <= phase < schedule.phi
        assert block in {"est1", "est2", "mis", "bcast"}
        assert off >= 0
        # Reconstruct the virtual slot from the coordinates.
        base = epoch * schedule.epoch_slots + phase * schedule.phase_slots
        offsets = {
            "est1": 0,
            "est2": schedule.t,
            "mis": 2 * schedule.t,
            "bcast": (2 + schedule.rounds) * schedule.t,
        }
        assert base + offsets[block] + off == probe

    @given(
        lam=st.floats(min_value=2.0, max_value=500.0),
        eps=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_epoch_parameters_positive(self, lam, eps):
        config = ApproxProgressConfig(lambda_bound=lam, eps_approg=eps)
        assert config.phi_count >= 1
        assert config.repetitions >= 1
        assert config.q_factor >= 1
        assert config.mis_rounds >= 1
        assert config.bcast_block_slots >= 1
        assert 0 < config.potential_threshold < config.repetitions


class TestReplayDeterminism:
    """The invariant Algorithm 9.1's MIS simulation rests on (§9.3.2):
    replaying the same transmitter set reproduces the same receptions,
    and removing transmitters only ever *adds* receptions for the
    remaining senders (SINR monotonicity under interference removal)."""

    @given(
        coords=coords_strategy,
        params=params_strategy,
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_transmitters_same_outcome(self, coords, params, seed):
        if not well_separated(coords):
            return
        arr = np.array(coords)
        dists = pairwise_distances(arr)
        rng = np.random.default_rng(seed)
        tx = np.flatnonzero(rng.random(len(arr)) < 0.5)
        if tx.size == 0:
            return
        first = successful_receptions(params, dists, tx)
        second = successful_receptions(params, dists, tx)
        assert first == second

    @given(
        coords=coords_strategy,
        params=params_strategy,
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_dropping_transmitters_only_helps_survivors(
        self, coords, params, seed
    ):
        if not well_separated(coords) or len(coords) < 4:
            return
        arr = np.array(coords)
        dists = pairwise_distances(arr)
        rng = np.random.default_rng(seed)
        tx = np.flatnonzero(rng.random(len(arr)) < 0.6)
        if tx.size < 2:
            return
        full = successful_receptions(params, dists, tx)
        dropped = tx[:-1]  # one transmitter leaves (a §9.3.2 drop-out)
        reduced = successful_receptions(params, dists, dropped)
        removed = int(tx[-1])
        for listener, sender in full.items():
            if sender == removed or listener == removed:
                continue  # links of the removed node may vanish
            # Every surviving link still delivers.
            assert reduced.get(listener) == sender


class TestReliabilityProperties:
    @given(
        seed=st.integers(min_value=0, max_value=200),
        p=st.floats(min_value=0.1, max_value=0.5),
    )
    @settings(max_examples=15, deadline=None)
    def test_reliability_graph_is_undirected_and_loopless(self, seed, p):
        from repro.core.reliability import reliability_graph
        from repro.geometry.deployment import uniform_disk

        params = SINRParameters()
        pts = uniform_disk(8, radius=7.0, seed=seed)
        dists = pairwise_distances(pts.coords)
        graph = reliability_graph(
            params,
            dists,
            list(range(8)),
            p=p,
            mu=p / 4,
            samples=150,
            rng=np.random.default_rng(seed),
        )
        for u, v in graph.edges:
            assert u != v
            assert graph.has_edge(v, u)


class TestDecayEngineProperties:
    @given(
        bound=st.floats(min_value=2.0, max_value=500.0),
        eps=st.floats(min_value=0.01, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_decay_halts_exactly_on_budget(self, bound, eps, seed):
        from repro.core.decay import DecayConfig, DecayEngine

        config = DecayConfig(contention_bound=bound, eps_ack=eps)
        engine = DecayEngine(config, np.random.default_rng(seed))
        for _ in range(config.ack_budget_slots):
            assert not engine.halted
            engine.step()
        assert engine.halted
        assert engine.transmissions <= engine.slots_run


class TestAckEngineProperties:
    @given(
        bound=st.floats(min_value=2.0, max_value=1000.0),
        eps=st.floats(min_value=0.01, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_always_halts_within_budget_bound(self, bound, eps, seed):
        """Halting is guaranteed: tp grows by >= floor probability every
        slot, so slots <= halt_budget / floor_probability."""
        from repro.core.ack_protocol import AckConfig, AckEngine

        config = AckConfig(contention_bound=bound, eps_ack=eps)
        engine = AckEngine(config, np.random.default_rng(seed))
        hard_cap = int(config.halt_budget / config.floor_probability) + 10
        for _ in range(hard_cap):
            if engine.halted:
                break
            engine.step()
        assert engine.halted


class TestDeploymentSeparationInvariant:
    """The module contract of repro.geometry.deployment: every random
    generator returns a PointSet whose minimum pairwise distance is at
    least ``min_separation`` — across groups too (overlapping clusters
    and overlapping balls used to violate it) — or refuses loudly with
    ``DeploymentError``.  Either outcome upholds the invariant; a
    silently-violating layout is the bug."""

    @staticmethod
    def _check(build, min_separation):
        from repro.geometry.deployment import DeploymentError
        from repro.geometry.deployment import verify_min_separation

        try:
            points = build()
        except DeploymentError:
            return  # refusing is a valid outcome of a too-dense request
        assert verify_min_separation(points, min_separation)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=2, max_value=25),
        radius=st.floats(min_value=3.0, max_value=25.0),
        sep=st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_disk(self, seed, n, radius, sep):
        from repro.geometry.deployment import uniform_disk

        self._check(
            lambda: uniform_disk(n, radius, min_separation=sep, seed=seed),
            sep,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=2, max_value=25),
        side=st.floats(min_value=3.0, max_value=25.0),
        sep=st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_square(self, seed, n, side, sep):
        from repro.geometry.deployment import uniform_square

        self._check(
            lambda: uniform_square(n, side, min_separation=sep, seed=seed),
            sep,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=2, max_value=25),
        inner=st.floats(min_value=0.0, max_value=10.0),
        width=st.floats(min_value=2.0, max_value=15.0),
        sep=st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_annulus(self, seed, n, inner, width, sep):
        from repro.geometry.deployment import annulus_deployment

        self._check(
            lambda: annulus_deployment(
                n, inner, inner + width, min_separation=sep, seed=seed
            ),
            sep,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        clusters=st.integers(min_value=2, max_value=4),
        per_cluster=st.integers(min_value=1, max_value=8),
        radius=st.floats(min_value=1.0, max_value=6.0),
        # Spacing down to a fraction of the radius: heavily overlapping
        # clusters, the exact regime of the fixed cross-cluster bug.
        spacing_factor=st.floats(min_value=0.25, max_value=4.0),
        sep=st.floats(min_value=0.5, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_clusters_including_overlap(
        self, seed, clusters, per_cluster, radius, spacing_factor, sep
    ):
        from repro.geometry.deployment import cluster_deployment

        self._check(
            lambda: cluster_deployment(
                clusters,
                per_cluster,
                cluster_radius=radius,
                cluster_spacing=spacing_factor * radius,
                min_separation=sep,
                seed=seed,
            ),
            sep,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_sparse=st.integers(min_value=1, max_value=4),
        n_dense=st.integers(min_value=1, max_value=12),
        radius=st.floats(min_value=2.0, max_value=8.0),
        distance_factor=st.floats(min_value=0.25, max_value=4.0),
        sep=st.floats(min_value=0.5, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_balls_including_overlap(
        self, seed, n_sparse, n_dense, radius, distance_factor, sep
    ):
        from repro.geometry.deployment import two_balls

        self._check(
            lambda: two_balls(
                n_sparse,
                n_dense,
                ball_radius=radius,
                center_distance=distance_factor * radius,
                min_separation=sep,
                seed=seed,
            ),
            sep,
        )
