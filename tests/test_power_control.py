"""Tests for per-transmitter power support (the Theorem 6.1 hook)."""

import numpy as np
import pytest

from repro.geometry.points import pairwise_distances
from repro.lowerbounds.constructions import ProgressLowerBoundNetwork
from repro.lowerbounds.experiments import power_controlled_progress
from repro.sinr.params import SINRParameters
from repro.sinr.physics import (
    received_power,
    sinr_matrix,
    successful_receptions,
)


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


def dists(*points):
    return pairwise_distances(np.array(points, dtype=float))


class TestPowerOverrides:
    def test_received_power_with_scalar_override(self, params):
        base = received_power(params, np.array(2.0))
        boosted = received_power(params, np.array(2.0), power=4.0)
        assert boosted == pytest.approx(4.0 * base)

    def test_sinr_matrix_uniform_matches_default(self, params):
        d = dists((0, 0), (5, 0), (9, 2))
        tx = np.array([0, 2])
        uniform = sinr_matrix(params, d, tx)
        explicit = sinr_matrix(
            params, d, tx, tx_powers=np.array([params.power, params.power])
        )
        assert np.allclose(uniform, explicit)

    def test_boosting_sender_raises_its_own_sinr(self, params):
        d = dists((0, 0), (5, 0), (40, 0), (45, 0))
        tx = np.array([0, 2])
        base = sinr_matrix(params, d, tx)
        boosted = sinr_matrix(params, d, tx, tx_powers=np.array([8.0, 1.0]))
        assert boosted[0, 1] > base[0, 1]  # own link improves
        assert boosted[1, 3] < base[1, 3]  # the other link suffers

    def test_reception_flips_with_power(self, params):
        # Two senders, one listener between them: symmetric powers
        # collide, an 8x boost captures the channel.
        d = dists((0, 0), (5, 0), (-5, 0))
        tx = np.array([1, 2])
        symmetric = successful_receptions(params, d, tx)
        assert 0 not in symmetric
        boosted = successful_receptions(
            params, d, tx, tx_powers=np.array([8.0, 1.0])
        )
        assert boosted.get(0) == 1

    def test_power_validation(self, params):
        d = dists((0, 0), (5, 0))
        with pytest.raises(ValueError, match="align"):
            sinr_matrix(params, d, np.array([0]), tx_powers=np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="positive"):
            sinr_matrix(params, d, np.array([0]), tx_powers=np.array([0.0]))


class TestPowerControlledLowerBound:
    def test_never_two_cross_successes(self):
        network = ProgressLowerBoundNetwork(delta=6)
        result = power_controlled_progress(
            network, concurrency=3, trials=150, power_spread=50.0, seed=3
        )
        assert result["max_cross_successes_per_slot"] <= 1
        assert result["implied_fprog_lower_bound"] >= 6

    def test_argument_validation(self):
        network = ProgressLowerBoundNetwork(delta=4)
        with pytest.raises(ValueError):
            power_controlled_progress(network, concurrency=1)
        with pytest.raises(ValueError):
            power_controlled_progress(network, concurrency=10)
