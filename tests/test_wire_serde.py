"""The service wire format: JSON round-trips for plans/policies/results.

Two contracts.  *Structural*: every plan-level object — topology
providers, adversary specs, channel model, sparse resolution, protocol
configs, explicit-coordinate deployments — survives
``decode(encode(x)) == x`` through real JSON text, with
``__post_init__`` validation re-running on decode.  *Semantic* (the
hypothesis property at the bottom): a plan that crossed the wire
produces bit-identical :class:`TrialResult`\\ s, which is what lets the
job server promise the same results as the in-process library call.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ack_protocol import AckConfig
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    AdversarySpec,
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.geometry import uniform_disk
from repro.service import wire
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import ChannelModel, SINRParameters, SparseResolution
from repro.topology import (
    ChurnSchedule,
    CompositeTopology,
    StaticTopology,
    WaypointMobility,
)

DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=10, radius=6.0, seed=33)


def through_json(value):
    """encode → real JSON text → decode (not just dict identity)."""
    return wire.decode(json.loads(json.dumps(wire.encode(value))))


RICH_PLANS = {
    "topology-composite": TrialPlan(
        deployment=DEPLOYMENT,
        stack="decay",
        workload="local_broadcast",
        topology=CompositeTopology(
            parts=(
                WaypointMobility(epoch_slots=16, speed=0.4, seed=3),
                ChurnSchedule(events=((4, 0, "crash"), (40, 0, "recover"))),
            )
        ),
    ),
    "adversary-jamming": TrialPlan(
        deployment=DEPLOYMENT,
        stack="ack",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=64),
        adversary=AdversarySpec(
            kind="jamming", drop_probability=0.2, jam_slots=(3, 5, 8), seed=7
        ),
        ack_config=AckConfig(contention_bound=16.0),
    ),
    "adversary-gray-zone": TrialPlan(
        deployment=DEPLOYMENT,
        stack="decay",
        workload="local_broadcast",
        adversary=AdversarySpec(kind="gray_zone", gray_drop=0.5, seed=11),
    ),
    "channel-model": TrialPlan(
        deployment=DEPLOYMENT,
        stack="decay",
        workload="local_broadcast",
        params=SINRParameters(
            channel_model=ChannelModel(
                rayleigh=True, shadowing_sigma_db=4.0, power_spread=2.0
            )
        ),
    ),
    "sparse-farfield": TrialPlan(
        deployment=DEPLOYMENT,
        stack="decay",
        workload="local_broadcast",
        params=SINRParameters(
            sparse=SparseResolution(mode="farfield", epsilon=0.05)
        ),
    ),
    "combined-configs": TrialPlan(
        deployment=DEPLOYMENT,
        stack="combined",
        workload="local_broadcast",
        ack_config=AckConfig(contention_bound=16.0),
        approg_config=ApproxProgressConfig(lambda_bound=4.0, eps_approg=0.2),
        topology=StaticTopology(),
    ),
    "explicit-coords": TrialPlan(
        deployment=DeploymentSpec.explicit(
            uniform_disk(8, radius=5.0, seed=2)
        ),
        stack="decay",
        workload="local_broadcast",
        decay_config=DecayConfig(contention_bound=16.0),
    ),
}


class TestPlanRoundTrip:
    @pytest.mark.parametrize("name", sorted(RICH_PLANS))
    def test_rich_plan_round_trips(self, name):
        plan = RICH_PLANS[name]
        restored = through_json(plan)
        assert restored == plan
        assert hash(restored) == hash(plan)

    def test_explicit_coords_bytes_survive(self):
        plan = RICH_PLANS["explicit-coords"]
        restored = wire.plan_from_wire(
            json.loads(json.dumps(wire.plan_to_wire(plan)))
        )
        original = dict(plan.deployment.options)["coords"]
        assert dict(restored.deployment.options)["coords"] == original

    def test_nested_option_tuples_stay_tuples(self):
        plan = TrialPlan(
            deployment=DEPLOYMENT,
            stack="decay",
            workload="mmb",
            options=TrialPlan.pack_options(
                arrivals=((0, 0), (4, 1), (9, 2))
            ),
        )
        restored = through_json(plan)
        assert restored == plan
        assert isinstance(dict(restored.options)["arrivals"], tuple)


class TestPolicyAndResultRoundTrip:
    @pytest.mark.parametrize(
        "policy",
        [
            ExecutionPolicy(),
            ExecutionPolicy(mode="sequential", workers=1),
            ExecutionPolicy(workers=4, vectorize=True, native=False,
                            share_cache=False),
            ExecutionPolicy(native=True, native_threads=8),
        ],
    )
    def test_policy_round_trips(self, policy):
        assert wire.policy_from_wire(
            json.loads(json.dumps(wire.policy_to_wire(policy)))
        ) == policy

    def test_result_round_trips_bit_exact(self):
        plan = seeded_plans(
            RICH_PLANS["channel-model"], spawn_trial_seeds(1, seed=4)
        )[0]
        (result,) = run_trials([plan])
        restored = wire.result_from_wire(
            json.loads(json.dumps(wire.result_to_wire(result)))
        )
        # Dataclass equality here is float-bit-exact: JSON uses
        # shortest-repr floats, which round-trip every finite double.
        assert restored == result


class TestWireSafety:
    def test_unknown_type_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown wire type"):
            wire.decode({"$type": "os.system", "command": "true"})

    def test_untagged_object_rejected(self):
        with pytest.raises(ValueError, match="without \\$type"):
            wire.decode({"kind": "uniform_disk"})

    def test_unregistered_dataclass_rejected_on_encode(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class NotOnTheWire:
            x: int = 1

        with pytest.raises(TypeError, match="WIRE_TYPES"):
            wire.encode(NotOnTheWire())

    def test_decode_revalidates_fields(self):
        # A tampered wire object hits the same __post_init__ guard a
        # local constructor call does.
        bad = wire.encode(AdversarySpec(kind="jamming", seed=1))
        bad["drop_probability"] = 7.5
        with pytest.raises(ValueError):
            wire.decode(bad)

    def test_wrong_top_level_type_rejected(self):
        encoded = wire.policy_to_wire(ExecutionPolicy())
        with pytest.raises(ValueError, match="TrialPlan"):
            wire.plan_from_wire(encoded)

    def test_messages_are_single_lines(self):
        message = {"op": "submit", "plans": [wire.encode(RICH_PLANS
                                                         ["explicit-coords"])]}
        text = wire.dumps(message)
        assert "\n" not in text
        assert wire.loads(text) == json.loads(text)


# -- the semantic contract --------------------------------------------------

STACKS = st.sampled_from(["decay", "ack"])


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    stack=STACKS,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    deploy_seed=st.integers(min_value=1, max_value=50),
    n=st.integers(min_value=6, max_value=12),
    rayleigh=st.booleans(),
)
def test_round_tripped_plans_run_bit_identical(
    stack, seed, deploy_seed, n, rayleigh
):
    """A plan that crossed the wire is *the same experiment*."""
    config = (
        dict(decay_config=DecayConfig(contention_bound=16.0))
        if stack == "decay"
        else dict(ack_config=AckConfig(contention_bound=16.0))
    )
    plan = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=n, radius=5.0, seed=deploy_seed
        ),
        stack=stack,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=40),
        params=SINRParameters(
            channel_model=ChannelModel(rayleigh=True) if rayleigh else None
        ),
        seed=seed,
        **config,
    )
    restored = through_json(plan)
    assert restored == plan
    assert run_trials([restored]) == run_trials([plan])
