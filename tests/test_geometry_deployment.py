"""Unit tests for repro.geometry.deployment."""

import math

import numpy as np
import pytest

from repro.geometry.deployment import (
    DeploymentError,
    annulus_deployment,
    cluster_deployment,
    grid_deployment,
    line_deployment,
    two_balls,
    two_parallel_lines,
    uniform_disk,
    uniform_square,
    verify_min_separation,
)
from repro.geometry.points import min_pairwise_distance


class TestUniformDisk:
    def test_count_and_radius(self):
        ps = uniform_disk(30, radius=15.0, seed=0)
        assert len(ps) == 30
        radii = np.hypot(ps.coords[:, 0], ps.coords[:, 1])
        assert radii.max() <= 15.0 + 1e-9

    def test_min_separation_respected(self):
        ps = uniform_disk(40, radius=20.0, min_separation=1.5, seed=1)
        assert min_pairwise_distance(ps.coords) >= 1.5 - 1e-9

    def test_reproducible_with_seed(self):
        a = uniform_disk(10, radius=10.0, seed=5)
        b = uniform_disk(10, radius=10.0, seed=5)
        assert np.allclose(a.coords, b.coords)

    def test_different_seeds_differ(self):
        a = uniform_disk(10, radius=10.0, seed=5)
        b = uniform_disk(10, radius=10.0, seed=6)
        assert not np.allclose(a.coords, b.coords)

    def test_too_dense_raises(self):
        with pytest.raises(DeploymentError, match="too dense"):
            uniform_disk(500, radius=2.0, min_separation=1.0, seed=0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_disk(0, radius=5.0)
        with pytest.raises(ValueError):
            uniform_disk(5, radius=-1.0)


class TestUniformSquare:
    def test_inside_square(self):
        ps = uniform_square(25, side=30.0, seed=2)
        assert (ps.coords >= 0).all()
        assert (ps.coords <= 30.0).all()

    def test_min_separation(self):
        ps = uniform_square(25, side=30.0, min_separation=2.0, seed=2)
        assert min_pairwise_distance(ps.coords) >= 2.0 - 1e-9


class TestGrid:
    def test_count(self):
        assert len(grid_deployment(3, 4)) == 12

    def test_spacing(self):
        ps = grid_deployment(2, 2, spacing=3.0)
        assert min_pairwise_distance(ps.coords) == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_deployment(0, 3)


class TestLine:
    def test_collinear_and_spaced(self):
        ps = line_deployment(5, spacing=2.0)
        assert np.allclose(ps.coords[:, 1], 0.0)
        assert min_pairwise_distance(ps.coords) == pytest.approx(2.0)

    def test_single_node(self):
        assert len(line_deployment(1)) == 1


class TestClusters:
    def test_total_count(self):
        ps = cluster_deployment(
            3, 8, cluster_radius=3.0, cluster_spacing=30.0, seed=3
        )
        assert len(ps) == 24

    def test_clusters_are_separated(self):
        ps = cluster_deployment(
            2, 5, cluster_radius=2.0, cluster_spacing=50.0, seed=3
        )
        xs = ps.coords[:, 0]
        # First cluster near x=0, second near x=50.
        assert (np.sort(xs)[:5] < 10).all()
        assert (np.sort(xs)[5:] > 40).all()

    def test_min_separation_across_overlapping_clusters(self):
        """Regression: cluster_spacing < 2*cluster_radius overlaps the
        cluster disks, and cross-cluster pairs used to escape the
        rejection-sampling constraint entirely — the accumulated point
        set now threads through every cluster's sampler."""
        for seed in range(8):
            ps = cluster_deployment(
                4,
                6,
                cluster_radius=5.0,
                cluster_spacing=3.0,  # heavy overlap
                min_separation=1.0,
                seed=seed,
            )
            assert len(ps) == 24
            assert verify_min_separation(ps, 1.0), f"seed {seed}"

    def test_overlapping_too_dense_raises(self):
        """When the overlapped region cannot hold the requested nodes,
        the generator must refuse instead of violating the invariant."""
        with pytest.raises(DeploymentError, match="too dense"):
            cluster_deployment(
                6,
                40,
                cluster_radius=3.0,
                cluster_spacing=0.5,
                min_separation=1.0,
                seed=0,
            )

    def test_spacious_clusters_unchanged_by_fix(self):
        """Threading the accumulated points must not disturb seeded
        layouts whose clusters never interact (no candidate near a
        foreign cluster is ever drawn, so no decision changes)."""
        ps = cluster_deployment(
            3, 8, cluster_radius=3.0, cluster_spacing=30.0, seed=3
        )
        solo_rng = np.random.default_rng(3)
        # Re-generate cluster 0 alone from the same stream prefix: the
        # fix must leave the first cluster's points byte-identical.
        from repro.geometry.deployment import _rejection_sample

        def draw(r):
            rad = 3.0 * math.sqrt(r.random())
            theta = 2.0 * math.pi * r.random()
            return np.array(
                [rad * math.cos(theta), rad * math.sin(theta)]
            )

        first = _rejection_sample(8, draw, 1.0, solo_rng)
        assert np.array_equal(ps.coords[:8], first)


class TestAnnulus:
    def test_radial_band(self):
        ps = annulus_deployment(20, inner_radius=10.0, outer_radius=20.0, seed=4)
        radii = np.hypot(ps.coords[:, 0], ps.coords[:, 1])
        assert radii.min() >= 10.0 - 1e-9
        assert radii.max() <= 20.0 + 1e-9

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            annulus_deployment(5, inner_radius=5.0, outer_radius=5.0)


class TestTwoParallelLines:
    def test_geometry(self):
        ps = two_parallel_lines(delta=4, line_distance=40.0)
        assert len(ps) == 8
        # First 4 on y=0, last 4 on y=40.
        assert np.allclose(ps.coords[:4, 1], 0.0)
        assert np.allclose(ps.coords[4:, 1], 40.0)

    def test_partner_distance(self):
        ps = two_parallel_lines(delta=3, line_distance=30.0)
        for i in range(3):
            dx = ps.coords[i] - ps.coords[i + 3]
            assert math.hypot(*dx) == pytest.approx(30.0)


class TestTwoBalls:
    def test_populations_and_separation(self):
        ps = two_balls(
            n_sparse=2,
            n_dense=10,
            ball_radius=5.0,
            center_distance=50.0,
            seed=5,
        )
        assert len(ps) == 12
        assert verify_min_separation(ps, 1.0)

    def test_balls_disjoint(self):
        ps = two_balls(
            n_sparse=3,
            n_dense=7,
            ball_radius=4.0,
            center_distance=100.0,
            seed=6,
        )
        sparse_x = ps.coords[:3, 0]
        dense_x = ps.coords[3:, 0]
        assert sparse_x.max() < 10
        assert dense_x.min() > 90

    def test_min_separation_across_overlapping_balls(self):
        """Regression: B2's sampler must see B1's points when the balls
        overlap (center_distance < 2*ball_radius)."""
        for seed in range(8):
            ps = two_balls(
                n_sparse=4,
                n_dense=10,
                ball_radius=6.0,
                center_distance=4.0,  # heavy overlap
                min_separation=1.0,
                seed=seed,
            )
            assert verify_min_separation(ps, 1.0), f"seed {seed}"


class TestVerifyMinSeparation:
    def test_accepts_good_layout(self):
        assert verify_min_separation(line_deployment(5, spacing=2.0), 2.0)

    def test_rejects_bad_layout(self):
        assert not verify_min_separation(line_deployment(5, spacing=0.5), 1.0)

    def test_single_point_trivially_ok(self):
        assert verify_min_separation(line_deployment(1), 100.0)
