"""Tests for the MAC layer base machinery (repro.absmac.layer)."""

import numpy as np
import pytest

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage, MessageRegistry
from repro.geometry.points import PointSet
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters


class ScriptedMac(MacLayerBase):
    """Minimal concrete MAC: acks after a fixed number of slots."""

    ACK_AFTER = 5

    def __init__(self, node_id, registry, client=None):
        super().__init__(node_id, registry, client)
        self._slots_busy = 0

    def on_slot(self, slot):
        if not self.busy:
            return None
        self._slots_busy += 1
        if self._slots_busy >= self.ACK_AFTER:
            self._slots_busy = 0
            self._acknowledge(slot)
            return None
        return self.current

    def on_receive(self, slot, sender, payload):
        if isinstance(payload, BcastMessage) and self._sender_in_range(
            sender
        ):
            self._deliver(slot, payload)


class RecordingClient(MacClient):
    def __init__(self):
        self.started = False
        self.rcvs = []
        self.acks = []

    def on_mac_start(self, mac):
        self.started = True

    def on_rcv(self, slot, message):
        self.rcvs.append(message)

    def on_ack(self, slot, message):
        self.acks.append(message)


def make_pair(seed=0):
    params = SINRParameters()
    pts = PointSet(np.array([[0.0, 0.0], [5.0, 0.0]]))
    reg = MessageRegistry()
    clients = [RecordingClient(), RecordingClient()]
    macs = [ScriptedMac(i, reg, clients[i]) for i in range(2)]
    rt = Runtime(Channel(pts, params), macs, RuntimeConfig(seed=seed))
    return rt, macs, clients


class TestBusyDiscipline:
    def test_busy_toggles_around_ack(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        assert macs[0].busy
        rt.run(ScriptedMac.ACK_AFTER + 1)
        assert not macs[0].busy

    def test_second_bcast_while_busy_raises(self):
        rt, macs, _ = make_pair()
        macs[0].bcast()
        with pytest.raises(RuntimeError):
            macs[0].bcast()

    def test_bcast_wakes_node(self):
        rt, macs, clients = make_pair()
        assert not macs[0].awake
        macs[0].bcast()
        assert macs[0].awake
        assert clients[0].started

    def test_client_on_ack_called_once(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        rt.run(3 * ScriptedMac.ACK_AFTER)
        assert len(clients[0].acks) == 1


class TestAbortSemantics:
    def test_abort_idempotent_when_idle(self):
        rt, macs, _ = make_pair()
        macs[0].abort()  # no-op, must not raise
        assert not macs[0].busy

    def test_abort_suppresses_ack(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        rt.run(2)
        macs[0].abort()
        rt.run(3 * ScriptedMac.ACK_AFTER)
        assert clients[0].acks == []
        assert rt.trace.count("abort") == 1

    def test_rebroadcast_after_abort_allowed(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        macs[0].abort()
        second = macs[0].bcast()
        rt.run(ScriptedMac.ACK_AFTER + 1)
        assert clients[0].acks == [second]


class TestDeliveryDiscipline:
    def test_duplicate_delivery_suppressed(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        rt.run(ScriptedMac.ACK_AFTER + 1)
        # The message was transmitted several slots; delivered once.
        assert len(clients[1].rcvs) == 1

    def test_own_broadcast_never_delivered_to_self(self):
        rt, macs, clients = make_pair()
        macs[0].bcast()
        rt.run(ScriptedMac.ACK_AFTER + 1)
        assert clients[0].rcvs == []

    def test_trace_event_order_bcast_rcv_ack(self):
        rt, macs, _ = make_pair()
        macs[0].bcast()
        rt.run(ScriptedMac.ACK_AFTER + 1)
        kinds = [
            e.kind
            for e in rt.trace
            if e.kind in ("bcast", "rcv", "ack")
        ]
        assert kinds[0] == "bcast"
        assert kinds.index("rcv") < kinds.index("ack")

    def test_distinct_messages_each_delivered(self):
        rt, macs, clients = make_pair()
        macs[0].bcast(payload="a")
        rt.run(ScriptedMac.ACK_AFTER + 1)
        macs[0].bcast(payload="b")
        rt.run(ScriptedMac.ACK_AFTER + 1)
        assert [m.payload for m in clients[1].rcvs] == ["a", "b"]
