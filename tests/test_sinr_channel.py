"""Unit tests for repro.sinr.channel."""

import numpy as np
import pytest

from repro.geometry.points import PointSet
from repro.sinr.channel import Channel, JammingAdversary
from repro.sinr.params import SINRParameters


@pytest.fixture
def params():
    return SINRParameters(power=1.0, alpha=3.0, beta=1.5, noise=1e-4)


@pytest.fixture
def triangle(params):
    return PointSet(np.array([[0.0, 0.0], [5.0, 0.0], [2.5, 4.0]]))


class TestChannel:
    def test_lone_transmission_delivered(self, triangle, params):
        ch = Channel(triangle, params)
        out = ch.resolve_slot({0: "hello"})
        assert out.receptions == {1: (0, "hello"), 2: (0, "hello")}
        assert out.transmitters == (0,)

    def test_empty_slot(self, triangle, params):
        ch = Channel(triangle, params)
        out = ch.resolve_slot({})
        assert out.receptions == {}
        assert out.transmitters == ()

    def test_slot_counter_advances(self, triangle, params):
        ch = Channel(triangle, params)
        ch.resolve_slot({})
        ch.resolve_slot({0: "x"})
        assert ch.slots_resolved == 2

    def test_unknown_node_rejected(self, triangle, params):
        ch = Channel(triangle, params)
        with pytest.raises(ValueError, match="unknown node"):
            ch.resolve_slot({7: "x"})

    def test_stats_accumulate(self, triangle, params):
        ch = Channel(triangle, params)
        ch.resolve_slot({0: "x"})
        assert ch.total_transmissions == 1
        assert ch.total_receptions == 2
        ch.reset_stats()
        assert ch.total_transmissions == 0
        assert ch.slots_resolved == 1  # slot counter preserved

    def test_link_sinr_probe_does_not_advance(self, triangle, params):
        ch = Channel(triangle, params)
        sinr = ch.link_sinr(0, 1, transmitters=[0])
        assert sinr > params.beta
        assert ch.slots_resolved == 0

    def test_payloads_routed_correctly(self, params):
        # Two well-separated transmitters each reach their own neighbor.
        pts = PointSet(
            np.array([[0.0, 0.0], [3.0, 0.0], [500.0, 0.0], [503.0, 0.0]])
        )
        ch = Channel(pts, params)
        out = ch.resolve_slot({0: "west", 2: "east"})
        assert out.receptions[1] == (0, "west")
        assert out.receptions[3] == (2, "east")


class TestJammingAdversary:
    def test_jam_slots_erase_everything(self, triangle, params):
        adversary = JammingAdversary(jam_slots={0})
        ch = Channel(triangle, params, adversary=adversary)
        out = ch.resolve_slot({0: "x"})
        assert out.receptions == {}
        assert adversary.erased_count == 2
        # Next slot is clean.
        out2 = ch.resolve_slot({0: "x"})
        assert len(out2.receptions) == 2

    def test_drop_probability_one_erases_all(self, triangle, params):
        adversary = JammingAdversary(drop_probability=1.0)
        ch = Channel(triangle, params, adversary=adversary)
        out = ch.resolve_slot({0: "x"})
        assert out.receptions == {}

    def test_drop_probability_zero_is_transparent(self, triangle, params):
        adversary = JammingAdversary(drop_probability=0.0)
        ch = Channel(triangle, params, adversary=adversary)
        out = ch.resolve_slot({0: "x"})
        assert len(out.receptions) == 2

    def test_partial_drops_are_statistical(self, triangle, params):
        adversary = JammingAdversary(
            drop_probability=0.5, rng=np.random.default_rng(0)
        )
        ch = Channel(triangle, params, adversary=adversary)
        received = 0
        for _ in range(200):
            received += len(ch.resolve_slot({0: "x"}).receptions)
        # 400 chances at 50%: expect ~200, allow generous slack.
        assert 140 < received < 260

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            JammingAdversary(drop_probability=1.5)
