"""repro.api — the stable public surface of the reproduction.

Everything a downstream user needs to describe, execute, and serve
experiment sweeps, in one import, with one compatibility promise: names
exported here follow the documented semantics in
``docs/architecture.md`` (``scripts/check_docs.py`` enforces that every
name in ``__all__`` appears there), and changes to them go through a
deprecation cycle like the ``run_trials`` legacy-kwarg shim.

The vocabulary is deliberately small — plans in, results out:

* describe: :class:`TrialPlan` (+ :class:`DeploymentSpec`,
  :class:`AdversarySpec`, :func:`seeded_plans`,
  :func:`spawn_trial_seeds`) under physics
  :class:`SINRParameters` (+ :class:`ChannelModel`,
  :class:`SparseResolution`);
* execute: :func:`run_trials` under an :class:`ExecutionPolicy`;
* serve: :class:`SimulationService` embedded, or
  :func:`start_service` + :class:`ServiceClient` over TCP — the same
  plans, the same policy object, bit-identical results.

Deeper layers (:mod:`repro.core` protocol internals,
:mod:`repro.simulation` runtime, :mod:`repro.vectorized` executors)
remain importable but are *engine* surface, not API surface.
"""

from __future__ import annotations

from repro.experiments.engine import run_trials
from repro.experiments.plans import (
    AdversarySpec,
    DeploymentSpec,
    TrialPlan,
    TrialResult,
    seeded_plans,
)
from repro.experiments.policy import ExecutionPolicy
from repro.service.client import ServiceClient
from repro.service.server import (
    ServiceHandle,
    SimulationService,
    start_service,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import ChannelModel, SINRParameters, SparseResolution

__all__ = [
    "AdversarySpec",
    "ChannelModel",
    "DeploymentSpec",
    "ExecutionPolicy",
    "SINRParameters",
    "ServiceClient",
    "ServiceHandle",
    "SimulationService",
    "SparseResolution",
    "TrialPlan",
    "TrialResult",
    "run_trials",
    "seeded_plans",
    "spawn_trial_seeds",
    "start_service",
]
