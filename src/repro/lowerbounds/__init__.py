"""Lower-bound constructions and experiments.

Two adversarial geometries from the paper:

* the **two parallel lines** network of Theorem 6.1 / Figure 1, which
  shows that *no* implementation — even a centrally scheduled one with
  arbitrary power control — achieves progress faster than Δ in
  G_{1-ε}, and
* the **two balls** network of Theorem 8.1, on which the classic Decay
  strategy needs Ω(Δ·log(1/ε)) slots for approximate progress while
  Algorithm 9.1 needs polylog.
"""

from repro.lowerbounds.constructions import (
    ProgressLowerBoundNetwork,
    DecayLowerBoundNetwork,
)
from repro.lowerbounds.experiments import (
    optimal_schedule_progress,
    power_controlled_progress,
    measure_decay_progress,
    measure_approx_progress_on,
)

__all__ = [
    "ProgressLowerBoundNetwork",
    "DecayLowerBoundNetwork",
    "optimal_schedule_progress",
    "power_controlled_progress",
    "measure_decay_progress",
    "measure_approx_progress_on",
]
