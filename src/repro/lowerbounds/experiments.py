"""Executable lower-bound experiments.

Each function runs a protocol (or an idealized scheduler) on one of the
adversarial geometries and returns the measured progress latencies, so
the benchmarks and tests can compare them against the predicted
Ω-bounds.
"""

from __future__ import annotations

from repro.core.approx_progress import (
    ApproxProgressConfig,
    ApproxProgressMacLayer,
    EpochSchedule,
)
from repro.core.decay import DecayConfig, DecayMacLayer
from repro.core.events import BcastMessage, MessageRegistry
from repro.lowerbounds.constructions import (
    DecayLowerBoundNetwork,
    ProgressLowerBoundNetwork,
)
from repro.simulation.runtime import Runtime, RuntimeConfig

__all__ = [
    "optimal_schedule_progress",
    "power_controlled_progress",
    "measure_decay_progress",
    "measure_approx_progress_on",
]


def optimal_schedule_progress(network: ProgressLowerBoundNetwork) -> dict:
    """Theorem 6.1's centralized adversary argument, executed.

    An omniscient scheduler serves the Δ broadcasting V-nodes one per
    slot (the best possible, since the geometry blocks any two
    concurrent cross links).  Returns the per-U-node progress slots and
    their maximum, which equals Δ — the lower bound — and verifies that
    scheduling two pairs at once yields zero receptions.

    The concurrency probe needs two V-nodes; on a degenerate Δ < 2
    network it is skipped, flagged by ``concurrency_probed=False`` with
    ``concurrent_receptions=None`` (it used to index nodes 0 and 1
    unconditionally, a ``KeyError`` waiting for the first Δ=1 input).
    """
    channel = network.channel()
    registry = MessageRegistry()
    messages = {
        v: registry.mint(v, payload=f"lb-{v}") for v in network.v_nodes
    }
    progress_slot: dict[int, int] = {}
    # Optimal: round-robin, one V-node per slot.
    for slot, v in enumerate(network.v_nodes):
        outcome = channel.resolve_slot({v: messages[v]})
        for listener, (sender, payload) in outcome.receptions.items():
            if listener in network.u_nodes and listener not in progress_slot:
                if network.graph.has_edge(payload.origin, listener):
                    progress_slot[listener] = slot + 1  # 1-based latency
    # Sanity: concurrent cross transmissions deliver nothing to U —
    # probed with the first two V-nodes (not hard-coded ids).
    if len(network.v_nodes) >= 2:
        first, second = network.v_nodes[:2]
        pair = channel.resolve_slot(
            {first: messages[first], second: messages[second]}
        )
        concurrent = sum(1 for u in pair.receptions if u in network.u_nodes)
        probed = True
    else:
        concurrent = None
        probed = False
    return {
        "per_node_progress": progress_slot,
        "max_progress": max(progress_slot.values()) if progress_slot else None,
        "served_all": len(progress_slot) == network.delta,
        "concurrent_receptions": concurrent,
        "concurrency_probed": probed,
    }


def power_controlled_progress(
    network: ProgressLowerBoundNetwork,
    concurrency: int = 4,
    trials: int = 200,
    power_spread: float = 100.0,
    seed: int = 0,
) -> dict:
    """Theorem 6.1's strongest form: power control does not help.

    The theorem allows the central scheduler to pick an *arbitrary
    power assignment*.  This experiment schedules ``concurrency``
    simultaneous cross pairs with random per-sender powers in
    ``[P, power_spread·P]`` over many trials and counts how many
    U-nodes ever decode their partner in one slot.  The geometry makes
    boosting self-defeating: every V-node is nearly equidistant from
    every U-node, so raising one sender's power raises the interference
    at all other receivers by the same factor.  At most one pair per
    slot succeeds, so f_prog >= Δ survives power control.
    """
    import numpy as np

    from repro.sinr.physics import successful_receptions

    if concurrency < 2:
        raise ValueError("concurrency must be >= 2 to probe blocking")
    if concurrency > network.delta:
        raise ValueError("concurrency cannot exceed delta")
    rng = np.random.default_rng(seed)
    channel = network.channel()
    distances = channel.distances
    max_successes = 0
    total_successes = 0
    for _ in range(trials):
        senders = rng.choice(
            network.delta, size=concurrency, replace=False
        ).astype(np.intp)
        powers = network.params.power * (
            1.0 + rng.random(concurrency) * (power_spread - 1.0)
        )
        decoded = successful_receptions(
            network.params, distances, senders, tx_powers=powers
        )
        cross = sum(
            1
            for listener, sender in decoded.items()
            if listener in network.u_nodes
            and listener == network.partner(int(sender))
        )
        max_successes = max(max_successes, cross)
        total_successes += cross
    return {
        "trials": trials,
        "concurrency": concurrency,
        "max_cross_successes_per_slot": max_successes,
        "mean_cross_successes_per_slot": total_successes / trials,
        "implied_fprog_lower_bound": network.delta
        / max(max_successes, 1),
    }


def _first_b1_progress_slot(runtime: Runtime, network) -> int | None:
    """Slot of the first physical bcast-message reception inside B1."""
    for event in runtime.trace:
        if event.kind != "receive" or event.node not in network.b1_nodes:
            continue
        _sender, payload = event.data
        if isinstance(payload, BcastMessage) and network.graph.has_edge(
            payload.origin, event.node
        ):
            return event.slot
    return None


def measure_decay_progress(
    network: DecayLowerBoundNetwork,
    eps: float = 0.1,
    max_slots: int = 400_000,
    seed: int = 0,
    vectorized: bool = True,
) -> dict:
    """Run Decay with everyone broadcasting; time B1's first progress.

    The Theorem 8.1 scenario: both balls broadcast under Decay, and the
    measured quantity is how long until one B1 node receives the other's
    message.  Expected to scale linearly with Δ (· log(1/ε)).

    ``vectorized`` (default) advances the homogeneous Decay population
    on the columnar :class:`~repro.vectorized.VectorRuntime` —
    decode-for-decode identical to the object runtime (same seeds, same
    trace, same progress slot; the equivalence tests pin it), so the
    flag only changes wall-clock, which matters because this experiment
    is rerun for every (Δ, seed) point of the Theorem 8.1 sweep.
    """
    n = 2 + network.delta
    config = DecayConfig(
        contention_bound=max(float(n), 2.0), eps_ack=eps, ack_factor=8.0
    )
    if vectorized:
        from repro.vectorized import DecayKernel, VectorRuntime

        runtime = VectorRuntime(
            [network.channel()],
            DecayKernel([config], n),
            seeds=[seed],
            max_slots=max_slots,
        )
        for node in range(n):
            runtime.bcast(0, node, payload=f"decay-{node}")
    else:
        registry = MessageRegistry()
        macs = [DecayMacLayer(i, registry, config) for i in range(n)]
        runtime = Runtime(
            network.channel(),
            macs,
            RuntimeConfig(seed=seed, max_slots=max_slots),
        )
        for mac in macs:
            mac.bcast(payload=f"decay-{mac.node_id}")

    def b1_done(rt) -> bool:
        return _first_b1_progress_slot(rt, network) is not None

    try:
        runtime.run_until(b1_done, check_every=64)
        slot = _first_b1_progress_slot(runtime, network)
    except RuntimeError:
        slot = None  # budget exhausted: worse than max_slots
    return {
        "progress_slot": slot,
        "slots_simulated": runtime.slot,
        "completed": slot is not None,
    }


def measure_approx_progress_on(
    network: DecayLowerBoundNetwork,
    eps: float = 0.1,
    max_slots: int = 400_000,
    seed: int = 0,
    config: ApproxProgressConfig | None = None,
) -> dict:
    """Run Algorithm 9.1 on the same geometry; time B1's first progress.

    Expected to stay polylogarithmic in Δ — the upper-bound half of the
    Theorem 8.1 separation.
    """
    from repro.sinr.graphs import link_length_ratio

    n = 2 + network.delta
    registry = MessageRegistry()
    if config is None:
        lam = max(link_length_ratio(network.graph), 2.0)
        config = ApproxProgressConfig(
            lambda_bound=lam,
            eps_approg=eps,
            alpha=network.params.alpha,
        )
    schedule = EpochSchedule(config)
    macs = [
        ApproxProgressMacLayer(i, registry, schedule) for i in range(n)
    ]
    runtime = Runtime(
        network.channel(),
        macs,
        RuntimeConfig(seed=seed, max_slots=max_slots),
    )
    for mac in macs:
        mac.bcast(payload=f"approg-{mac.node_id}")

    def b1_done(rt: Runtime) -> bool:
        return _first_b1_progress_slot(rt, network) is not None

    try:
        runtime.run_until(b1_done, check_every=64)
        slot = _first_b1_progress_slot(runtime, network)
    except RuntimeError:
        slot = None
    return {
        "progress_slot": slot,
        "slots_simulated": runtime.slot,
        "completed": slot is not None,
        "epoch_slots": schedule.epoch_slots,
    }
