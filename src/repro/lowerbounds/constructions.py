"""The paper's two adversarial network geometries.

Both are packaged as small classes bundling the point set, the SINR
parameters prescribed by the proof, and the induced graphs, so tests and
benchmarks can assert the structural properties the proofs rely on
(matching degree, blocked concurrent links, interference ratios) before
measuring behaviour on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.geometry.deployment import two_balls, two_parallel_lines
from repro.geometry.points import PointSet
from repro.sinr.channel import Channel
from repro.sinr.graphs import (
    approx_connectivity_graph,
    strong_connectivity_graph,
)
from repro.sinr.params import SINRParameters

__all__ = ["ProgressLowerBoundNetwork", "DecayLowerBoundNetwork"]


@dataclass
class ProgressLowerBoundNetwork:
    """Theorem 6.1 / Figure 1: two parallel lines of Δ nodes each.

    Δ nodes V = {0..Δ-1} sit on a line with unit spacing; Δ nodes
    U = {Δ..2Δ-1} sit on a parallel line at distance R_{1-ε} = 10·Δ.
    In G_{1-ε}:

    * every node has degree exactly Δ (its own line forms a clique of
      Δ-1 plus one cross partner),
    * node ``i`` of V has exactly one U-neighbor, its partner ``Δ+i``,
    * a cross transmission (v_i → u_i) succeeds iff **no other node**
      of V ∪ U transmits in the same slot — any second transmitter sits
      within a whisker of the same distance to u_i and pushes the SINR
      under β.

    Hence at most one U-node can make progress per slot, and with all of
    V broadcasting, some U-node waits ≥ Δ slots: ``f_prog ≥ Δ``, even
    for an optimal centralized scheduler (the experiment in
    :func:`repro.lowerbounds.experiments.optimal_schedule_progress`
    realizes exactly that scheduler).

    Note the cross links have length exactly R_{1-ε} > R_{1-2ε}: they
    are absent from G̃ = G_{1-2ε}, so the *approximate* progress
    contract (Definition 7.1) never triggers on them — precisely the
    spec weakening that makes an efficient implementation possible.
    """

    delta: int
    base_params: SINRParameters = field(default_factory=SINRParameters)

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ValueError("delta must be >= 2")
        self.line_distance = 10.0 * self.delta
        self.points: PointSet = two_parallel_lines(
            self.delta, line_distance=self.line_distance, spacing=1.0
        )
        # The proof prescribes R_{1-eps} = 10*delta (so partners at
        # distance 10Δ are connected while diagonal pairs at distance
        # sqrt((10Δ)² + k²), k >= 1, are not).  Floating-point round-trips
        # through the power formula can land the radius a hair under the
        # partner distance, so we aim halfway into the gap between the
        # partner distance and the nearest diagonal distance.
        nearest_diagonal = (self.line_distance**2 + 1.0) ** 0.5
        self.params = self.base_params.with_strong_range(
            0.5 * (self.line_distance + nearest_diagonal)
        )
        self.graph: nx.Graph = strong_connectivity_graph(
            self.points, self.params
        )
        self.approx_graph: nx.Graph = approx_connectivity_graph(
            self.points, self.params
        )

    @property
    def v_nodes(self) -> list[int]:
        """The broadcasting line V."""
        return list(range(self.delta))

    @property
    def u_nodes(self) -> list[int]:
        """The receiving line U."""
        return list(range(self.delta, 2 * self.delta))

    def partner(self, v: int) -> int:
        """The unique cross G_{1-ε}-neighbor of a V-node."""
        if v not in self.v_nodes:
            raise ValueError(f"{v} is not a V-node")
        return v + self.delta

    def channel(self) -> Channel:
        """A fresh channel over this geometry."""
        return Channel(self.points, self.params)

    def verify_structure(self) -> dict:
        """Check the structural claims of the proof; return a summary.

        Raises ``AssertionError`` on violation — used by tests and run
        defensively by the benchmark before measuring.
        """
        ch = self.channel()
        degrees = dict(self.graph.degree)
        for node in self.graph.nodes:
            assert degrees[node] == self.delta, (
                f"node {node} has degree {degrees[node]}, expected "
                f"{self.delta}"
            )
        for v in self.v_nodes:
            cross = [u for u in self.graph.neighbors(v) if u in self.u_nodes]
            assert cross == [self.partner(v)], (
                f"V-node {v} crosses to {cross}, expected "
                f"[{self.partner(v)}]"
            )
        # Lone cross transmission decodes; any concurrent one blocks.
        v0, u0 = 0, self.partner(0)
        assert ch.link_sinr(v0, u0, [v0]) >= self.params.beta
        blocked = ch.link_sinr(v0, u0, [v0, 1])
        assert blocked < self.params.beta, (
            f"concurrent transmitter did not block: SINR={blocked:.3f}"
        )
        # Cross links are absent from the approximation graph.
        for v in self.v_nodes:
            assert not self.approx_graph.has_edge(v, self.partner(v))
        return {
            "delta": self.delta,
            "degree": self.delta,
            "cross_links_in_G": self.delta,
            "cross_links_in_Gtilde": 0,
        }


@dataclass
class DecayLowerBoundNetwork:
    """Theorem 8.1: a sparse ball crushed by a dense ball's interference.

    Ball B1 (2 nodes) and ball B2 (Δ nodes) have radius R/4 and centers
    at distance R_2 = 2R: out of communication range of each other, but
    well inside interference range.  All nodes want to broadcast.  Under
    Decay, whenever the probability sweep is high enough for B1's two
    nodes to transmit, B2's Δ nodes transmit in droves and bury the
    SINR; progress inside B1 therefore costs Ω(Δ·log(1/ε)) slots.
    Algorithm 9.1 instead sparsifies B2 through its MIS cascade and
    thins transmissions by Q, achieving polylog approximate progress —
    the gap measured by ``bench_thm81_decay_approg.py``.

    ``center_factor`` and ``two_sided`` control a *hardened* variant
    used by the benchmark: the paper places one Δ-ball at distance 2R,
    which crushes B1 only for asymptotically large Δ; placing the dense
    population as two balls at ±1.5R (still strictly out of
    communication range of B1, so the graph structure of the proof is
    unchanged) brings the crushing regime down to laptop-scale Δ.  The
    interference mechanism — B2's aggregate far field tracking B1's own
    transmission probability — is identical (DESIGN.md §3).
    """

    delta: int
    base_params: SINRParameters = field(default_factory=SINRParameters)
    seed: int = 0
    center_factor: float = 2.0
    two_sided: bool = False

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ValueError("delta must be >= 2")
        if self.center_factor <= 1.25:
            raise ValueError(
                "center_factor must exceed 1.25 to keep the balls "
                "out of communication range"
            )
        # Scale the range so B2 fits delta nodes at unit separation:
        # a ball of radius R/4 packs ~ (R/4)^2 / (1/2)^2 unit-separated
        # nodes; R = 16*sqrt(delta) gives comfortable headroom.
        target_range = max(16.0 * self.delta**0.5, 40.0)
        self.params = self.base_params.with_range(target_range)
        r = self.params.transmission_range
        radius = r / 4.0
        center = self.center_factor * r
        if self.two_sided:
            halves = (self.delta // 2, self.delta - self.delta // 2)
            dense_parts = [
                two_balls(
                    n_sparse=1,  # placeholder replaced by the B1 pair
                    n_dense=count,
                    ball_radius=radius,
                    center_distance=side * center,
                    min_separation=1.0,
                    seed=self.seed + idx,
                ).coords[1:]
                for idx, (side, count) in enumerate(
                    zip((1.0, -1.0), halves)
                )
            ]
            dense = np.vstack(dense_parts)
        else:
            dense = two_balls(
                n_sparse=1,
                n_dense=self.delta,
                ball_radius=radius,
                center_distance=center,
                min_separation=1.0,
                seed=self.seed,
            ).coords[1:]
        # B1's two nodes sit at the extremes of their R/4-ball (the
        # proof's worst case): separation R/2, so the link's SINR budget
        # is thin enough for B2's aggregate far-field interference to
        # bury it once delta is large.
        b1 = np.array([[-radius, 0.0], [radius, 0.0]])
        self.points = PointSet(
            np.vstack([b1, dense]),
            name=f"thm81(delta={self.delta})",
        )
        self.graph: nx.Graph = strong_connectivity_graph(
            self.points, self.params
        )
        self.approx_graph: nx.Graph = approx_connectivity_graph(
            self.points, self.params
        )

    @property
    def b1_nodes(self) -> list[int]:
        """The two-node sparse ball."""
        return [0, 1]

    @property
    def b2_nodes(self) -> list[int]:
        """The Δ-node dense ball."""
        return list(range(2, 2 + self.delta))

    def channel(self) -> Channel:
        """A fresh channel over this geometry."""
        return Channel(self.points, self.params)

    def verify_structure(self) -> dict:
        """Check the proof's structural claims; return a summary."""
        # B1's two nodes are strong neighbors of each other...
        assert self.graph.has_edge(0, 1), "B1 nodes must be G-neighbors"
        assert self.approx_graph.has_edge(0, 1), (
            "B1 nodes must be G-tilde neighbors"
        )
        # ...and have no edges into B2 (balls are out of range).
        for b1 in self.b1_nodes:
            crossing = [
                u for u in self.graph.neighbors(b1) if u in self.b2_nodes
            ]
            assert not crossing, f"B1 node {b1} reaches into B2: {crossing}"
        # With all of B2 transmitting, the B1 link is buried for large
        # delta (the interference mechanism of the proof).
        ch = self.channel()
        lone = ch.link_sinr(0, 1, [0])
        assert lone >= self.params.beta, "lone B1 transmission must decode"
        return {
            "delta": self.delta,
            "b1_link_lone_sinr": lone,
            "b1_link_all_b2_sinr": ch.link_sinr(0, 1, [0] + self.b2_nodes),
        }
