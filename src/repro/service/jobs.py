"""Jobs and the job queue: the service's unit of work and its ledger.

A *job* is one submission — a batch of
:class:`~repro.experiments.plans.TrialPlan`\\ s plus one
:class:`~repro.experiments.policy.ExecutionPolicy`.  The
:class:`JobQueue` assigns ids, tracks lifecycle state
(``QUEUED → RUNNING → DONE`` / ``CANCELLED`` / ``FAILED``), buffers
out-of-order shard results back into plan order, and keeps a bounded
LRU *result cache* keyed by the plan tuple itself: the engine's
bit-identity contract says a plan's seed is its only randomness, so a
duplicate submission (same plans, any policy) is served straight from
the cache without touching the worker pool — the service-level
analogue of the in-process
:class:`~repro.experiments.cache.ArtifactCache`, one level up (whole
results instead of deployment artifacts, plan keys instead of
coordinate-byte keys, the same frozen-dataclass-as-key discipline).

Event streaming
---------------
Each job owns a thread-safe event queue.  The scheduler's drain thread
feeds it; :meth:`Job.stream` (usually via
``SimulationService.stream``) yields the events in order:

``("result", index, TrialResult)``
    One finished trial, emitted in plan order (out-of-order shard
    completions are buffered until the prefix is contiguous).
``("progress", completed, total)``
    After every result — per-trial progress for long sweeps.
``("done", None)`` / ``("cancelled", None)`` / ``("failed", message)``
    Terminal states; exactly one terminal event ends every stream.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.policy import ExecutionPolicy

__all__ = ["Job", "JobQueue", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a job; terminal states are DONE/CANCELLED/FAILED."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.CANCELLED, JobState.FAILED)


@dataclass
class Job:
    """One submission: plans + policy + mutable progress state.

    All mutation goes through the owning :class:`JobQueue`/scheduler
    under their locks; consumers read the event stream, not the fields.
    """

    job_id: int
    plans: tuple[TrialPlan, ...]
    policy: ExecutionPolicy
    state: JobState = JobState.QUEUED
    error: str | None = None
    cached: bool = False
    completed: int = 0
    results: list[TrialResult | None] = field(default_factory=list)
    events: "queue.Queue[tuple]" = field(default_factory=queue.Queue)
    # Plan-order emission: results beyond the contiguous prefix wait in
    # _pending until the gap fills (shards complete in any order).
    _next_emit: int = 0
    _pending: dict[int, TrialResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.plans)

    @property
    def total(self) -> int:
        return len(self.plans)

    def record(self, index: int, result: TrialResult) -> None:
        """Store one trial's result and emit every newly contiguous one.

        Idempotent under shard retries: a requeued shard recomputes
        results the crashed worker may already have streamed, and the
        engine's determinism makes the replacement bit-identical — only
        the first arrival counts or emits.
        """
        if not 0 <= index < self.total:
            raise IndexError(f"result index {index} outside job of {self.total}")
        if self.results[index] is not None:
            return
        self.results[index] = result
        self.completed += 1
        self._pending[index] = result
        while self._next_emit in self._pending:
            emit = self._next_emit
            self.events.put(("result", emit, self._pending.pop(emit)))
            self.events.put(("progress", self.completed, self.total))
            self._next_emit += 1

    def finish(self, state: JobState, error: str | None = None) -> None:
        """Move to a terminal state and close the event stream."""
        if self.state.terminal:
            return
        self.state = state
        self.error = error
        if state is JobState.DONE:
            self.events.put(("done", None))
        elif state is JobState.CANCELLED:
            self.events.put(("cancelled", None))
        else:
            self.events.put(("failed", error or "job failed"))

    def stream(self, timeout: float | None = None) -> Iterator[tuple]:
        """Yield events until the terminal one (inclusive).

        One consumer per job — events are consumed, not broadcast.
        ``timeout`` bounds the wait for *each* event; ``queue.Empty``
        propagates on expiry so a stuck service cannot hang a client
        thread forever.
        """
        while True:
            event = self.events.get(timeout=timeout)
            yield event
            if event[0] in ("done", "cancelled", "failed"):
                return

    def wait(self, timeout: float | None = None) -> list[TrialResult]:
        """Drain the stream and return results in plan order.

        Raises ``RuntimeError`` when the job failed or was cancelled —
        a silent partial result list would masquerade as a short sweep.
        """
        for event in self.stream(timeout=timeout):
            if event[0] == "failed":
                raise RuntimeError(f"job {self.job_id} failed: {event[1]}")
            if event[0] == "cancelled":
                raise RuntimeError(f"job {self.job_id} was cancelled")
        return list(self.results)  # type: ignore[arg-type]


class JobQueue:
    """Thread-safe job ledger with a duplicate-submission result cache."""

    def __init__(self, cache_size: int = 128) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._jobs: dict[int, Job] = {}
        self._result_cache: OrderedDict[tuple, tuple[TrialResult, ...]] = (
            OrderedDict()
        )
        self.cache_hits = 0
        self.submitted = 0

    def submit(
        self,
        plans,
        policy: ExecutionPolicy | None = None,
    ) -> Job:
        """Register a submission; serve it from cache when possible.

        A cache-hit job comes back already ``DONE`` with its full event
        stream preloaded (results + progress + done), so consumers are
        oblivious to whether the pool ran: ``job.cached`` records it.
        """
        plan_tuple = tuple(plans)
        if not plan_tuple:
            raise ValueError("a job needs at least one plan")
        for plan in plan_tuple:
            if not isinstance(plan, TrialPlan):
                raise TypeError(f"not a TrialPlan: {plan!r}")
        policy = policy or ExecutionPolicy()
        with self._lock:
            job = Job(
                job_id=next(self._ids), plans=plan_tuple, policy=policy
            )
            self._jobs[job.job_id] = job
            self.submitted += 1
            cached = self._result_cache.get(plan_tuple)
            if cached is not None:
                self._result_cache.move_to_end(plan_tuple)
                self.cache_hits += 1
                job.cached = True
                for index, result in enumerate(cached):
                    job.record(index, result)
                job.finish(JobState.DONE)
            return job

    def get(self, job_id: int) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id}") from None

    def publish(self, job: Job) -> None:
        """Install a completed job's results in the duplicate cache."""
        if job.state is not JobState.DONE or self.cache_size == 0:
            return
        with self._lock:
            self._result_cache[job.plans] = tuple(job.results)  # type: ignore[arg-type]
            self._result_cache.move_to_end(job.plans)
            while len(self._result_cache) > self.cache_size:
                self._result_cache.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            states = [job.state for job in self._jobs.values()]
            return {
                "submitted": self.submitted,
                "cache_hits": self.cache_hits,
                "cache_entries": len(self._result_cache),
                "running": sum(s is JobState.RUNNING for s in states),
                "queued": sum(s is JobState.QUEUED for s in states),
                "done": sum(s is JobState.DONE for s in states),
                "cancelled": sum(s is JobState.CANCELLED for s in states),
                "failed": sum(s is JobState.FAILED for s in states),
            }
