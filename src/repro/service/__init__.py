"""Simulation-as-a-service: the job server over the experiment engine.

The service turns the library's ``run_trials`` into an operable system:
jobs (plan batches + one
:class:`~repro.experiments.policy.ExecutionPolicy`) are queued, sharded
across a long-lived worker pool, streamed back per-trial in plan order,
de-duplicated against a result cache, and survivable across worker
crashes.  ``run_trials(plans, ExecutionPolicy(workers=N))`` runs
through the same scheduler, so library and service execute identically
by construction.

Module map:

:mod:`repro.service.jobs`
    ``Job`` / ``JobQueue`` / ``JobState`` — lifecycle, plan-order event
    streaming, duplicate-submission result cache.
:mod:`repro.service.scheduler`
    ``Scheduler`` / ``run_sharded`` — contiguous sharding, worker pool,
    crash watchdog + shard requeue.
:mod:`repro.service.worker`
    The pool process entry point (persistent per-worker artifact
    cache, deterministic fault injection for tests).
:mod:`repro.service.wire`
    The closed JSON wire codec for plans / policies / results.
:mod:`repro.service.server`
    ``SimulationService`` (embeddable façade), ``serve`` /
    ``start_service`` / ``ServiceHandle`` (asyncio TCP front).
:mod:`repro.service.client`
    ``ServiceClient`` — blocking JSON-lines client, same vocabulary as
    the façade.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.scheduler import Scheduler, Shard, run_sharded, shard_plans
from repro.service.server import (
    ServiceHandle,
    SimulationService,
    serve,
    start_service,
)

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "Scheduler",
    "ServiceClient",
    "ServiceHandle",
    "Shard",
    "SimulationService",
    "run_sharded",
    "serve",
    "shard_plans",
    "start_service",
]
