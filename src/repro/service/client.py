"""The service client: blocking JSON-lines calls against a job server.

Deliberately dependency-free (a socket and the
:mod:`repro.service.wire` codec) so any process that can import
``repro`` can drive a server, and the protocol stays simple enough to
speak from ``nc`` when debugging.  Each operation opens its own
connection — streams hold a connection for the life of a job, and
per-op connections keep ``status``/``cancel`` usable while a submit
streams elsewhere.

The client's surface mirrors :class:`~repro.service.server.
SimulationService` on purpose: ``run`` ≈ ``submit``+``results``,
``submit_stream`` ≈ ``submit``+``stream``, and the policy argument is
the *same* :class:`~repro.experiments.policy.ExecutionPolicy` the
in-process API takes — choosing between library and service changes one
line, not the vocabulary.
"""

from __future__ import annotations

import socket
from typing import Iterator, Sequence

from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.policy import ExecutionPolicy
from repro.service import wire

__all__ = ["ServiceClient"]


class _Connection:
    """One socket + line-oriented JSON framing."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rwb")

    def send(self, message: dict) -> None:
        self.file.write(wire.dumps(message).encode() + b"\n")
        self.file.flush()

    def recv(self) -> dict:
        line = self.file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return wire.loads(line.decode())

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            self.sock.close()


def _decode_event(data: dict) -> tuple:
    kind = data["event"]
    if kind == "result":
        return ("result", data["index"], wire.result_from_wire(data["result"]))
    if kind == "progress":
        return ("progress", data["completed"], data["total"])
    if kind == "failed":
        return ("failed", data["error"])
    return (kind, None)


class ServiceClient:
    """Client for one server address; stateless between calls."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _call(self, request: dict) -> dict:
        conn = _Connection(self.host, self.port, self.timeout)
        try:
            conn.send(request)
            response = conn.recv()
        finally:
            conn.close()
        if not response.get("ok"):
            raise RuntimeError(f"service error: {response.get('error')}")
        return response

    def _submit_request(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None,
        stream: bool,
    ) -> dict:
        return {
            "op": "submit",
            "plans": [wire.plan_to_wire(plan) for plan in plans],
            "policy": None if policy is None else wire.policy_to_wire(policy),
            "stream": stream,
        }

    def submit_stream(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None = None,
    ) -> Iterator[tuple]:
        """Submit and yield events: an ack tuple ``("accepted", job_id,
        cached)`` first, then the job's event stream through its
        terminal event."""
        conn = _Connection(self.host, self.port, self.timeout)
        try:
            conn.send(self._submit_request(plans, policy, stream=True))
            response = conn.recv()
            if not response.get("ok"):
                raise RuntimeError(f"service error: {response.get('error')}")
            yield ("accepted", response["job_id"], response["cached"])
            while True:
                event = _decode_event(conn.recv())
                yield event
                if event[0] in ("done", "cancelled", "failed"):
                    return
        finally:
            conn.close()

    def run(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None = None,
    ) -> list[TrialResult]:
        """Submit, stream, and return results in plan order.

        The remote analogue of
        :func:`~repro.experiments.engine.run_trials` — bit-identical
        results by the engine's determinism contract.
        """
        plan_list = list(plans)
        results: list[TrialResult | None] = [None] * len(plan_list)
        job_id = None
        for event in self.submit_stream(plan_list, policy):
            if event[0] == "accepted":
                job_id = event[1]
            elif event[0] == "result":
                results[event[1]] = event[2]
            elif event[0] == "failed":
                raise RuntimeError(f"job {job_id} failed: {event[1]}")
            elif event[0] == "cancelled":
                raise RuntimeError(f"job {job_id} was cancelled")
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise RuntimeError(
                f"job {job_id} completed without results for {missing}"
            )
        return results  # type: ignore[return-value]

    def submit(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None = None,
    ) -> dict:
        """Fire-and-forget submit; poll with :meth:`status`."""
        response = self._call(
            self._submit_request(plans, policy, stream=False)
        )
        return {
            "job_id": response["job_id"],
            "cached": response["cached"],
            "total": response["total"],
        }

    def status(self, job_id: int) -> dict:
        response = self._call({"op": "status", "job_id": job_id})
        return {
            key: response[key]
            for key in (
                "job_id",
                "state",
                "completed",
                "total",
                "cached",
                "error",
            )
        }

    def cancel(self, job_id: int) -> bool:
        return bool(
            self._call({"op": "cancel", "job_id": job_id})["cancelled"]
        )

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]
