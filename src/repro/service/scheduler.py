"""The scheduler: contiguous-shard dispatch over a process pool.

This is the one parallel-execution path in the repository.  The job
server runs on it, and so does plain
``run_trials(plans, ExecutionPolicy(workers=N))`` — the library call is
a thin client (:func:`run_sharded`) of the very same scheduler, so the
four executors (sequential / batched object / columnar / native) are
reached identically from both entry points and the old ad-hoc
``ProcessPoolExecutor`` chunking in the engine is gone.

Sharding
--------
A job's plan list is cut into *contiguous* trial batches with the same
``np.linspace`` bounds the engine used for ``workers=N`` since PR 1.
Contiguity matters twice: plan builders order sweeps so neighbouring
plans share deployments (a shard reuses its worker's artifact cache the
way the in-process run reuses :data:`~repro.experiments.cache.GLOBAL_CACHE`
— same keys, one cache per worker process, persistent across shards
*and jobs*), and contiguous index ranges make plan-order streaming a
cheap prefix merge in :meth:`~repro.service.jobs.Job.record`.

Fault model
-----------
Workers are long-lived ``fork`` processes fed per-worker task queues
(the scheduler therefore always knows which shards a worker holds — a
shard can never vanish into a shared queue with no owner).  A drain
thread multiplexes one shared result queue; its poll timeout doubles as
the crash watchdog: a dead worker is respawned and its outstanding
shards are requeued (bounded by ``max_shard_retries``, then the job
fails).  Requeued shards recompute trials the dead worker may already
have streamed; :meth:`Job.record` is idempotent and the engine is
deterministic, so replays are invisible.  A shard that raises a Python
exception (rather than dying) fails its job immediately — deterministic
errors do not deserve retries.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.policy import ExecutionPolicy
from repro.service.jobs import Job, JobQueue, JobState

__all__ = ["Scheduler", "Shard", "run_sharded", "shard_plans"]


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of one job's plans, dispatched as a unit."""

    job_id: int
    shard_id: int
    start: int
    plans: tuple[TrialPlan, ...]
    policy: ExecutionPolicy

    @property
    def stop(self) -> int:
        return self.start + len(self.plans)


def shard_plans(
    plans: Sequence[TrialPlan],
    policy: ExecutionPolicy,
    job_id: int,
    workers: int,
    shards_per_worker: int = 4,
) -> list[Shard]:
    """Cut a plan list into contiguous shards.

    More shards than workers (``shards_per_worker`` ×) keeps the pool
    load-balanced when shard runtimes differ (a 200-node trial next to
    a 20-node one), without shrinking shards so far that per-dispatch
    overhead and cache-warming dominate.  Bounds come from the same
    ``np.linspace`` split the engine's ``workers=N`` path has always
    used, so a sharded run groups plans exactly like the old pool did.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total = len(plans)
    if total == 0:
        return []
    count = min(total, max(1, workers * shards_per_worker))
    bounds = np.linspace(0, total, count + 1).astype(int)
    shards = []
    for shard_id, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        if hi <= lo:
            continue
        shards.append(
            Shard(
                job_id=job_id,
                shard_id=shard_id,
                start=int(lo),
                plans=tuple(plans[lo:hi]),
                policy=policy,
            )
        )
    return shards


@dataclass
class _WorkerHandle:
    worker_id: int
    process: multiprocessing.process.BaseProcess
    task_q: "multiprocessing.queues.Queue"
    # (job_id, shard_id) -> (shard, attempts); dispatch adds, shard_done
    # removes, the watchdog requeues whatever a dead worker still held.
    outstanding: dict[tuple[int, int], tuple[Shard, int]] = field(
        default_factory=dict
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start cheap and inherits the parent's imported
    # modules; fall back to the platform default where fork is absent.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class Scheduler:
    """Shard dispatcher over a pool of long-lived worker processes."""

    def __init__(
        self,
        workers: int = 2,
        jobs: JobQueue | None = None,
        max_shard_retries: int = 2,
        shards_per_worker: int = 4,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.jobs = jobs if jobs is not None else JobQueue()
        self.max_shard_retries = max_shard_retries
        self.shards_per_worker = shards_per_worker
        self.poll_interval = poll_interval
        self._ctx = _pool_context()
        self._lock = threading.RLock()
        self._handles: dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._result_q: "multiprocessing.queues.Queue | None" = None
        self._drain: threading.Thread | None = None
        self._stopping = threading.Event()
        self._started = False
        # Observability counters (read by tests and service stats()).
        self.shards_dispatched = 0
        self.shards_requeued = 0
        self.workers_respawned = 0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "Scheduler":
        """Spawn the pool, then the drain thread.

        Processes are forked *before* any scheduler thread exists, so
        the children never inherit a lock held by a thread that does
        not survive the fork.
        """
        if self._started:
            return self
        self._result_q = self._ctx.Queue()
        for _ in range(self.workers):
            self._spawn_worker()
        self._stopping.clear()
        self._drain = threading.Thread(
            target=self._drain_loop, name="repro-service-drain", daemon=True
        )
        self._drain.start()
        self._started = True
        return self

    def _spawn_worker(self) -> _WorkerHandle:
        from repro.service.worker import worker_main

        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, task_q, self._result_q),
            name=f"repro-service-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, task_q=task_q
        )
        self._handles[worker_id] = handle
        return handle

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the pool; idempotent."""
        if not self._started:
            return
        self._stopping.set()
        if self._drain is not None:
            self._drain.join(timeout=timeout)
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            try:
                handle.task_q.put(("stop",))
            except (ValueError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
            handle.task_q.close()
        if self._result_q is not None:
            self._result_q.close()
            self._result_q = None
        self._started = False

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ---------------------------------------------------

    def submit(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None = None,
    ) -> Job:
        """Submit a job; returns immediately with a streaming handle."""
        if not self._started:
            raise RuntimeError("scheduler is not started")
        job = self.jobs.submit(plans, policy)
        if job.cached:
            return job
        with self._lock:
            job.state = JobState.RUNNING
            shards = shard_plans(
                job.plans,
                job.policy,
                job.job_id,
                self.workers,
                self.shards_per_worker,
            )
            for shard in shards:
                self._dispatch(shard, attempts=0)
        return job

    def cancel(self, job_id: int) -> bool:
        """Cancel a job: terminal event now, late results discarded.

        Shards already on worker queues still run to completion (a
        worker cannot be safely interrupted mid-trial), but the drain
        thread drops their results because the job is terminal.
        """
        job = self.jobs.get(job_id)
        with self._lock:
            if job.state.terminal:
                return False
            job.finish(JobState.CANCELLED)
            return True

    def stats(self) -> dict:
        with self._lock:
            outstanding = sum(
                len(handle.outstanding) for handle in self._handles.values()
            )
            return {
                **self.jobs.stats(),
                "workers": len(self._handles),
                "shards_dispatched": self.shards_dispatched,
                "shards_requeued": self.shards_requeued,
                "workers_respawned": self.workers_respawned,
                "shards_outstanding": outstanding,
            }

    # -- dispatch / drain ---------------------------------------------

    def _dispatch(self, shard: Shard, attempts: int) -> None:
        """Hand a shard to the least-loaded live worker (lock held)."""
        handle = min(
            self._handles.values(), key=lambda h: len(h.outstanding)
        )
        handle.outstanding[(shard.job_id, shard.shard_id)] = (shard, attempts)
        handle.task_q.put(("run", shard))
        self.shards_dispatched += 1

    def _drain_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                message = self._result_q.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                self._reap_dead_workers()
                continue
            except (ValueError, OSError):  # queue closed under us
                return
            with self._lock:
                self._handle_message(message)

    def _handle_message(self, message: tuple) -> None:
        kind = message[0]
        if kind == "result":
            _, _, job_id, index, result = message
            job = self.jobs.get(job_id)
            if not job.state.terminal:
                job.record(index, result)
        elif kind == "shard_done":
            _, worker_id, job_id, shard_id = message
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.outstanding.pop((job_id, shard_id), None)
            job = self.jobs.get(job_id)
            if not job.state.terminal and job.completed == job.total:
                job.finish(JobState.DONE)
                self.jobs.publish(job)
        elif kind == "shard_error":
            _, worker_id, job_id, shard_id, error = message
            handle = self._handles.get(worker_id)
            if handle is not None:
                handle.outstanding.pop((job_id, shard_id), None)
            job = self.jobs.get(job_id)
            if not job.state.terminal:
                job.finish(
                    JobState.FAILED,
                    f"shard {shard_id} raised:\n{error}",
                )

    def _reap_dead_workers(self) -> None:
        """Watchdog: respawn dead workers and requeue their shards."""
        with self._lock:
            dead = [
                handle
                for handle in self._handles.values()
                if not handle.process.is_alive()
            ]
            if not dead:
                return
            orphans: list[tuple[Shard, int]] = []
            for handle in dead:
                del self._handles[handle.worker_id]
                orphans.extend(handle.outstanding.values())
                handle.task_q.close()
            while len(self._handles) < self.workers:
                self._spawn_worker()
                self.workers_respawned += 1
            for shard, attempts in orphans:
                job = self.jobs.get(shard.job_id)
                if job.state.terminal:
                    continue
                if attempts + 1 > self.max_shard_retries:
                    job.finish(
                        JobState.FAILED,
                        f"shard {shard.shard_id} lost its worker "
                        f"{attempts + 1} times (max_shard_retries="
                        f"{self.max_shard_retries})",
                    )
                    continue
                self.shards_requeued += 1
                self._dispatch(shard, attempts=attempts + 1)


def run_sharded(
    plans: Sequence[TrialPlan],
    policy: ExecutionPolicy,
    timeout: float = 600.0,
) -> list[TrialResult]:
    """One plan batch through a transient pool — ``run_trials``'s
    ``workers > 1`` backend.

    Spins up a scheduler sized to the batch, runs the single job, and
    tears the pool down; the job server keeps a long-lived
    :class:`Scheduler` instead, but the shard/execute path is the same
    object either way.  The pool never outlives the call, so worker
    caches warm within the batch exactly like the engine's old
    per-chunk pool workers did.
    """
    plan_list = list(plans)
    if len(plan_list) < 2:
        raise ValueError("run_sharded needs >= 2 plans; run in-process")
    workers = min(policy.workers, len(plan_list))
    with Scheduler(workers=workers) as scheduler:
        # The per-shard policy still says workers=N; each worker
        # flattens it via for_worker() before executing.
        job = scheduler.submit(plan_list, replace(policy, workers=workers))
        return job.wait(timeout=timeout)
