"""The service wire format: plans, policies and results as JSON.

:class:`~repro.experiments.plans.TrialPlan` was designed
frozen/hashable/picklable from PR 1 precisely so it could one day cross
a process or host boundary; this module is that boundary's codec.  One
generic scheme covers every plan-level object:

* a registered frozen dataclass encodes as
  ``{"$type": <class name>, <field>: <encoded value>, ...}`` and
  decodes by calling the class with its decoded fields — so every
  ``__post_init__`` validation re-runs on the receiving side and a
  malformed wire object is rejected exactly like a malformed local one;
* tuples encode as ``{"$tuple": [...]}`` (JSON has only lists, and plan
  equality/hashability requires real tuples back);
* bytes encode as ``{"$bytes": <base64>}`` (explicit deployments embed
  raw coordinate buffers);
* ``None`` / bool / int / float / str pass through natively — Python's
  shortest-repr float serialization round-trips every finite float
  bit-exactly, which is what makes the round-trip *result* contract
  testable: a plan decoded from the wire must produce bit-identical
  :class:`~repro.experiments.plans.TrialResult`\\ s
  (``tests/test_wire_serde.py`` pins this with a hypothesis property).

The registry is the explicit vocabulary of the protocol: decoding an
unregistered ``$type`` raises instead of instantiating arbitrary
classes, so the wire format is closed under the plan schema (topology
providers, adversary specs, channel models, sparse resolution and
protocol configs included) rather than a pickle-shaped hazard.

Messages (one JSON object per line, UTF-8) are framed by
:func:`dumps` / :func:`loads`; the request/response vocabulary lives in
:mod:`repro.service.server` and :mod:`repro.service.client`.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from typing import Any

from repro.core.ack_protocol import AckConfig
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.decay import DecayConfig
from repro.experiments.plans import (
    AdversarySpec,
    DeploymentSpec,
    TrialPlan,
    TrialResult,
)
from repro.experiments.policy import ExecutionPolicy
from repro.sinr.params import ChannelModel, SINRParameters, SparseResolution
from repro.topology import (
    ChurnSchedule,
    CompositeTopology,
    StaticTopology,
    WaypointMobility,
)

__all__ = [
    "WIRE_TYPES",
    "decode",
    "dumps",
    "encode",
    "loads",
    "plan_from_wire",
    "plan_to_wire",
    "policy_from_wire",
    "policy_to_wire",
    "result_from_wire",
    "result_to_wire",
]

#: Every dataclass the wire format may carry, by class name.  Adding a
#: plan-level field of a new dataclass type means registering it here
#: (the round-trip tests fail loudly otherwise).
WIRE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        TrialPlan,
        TrialResult,
        ExecutionPolicy,
        DeploymentSpec,
        AdversarySpec,
        SINRParameters,
        ChannelModel,
        SparseResolution,
        AckConfig,
        ApproxProgressConfig,
        DecayConfig,
        StaticTopology,
        WaypointMobility,
        ChurnSchedule,
        CompositeTopology,
    )
}


def encode(value: Any) -> Any:
    """Encode one value (scalar, tuple, bytes, registered dataclass)
    into JSON-serializable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"$tuple": [encode(item) for item in value]}
    if isinstance(value, bytes):
        return {"$bytes": base64.b64encode(value).decode("ascii")}
    cls = type(value)
    if dataclasses.is_dataclass(value) and cls.__name__ in WIRE_TYPES:
        if WIRE_TYPES[cls.__name__] is not cls:
            raise TypeError(
                f"{cls!r} shadows registered wire type {cls.__name__!r}"
            )
        out: dict[str, Any] = {"$type": cls.__name__}
        for field in dataclasses.fields(value):
            out[field.name] = encode(getattr(value, field.name))
        return out
    raise TypeError(
        f"cannot encode {value!r} ({cls.__name__}) for the wire; "
        "register the dataclass in repro.service.wire.WIRE_TYPES"
    )


def decode(data: Any) -> Any:
    """Invert :func:`encode`; raises on unknown ``$type`` tags."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict):
        if "$tuple" in data:
            return tuple(decode(item) for item in data["$tuple"])
        if "$bytes" in data:
            return base64.b64decode(data["$bytes"])
        type_name = data.get("$type")
        if type_name is None:
            raise ValueError(f"wire object without $type tag: {data!r}")
        cls = WIRE_TYPES.get(type_name)
        if cls is None:
            raise ValueError(f"unknown wire type {type_name!r}")
        kwargs = {
            key: decode(value)
            for key, value in data.items()
            if key != "$type"
        }
        return cls(**kwargs)
    raise ValueError(f"cannot decode wire value {data!r}")


def plan_to_wire(plan: TrialPlan) -> dict:
    """A plan as its wire object."""
    return encode(plan)


def plan_from_wire(data: dict) -> TrialPlan:
    """A plan back from the wire (re-validated by its ``__post_init__``)."""
    plan = decode(data)
    if not isinstance(plan, TrialPlan):
        raise ValueError(f"expected a TrialPlan on the wire; got {plan!r}")
    return plan


def policy_to_wire(policy: ExecutionPolicy) -> dict:
    """A policy as its wire object — the same dataclass the in-process
    call takes, so library and service cannot drift."""
    return encode(policy)


def policy_from_wire(data: dict) -> ExecutionPolicy:
    policy = decode(data)
    if not isinstance(policy, ExecutionPolicy):
        raise ValueError(
            f"expected an ExecutionPolicy on the wire; got {policy!r}"
        )
    return policy


def result_to_wire(result: TrialResult) -> dict:
    return encode(result)


def result_from_wire(data: dict) -> TrialResult:
    result = decode(data)
    if not isinstance(result, TrialResult):
        raise ValueError(
            f"expected a TrialResult on the wire; got {result!r}"
        )
    return result


def dumps(message: dict) -> str:
    """One protocol message as a single JSON line (no trailing newline)."""
    return json.dumps(message, separators=(",", ":"))


def loads(line: str) -> dict:
    """Parse one protocol line; the result is a plain message dict
    (decode embedded objects with :func:`decode` and friends)."""
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"protocol messages must be JSON objects: {line!r}")
    return message
