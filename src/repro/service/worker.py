"""The pool worker: one process, one artifact cache, many shards.

A worker is a plain loop over its task queue: take a shard, run its
plans through :func:`repro.experiments.engine.execute_plans` under
``shard.policy.for_worker()`` (same four executors as everywhere else,
``workers`` flattened to 1 so a worker never recurses into a pool), and
stream every finished trial straight onto the shared result queue — the
scheduler's drain thread re-orders across shards, a worker only
guarantees in-shard order.

The worker's :data:`~repro.experiments.cache.GLOBAL_CACHE` persists
across shards *and jobs* for the life of the process, keyed identically
to the in-process cache (coordinate bytes + physics-stripped
parameters), so repeated jobs over the same deployments skip placement
work just like repeated ``run_trials`` calls do in the library.

Deterministic fault injection
-----------------------------
Crash and hang tests cannot rely on timing.  ``REPRO_SERVICE_FAULT``
(read per shard, before execution) makes failures reproducible:

``crash-once:<path>``
    If ``<path>`` does not exist yet: create it and hard-exit the
    process (``os._exit``) — the canonical "worker died mid-shard".
    The respawned worker sees the file and proceeds, so exactly one
    crash happens per test.
``stall:<path>``
    Sleep until ``<path>`` exists — holds a shard in-flight so a test
    can cancel its job deterministically, then release the worker.
"""

from __future__ import annotations

import os
import time
import traceback

from repro.experiments import cache as cache_module
from repro.experiments.engine import execute_plans

__all__ = ["worker_main"]

FAULT_ENV = "REPRO_SERVICE_FAULT"


def _fault_hook() -> None:
    """Apply the configured deterministic fault, if any."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    kind, _, path = spec.partition(":")
    if kind == "crash-once":
        if not os.path.exists(path):
            with open(path, "w") as flag:
                flag.write("crashed\n")
            os._exit(17)
    elif kind == "stall":
        while not os.path.exists(path):
            time.sleep(0.01)


def worker_main(worker_id: int, task_q, result_q) -> None:
    """Entry point of one pool process; loops until a ``stop`` message."""
    while True:
        message = task_q.get()  # reprolint: ignore[C102] — idle workers block on the task queue by design; shutdown arrives as a ("stop",) message on this same queue, so there is no producer-death case a timeout would catch
        if message[0] == "stop":
            return
        _, shard = message
        try:
            _fault_hook()
            policy = shard.policy.for_worker()

            def emit(local_index, result, _start=shard.start, _job=shard.job_id):
                result_q.put(("result", worker_id, _job, _start + local_index, result))

            # GLOBAL_CACHE is this process's cache — persistent across
            # shards and jobs; execute_plans swaps in a private one
            # itself when the policy says share_cache=False.
            execute_plans(
                shard.plans, policy, cache_module.GLOBAL_CACHE, on_result=emit
            )
            result_q.put(
                ("shard_done", worker_id, shard.job_id, shard.shard_id)
            )
        except Exception:
            result_q.put(
                (
                    "shard_error",
                    worker_id,
                    shard.job_id,
                    shard.shard_id,
                    traceback.format_exc(),
                )
            )
