"""The job server: an embeddable service façade and its TCP front.

Two layers, deliberately separable:

:class:`SimulationService`
    The service proper — a long-lived :class:`~repro.service.scheduler.
    Scheduler` plus its :class:`~repro.service.jobs.JobQueue`, exposed
    as ``submit / stream / results / cancel / stats``.  Everything the
    wire protocol can do, an embedding process can do directly with
    this object (tests and benchmarks run it in-process; a notebook can
    hold one open across many sweeps and keep the workers' artifact
    caches warm).

:func:`serve` / :func:`start_service` / :class:`ServiceHandle`
    A thin asyncio TCP front speaking newline-delimited JSON
    (:mod:`repro.service.wire`).  One request object per line; a
    ``submit`` with ``"stream": true`` holds the connection and pushes
    event lines (``result`` / ``progress`` / terminal) until the job
    ends.  :func:`start_service` boots the whole thing in-process on an
    ephemeral port — and forks the worker pool *before* starting the
    asyncio thread, keeping fork-safety trivial.

Protocol vocabulary (request → response)
----------------------------------------
``{"op": "submit", "plans": [...], "policy": ..., "stream": bool}``
    → ``{"ok": true, "job_id": n, "cached": bool, "total": n}``, then,
    when streaming, one event object per line ending with a terminal
    ``{"event": "done" | "cancelled" | "failed"}``.
``{"op": "status", "job_id": n}``
    → ``{"ok": true, "state": ..., "completed": n, "total": n}``.
``{"op": "cancel", "job_id": n}`` → ``{"ok": true, "cancelled": bool}``.
``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``.
Any failure → ``{"ok": false, "error": "..."}`` (connection survives).
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Callable, Iterator, Sequence

from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.policy import ExecutionPolicy
from repro.service import wire
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.scheduler import Scheduler

__all__ = ["ServiceHandle", "SimulationService", "serve", "start_service"]


class SimulationService:
    """A running simulation service: scheduler + job ledger, one object."""

    def __init__(
        self,
        workers: int = 2,
        cache_size: int = 128,
        max_shard_retries: int = 2,
        shards_per_worker: int = 4,
    ) -> None:
        self.jobs = JobQueue(cache_size=cache_size)
        self.scheduler = Scheduler(
            workers=workers,
            jobs=self.jobs,
            max_shard_retries=max_shard_retries,
            shards_per_worker=shards_per_worker,
        )

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SimulationService":
        self.scheduler.start()
        return self

    def close(self) -> None:
        self.scheduler.shutdown()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the service surface ------------------------------------------

    def submit(
        self,
        plans: Sequence[TrialPlan],
        policy: ExecutionPolicy | None = None,
    ) -> Job:
        """Enqueue a job; returns its streaming handle immediately."""
        return self.scheduler.submit(plans, policy)

    def stream(
        self, job_id: int, timeout: float | None = None
    ) -> Iterator[tuple]:
        """Yield a job's events through its terminal event."""
        return self.jobs.get(job_id).stream(timeout=timeout)

    def results(
        self, job_id: int, timeout: float | None = None
    ) -> list[TrialResult]:
        """Block until done; results in plan order (raises on
        failure/cancellation)."""
        return self.jobs.get(job_id).wait(timeout=timeout)

    def cancel(self, job_id: int) -> bool:
        return self.scheduler.cancel(job_id)

    def status(self, job_id: int) -> dict:
        job = self.jobs.get(job_id)
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "completed": job.completed,
            "total": job.total,
            "cached": job.cached,
            "error": job.error,
        }

    def stats(self) -> dict:
        return self.scheduler.stats()


#: How long one streaming poll of a job's event queue may block its
#: executor thread.  The bound is what makes the thread reclaimable: if
#: the job's producer dies without a terminal event, the poll wakes,
#: notices the terminal job state, and closes the stream instead of
#: pinning the thread (and the client connection) forever.
_STREAM_POLL_SECONDS = 0.5


def _next_event(job: Job) -> tuple | None:
    """One bounded poll of the job's event queue (None on timeout)."""
    try:
        return job.events.get(timeout=_STREAM_POLL_SECONDS)
    except queue.Empty:
        return None


def _terminal_event(job: Job) -> tuple:
    """The terminal event for a job that reached a terminal state with
    nothing left in its queue (its producer died before emitting one)."""
    if job.state is JobState.FAILED:
        return ("failed", job.error or "job failed")
    if job.state is JobState.CANCELLED:
        return ("cancelled", None)
    return ("done", None)


async def _stream_job_events(
    job: Job, send: Callable[[dict], None], loop: asyncio.AbstractEventLoop
) -> None:
    """Push a job's events to ``send`` through the terminal one.

    Each queue read is a bounded poll run off the event loop; on a
    timeout the job's state is consulted, so a job that went terminal
    without a queued terminal event (crashed drain thread) still ends
    the stream with a synthesized one.  A synthesized terminal can only
    race a real one the queue already ordered behind drained results —
    the client stops at whichever arrives first, so results are never
    dropped.
    """
    while True:
        event = await loop.run_in_executor(None, _next_event, job)
        if event is None:
            if job.state.terminal and job.events.empty():
                event = _terminal_event(job)
            else:
                continue
        send(_encode_event(event))
        if event[0] in ("done", "cancelled", "failed"):
            return


def _encode_event(event: tuple) -> dict:
    kind = event[0]
    if kind == "result":
        return {
            "event": "result",
            "index": event[1],
            "result": wire.encode(event[2]),
        }
    if kind == "progress":
        return {"event": "progress", "completed": event[1], "total": event[2]}
    if kind == "failed":
        return {"event": "failed", "error": event[1]}
    return {"event": kind}


async def _handle_connection(
    service: SimulationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    loop = asyncio.get_running_loop()

    def send(message: dict) -> None:
        writer.write(wire.dumps(message).encode() + b"\n")

    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            try:
                request = wire.loads(line.decode())
                op = request.get("op")
                if op == "submit":
                    plans = [
                        wire.plan_from_wire(item) for item in request["plans"]
                    ]
                    policy = None
                    if request.get("policy") is not None:
                        policy = wire.policy_from_wire(request["policy"])
                    job = service.submit(plans, policy)
                    send(
                        {
                            "ok": True,
                            "job_id": job.job_id,
                            "cached": job.cached,
                            "total": job.total,
                        }
                    )
                    if request.get("stream", True):
                        await _stream_job_events(job, send, loop)
                        await writer.drain()
                elif op == "status":
                    send({"ok": True, **service.status(request["job_id"])})
                elif op == "cancel":
                    cancelled = service.cancel(request["job_id"])
                    send({"ok": True, "cancelled": cancelled})
                elif op == "stats":
                    send({"ok": True, "stats": service.stats()})
                else:
                    send({"ok": False, "error": f"unknown op {op!r}"})
            except Exception as exc:  # protocol error: report, keep serving
                send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):  # client went away
        pass
    except asyncio.CancelledError:  # server shutting down mid-connection
        pass
    finally:
        try:
            writer.close()
        except RuntimeError:  # loop already tearing down
            pass


async def serve(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Open the TCP front for an already-started service."""

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


class ServiceHandle:
    """A service + TCP front running inside this process.

    Produced by :func:`start_service`; ``host``/``port`` locate the
    listener (ephemeral by default), :attr:`service` is the embedded
    façade, and :meth:`close` tears down listener, loop thread, and
    worker pool.
    """

    def __init__(self, service: SimulationService) -> None:
        self.service = service
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self, host: str, port: int) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                self._server = await serve(self.service, host, port)
                self.host, self.port = self._server.sockets[0].getsockname()[:2]
            except BaseException as exc:
                self._startup_error = exc
            finally:
                self._ready.set()

        self._loop.run_until_complete(boot())
        if self._startup_error is None:
            self._loop.run_forever()
        self._loop.close()

    def _start(self, host: str, port: int, timeout: float) -> "ServiceHandle":
        self._thread = threading.Thread(
            target=self._run,
            args=(host, port),
            name="repro-service-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            self.close()
            raise RuntimeError("service TCP front failed to start in time")
        if self._startup_error is not None:
            error = self._startup_error
            self.close()
            raise RuntimeError(f"service TCP front failed: {error!r}")
        return self

    def close(self) -> None:
        if self._loop is not None and self._loop.is_running():
            loop = self._loop

            async def _shutdown() -> None:
                # Stop accepting, then cancel live connection handlers
                # and let their finally-blocks run before the loop dies.
                if self._server is not None:
                    self._server.close()
                    await self._server.wait_closed()
                current = asyncio.current_task()
                tasks = [t for t in asyncio.all_tasks() if t is not current]
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

            try:
                asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(
                    timeout=5.0
                )
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_service(
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 10.0,
    **service_kwargs,
) -> ServiceHandle:
    """Boot a full in-process job server; returns its handle.

    Order matters: the worker pool forks *first*, then the asyncio
    thread starts — children never inherit the event-loop thread.
    """
    service = SimulationService(workers=workers, **service_kwargs).start()
    try:
        return ServiceHandle(service)._start(host, port, timeout)
    except BaseException:
        service.close()
        raise
