"""Point sets in the Euclidean plane.

All coordinates are stored as a float64 numpy array of shape ``(n, 2)``.
The paper normalizes the minimum distance between any two nodes to 1
(§4.2, the near-field assumption); :func:`enforce_min_distance` rescales a
layout to satisfy that normalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PointSet",
    "pairwise_distances",
    "distance",
    "min_pairwise_distance",
    "bounding_box",
    "enforce_min_distance",
]


def _as_coords(coords: np.ndarray | list | tuple) -> np.ndarray:
    """Coerce input to an ``(n, 2)`` float64 array, validating shape."""
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim == 1 and arr.size == 2:
        arr = arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"coordinates must have shape (n, 2); got {arr.shape!r}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("coordinates must be finite")
    return arr


def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Return the full ``(n, n)`` Euclidean distance matrix.

    The diagonal is zero.  Vectorized; O(n^2) memory, which is fine for
    the network sizes (n <= a few thousand) used in the experiments.
    """
    arr = _as_coords(coords)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distance(a, b) -> float:
    """Euclidean distance between two points ``a`` and ``b``."""
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    return math.hypot(ax - bx, ay - by)


def min_pairwise_distance(coords: np.ndarray) -> float:
    """Smallest distance between two distinct points (d_min in the paper).

    Raises ``ValueError`` for fewer than two points, since d_min is
    undefined there.
    """
    arr = _as_coords(coords)
    if arr.shape[0] < 2:
        raise ValueError("min_pairwise_distance requires at least 2 points")
    dists = pairwise_distances(arr)
    np.fill_diagonal(dists, np.inf)
    return float(dists.min())


def bounding_box(coords: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(xmin, ymin, xmax, ymax)`` of the point set."""
    arr = _as_coords(coords)
    mins = arr.min(axis=0)
    maxs = arr.max(axis=0)
    return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])


def enforce_min_distance(coords: np.ndarray, target: float = 1.0) -> np.ndarray:
    """Rescale a layout so the minimum pairwise distance equals ``target``.

    This realizes the paper's normalization that the minimum physical
    distance between nodes is 1 (§4.2).  The layout shape is preserved
    (uniform scaling about the origin).
    """
    arr = _as_coords(coords)
    if arr.shape[0] < 2:
        return arr.copy()
    dmin = min_pairwise_distance(arr)
    if dmin <= 0.0:
        raise ValueError("layout contains coincident points; cannot rescale")
    return arr * (target / dmin)


@dataclass(frozen=True)
class PointSet:
    """An immutable set of node positions in the plane.

    Attributes
    ----------
    coords:
        ``(n, 2)`` float64 array of positions.
    name:
        Optional human-readable label used in experiment reports.
    """

    coords: np.ndarray
    name: str = field(default="pointset")

    def __post_init__(self) -> None:
        object.__setattr__(self, "coords", _as_coords(self.coords))
        self.coords.setflags(write=False)

    def __len__(self) -> int:
        return int(self.coords.shape[0])

    def __getitem__(self, index: int) -> tuple[float, float]:
        x, y = self.coords[index]
        return float(x), float(y)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self)

    def distances(self) -> np.ndarray:
        """Full pairwise-distance matrix (cached per call site)."""
        return pairwise_distances(self.coords)

    def min_distance(self) -> float:
        """Minimum pairwise distance (d_min)."""
        return min_pairwise_distance(self.coords)

    def normalized(self, target: float = 1.0) -> "PointSet":
        """Return a copy rescaled so d_min equals ``target``."""
        return PointSet(enforce_min_distance(self.coords, target), self.name)

    def translated(self, dx: float, dy: float) -> "PointSet":
        """Return a copy translated by ``(dx, dy)``."""
        return PointSet(self.coords + np.array([dx, dy]), self.name)

    def union(self, other: "PointSet", name: str | None = None) -> "PointSet":
        """Return the concatenation of two point sets."""
        merged = np.vstack([self.coords, other.coords])
        return PointSet(merged, name or f"{self.name}+{other.name}")
