"""Growth-bounded graph utilities (paper Definition 4.1, Lemma 4.2).

A graph is (polynomially) growth-bounded when the size of any independent
set inside an r-neighborhood is at most ``f(r)`` for a polynomial ``f``.
SINR-induced strong connectivity graphs over plane deployments with minimum
node separation are growth bounded with ``f(r) = O(r^2)`` (a packing
argument: independent nodes within r hops lie within Euclidean distance
``r * R`` and pairwise distance > R_{1-eps} apart).

These helpers let tests and the MIS analysis check the property and
compute the bounding function used in Algorithm 9.1's parameter ``T``.
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "growth_bound_function",
    "independence_number_in_radius",
    "is_growth_bounded_sample",
    "neighborhood_size_bound",
]


def growth_bound_function(r: float, constant: float = 5.0) -> float:
    """The quadratic bounding function ``f(r) = constant * (r + 1)^2``.

    A disk of hop-radius ``r`` in a strong connectivity graph has Euclidean
    radius at most ``r * R``; nodes of an independent set are pairwise more
    than ``R_{1-eps}`` apart, so a packing argument yields ``O(r^2)``
    independent nodes.  ``constant`` absorbs the packing density; 5 is the
    standard unit-disk value ``(2r+1)^2 / r^2 -> 4``-ish with slack.
    """
    if r < 0:
        raise ValueError("r must be >= 0")
    return constant * (r + 1.0) ** 2


def independence_number_in_radius(
    graph: nx.Graph, center, radius: int
) -> int:
    """Size of a greedy maximal independent set within ``radius`` hops.

    A greedy MIS is a 1-approximation *witness*: any maximal independent
    set has size >= (max independent set size) / (Δ+1), and for the
    growth-bound check we only need an upper-bound witness, so greedy
    (which is maximal) suffices for sampling-based verification.
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    ball = nx.ego_graph(graph, center, radius=radius)
    mis = nx.maximal_independent_set(ball, seed=0)
    return len(mis)


def is_growth_bounded_sample(
    graph: nx.Graph,
    max_radius: int = 3,
    constant: float = 5.0,
    sample_nodes=None,
) -> bool:
    """Spot-check Definition 4.1 on (a sample of) the graph's nodes.

    Checks that greedy maximal independent sets in every r-ball respect
    ``f(r) = constant * (r+1)^2``.  This is a sampling check (sufficient
    for tests), not a proof: maximum independent set is NP-hard, so we
    verify using maximal sets, which lower-bound the maximum.  A failure
    here is therefore a *definite* violation witness... for the greedy
    set; a pass is strong evidence.
    """
    nodes = list(graph.nodes) if sample_nodes is None else list(sample_nodes)
    for center in nodes:
        for r in range(max_radius + 1):
            count = independence_number_in_radius(graph, center, r)
            if count > growth_bound_function(r, constant):
                return False
    return True


def neighborhood_size_bound(delta: int, r: float, constant: float = 5.0) -> float:
    """Lemma 4.2: ``|N_{G,r}(v)| <= Δ * f(r)`` for growth-bounded G."""
    if delta < 0:
        raise ValueError("delta must be >= 0")
    return delta * growth_bound_function(r, constant)
