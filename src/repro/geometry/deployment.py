"""Node deployment generators.

Every experiment in the paper is parameterized by a worst-case or random
placement of nodes in the plane.  This module provides the deployments the
benchmarks use:

* random deployments (disk, square, annulus, clusters) for the
  average-case scaling experiments behind Table 1 rows,
* deterministic line/grid deployments for controlled-diameter networks,
* the *two parallel lines* construction of Theorem 6.1 / Figure 1, and
* the *two balls* construction of Theorem 8.1 (Decay lower bound).

All generators return a :class:`~repro.geometry.points.PointSet` whose
minimum pairwise distance is at least ``min_separation`` (default 1, the
paper's near-field normalization).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import PointSet, pairwise_distances

__all__ = [
    "DeploymentError",
    "uniform_disk",
    "uniform_square",
    "grid_deployment",
    "line_deployment",
    "cluster_deployment",
    "annulus_deployment",
    "two_parallel_lines",
    "two_balls",
]


class DeploymentError(RuntimeError):
    """Raised when a deployment cannot satisfy its constraints."""


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class _SeparationGrid:
    """Spatial hash enforcing a minimum pairwise distance.

    Cells have side ``min_separation``, so any point closer than the
    separation to a candidate lies in the candidate's 3x3 cell
    neighborhood (two points in cells >= 2 apart on an axis are at
    least one full cell side apart).  Conflict checks therefore cost
    O(occupants of 9 cells) instead of O(all placed points), which is
    what keeps the 1000+-node benchmark deployments off the quadratic
    cliff the pure-Python candidate loop used to fall down.
    """

    def __init__(self, min_separation: float) -> None:
        self._sep2 = min_separation * min_separation
        self._inv_cell = 1.0 / min_separation
        self._cells: dict[tuple[int, int], list[np.ndarray]] = {}

    def _key(self, point) -> tuple[int, int]:
        return (
            math.floor(point[0] * self._inv_cell),
            math.floor(point[1] * self._inv_cell),
        )

    def conflicts(self, candidate) -> bool:
        """Is any placed point closer than the separation?"""
        cx, cy = self._key(candidate)
        cells = self._cells
        for ix in (cx - 1, cx, cx + 1):
            for iy in (cy - 1, cy, cy + 1):
                for placed in cells.get((ix, iy), ()):
                    dx = candidate[0] - placed[0]
                    dy = candidate[1] - placed[1]
                    if dx * dx + dy * dy < self._sep2:
                        return True
        return False

    def insert(self, point) -> None:
        self._cells.setdefault(self._key(point), []).append(point)


def _rejection_sample(
    n: int,
    draw,
    min_separation: float,
    rng: np.random.Generator,
    max_attempts_per_node: int = 2000,
    existing: np.ndarray | None = None,
) -> np.ndarray:
    """Place ``n`` points by rejection sampling with a separation constraint.

    ``draw`` produces one candidate point per call.  ``existing``
    optionally holds already-placed points the new ones must *also*
    keep the separation from — multi-group generators (clusters, the
    two balls) thread their accumulated point set through it so the
    module invariant ("minimum pairwise distance >= min_separation")
    holds across groups, not merely within each; the existing points
    are not part of the returned array.  Raises
    :class:`DeploymentError` when the region is too dense to fit ``n``
    points at the requested separation.

    The accept/reject predicate is evaluated on a spatial grid
    (:class:`_SeparationGrid`) but is pointwise identical to the naive
    all-pairs scan, so seeded deployments are unchanged: the candidate
    stream and each candidate's accept decision are exactly the same.
    """
    if min_separation <= 0:
        return np.array([draw(rng) for _ in range(n)], dtype=np.float64)
    grid = _SeparationGrid(min_separation)
    if existing is not None:
        for point in existing:
            grid.insert(point)
    points: list[np.ndarray] = []
    for _ in range(n):
        for _attempt in range(max_attempts_per_node):
            candidate = draw(rng)
            if not grid.conflicts(candidate):
                points.append(candidate)
                grid.insert(candidate)
                break
        else:
            raise DeploymentError(
                f"could not place node {len(points)} of {n} with "
                f"separation {min_separation}; region too dense"
            )
    return np.array(points, dtype=np.float64)


def uniform_disk(
    n: int,
    radius: float,
    min_separation: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> PointSet:
    """``n`` nodes uniformly at random in a disk of the given radius.

    The workhorse deployment for the Table 1 scaling experiments: density
    (and hence the degree Δ of the strong connectivity graph) is controlled
    through ``n`` and ``radius``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = _rng(seed)

    def draw(r: np.random.Generator) -> np.ndarray:
        # Uniform in a disk: sqrt-radius transform.
        rad = radius * math.sqrt(r.random())
        theta = 2.0 * math.pi * r.random()
        return np.array([rad * math.cos(theta), rad * math.sin(theta)])

    coords = _rejection_sample(n, draw, min_separation, rng)
    return PointSet(coords, name=f"disk(n={n},r={radius:g})")


def uniform_square(
    n: int,
    side: float,
    min_separation: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> PointSet:
    """``n`` nodes uniformly at random in an axis-aligned square."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if side <= 0:
        raise ValueError("side must be positive")
    rng = _rng(seed)

    def draw(r: np.random.Generator) -> np.ndarray:
        return np.array([r.random() * side, r.random() * side])

    coords = _rejection_sample(n, draw, min_separation, rng)
    return PointSet(coords, name=f"square(n={n},s={side:g})")


def grid_deployment(rows: int, cols: int, spacing: float = 1.0) -> PointSet:
    """A ``rows x cols`` regular grid with the given spacing.

    Deterministic; useful for tests with hand-computable answers.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    xs, ys = np.meshgrid(
        np.arange(cols, dtype=np.float64) * spacing,
        np.arange(rows, dtype=np.float64) * spacing,
    )
    coords = np.column_stack([xs.ravel(), ys.ravel()])
    return PointSet(coords, name=f"grid({rows}x{cols},d={spacing:g})")


def line_deployment(n: int, spacing: float = 1.0) -> PointSet:
    """``n`` nodes equally spaced on the x-axis.

    Produces multihop networks with diameter ~ n for the D-scaling
    experiments (Table 1 SMB/CONS rows).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    xs = np.arange(n, dtype=np.float64) * spacing
    coords = np.column_stack([xs, np.zeros(n)])
    return PointSet(coords, name=f"line(n={n},d={spacing:g})")


def cluster_deployment(
    n_clusters: int,
    nodes_per_cluster: int,
    cluster_radius: float,
    cluster_spacing: float,
    min_separation: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> PointSet:
    """Clusters of dense nodes whose centers lie on a line.

    Models the heterogeneous-density scenario the paper's local analysis
    targets: local contention varies widely between clusters while the
    backbone diameter stays small.

    The accumulated point set threads through every cluster's rejection
    sampling, so ``min_separation`` holds *across* clusters too: with
    ``cluster_spacing < 2*cluster_radius`` (overlapping disks) a
    candidate too close to an earlier cluster's node is rejected rather
    than silently violating the module invariant.
    """
    if n_clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("cluster counts must be >= 1")
    rng = _rng(seed)
    parts: list[np.ndarray] = []
    placed: np.ndarray | None = None
    for c in range(n_clusters):
        cx = c * cluster_spacing

        def draw(r: np.random.Generator, cx: float = cx) -> np.ndarray:
            rad = cluster_radius * math.sqrt(r.random())
            theta = 2.0 * math.pi * r.random()
            return np.array([cx + rad * math.cos(theta), rad * math.sin(theta)])

        part = _rejection_sample(
            nodes_per_cluster, draw, min_separation, rng, existing=placed
        )
        parts.append(part)
        placed = part if placed is None else np.vstack([placed, part])
    coords = np.vstack(parts)
    name = f"clusters({n_clusters}x{nodes_per_cluster})"
    return PointSet(coords, name=name)


def annulus_deployment(
    n: int,
    inner_radius: float,
    outer_radius: float,
    min_separation: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> PointSet:
    """``n`` nodes uniformly at random in an annulus."""
    if inner_radius < 0 or outer_radius <= inner_radius:
        raise ValueError("need 0 <= inner_radius < outer_radius")
    rng = _rng(seed)
    inner2 = inner_radius * inner_radius
    outer2 = outer_radius * outer_radius

    def draw(r: np.random.Generator) -> np.ndarray:
        rad = math.sqrt(inner2 + (outer2 - inner2) * r.random())
        theta = 2.0 * math.pi * r.random()
        return np.array([rad * math.cos(theta), rad * math.sin(theta)])

    coords = _rejection_sample(n, draw, min_separation, rng)
    return PointSet(coords, name=f"annulus(n={n})")


def two_parallel_lines(
    delta: int, line_distance: float, spacing: float = 1.0
) -> PointSet:
    """The Theorem 6.1 / Figure 1 lower-bound construction.

    Two parallel lines at Euclidean distance ``line_distance``, each with
    ``delta`` nodes spaced ``spacing`` apart.  Node ``i`` on line V
    (indices ``0..delta-1``) pairs with node ``i`` on line U (indices
    ``delta..2*delta-1``).  With the transmission range chosen as
    ``R_{1-eps} ≈ line_distance`` (the paper uses ``R_{1-eps} = 10·delta``),
    each V-node's only strong link crosses to its U-partner, so every node
    has degree Δ = delta in G_{1-ε} and only one cross pair can succeed per
    slot.
    """
    if delta < 1:
        raise ValueError("delta must be >= 1")
    if line_distance <= 0 or spacing <= 0:
        raise ValueError("line_distance and spacing must be positive")
    xs = np.arange(delta, dtype=np.float64) * spacing
    v_line = np.column_stack([xs, np.zeros(delta)])
    u_line = np.column_stack([xs, np.full(delta, line_distance)])
    coords = np.vstack([v_line, u_line])
    return PointSet(coords, name=f"two_lines(delta={delta})")


def two_balls(
    n_sparse: int,
    n_dense: int,
    ball_radius: float,
    center_distance: float,
    min_separation: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> PointSet:
    """The Theorem 8.1 construction that defeats Decay.

    Ball ``B1`` (indices ``0..n_sparse-1``) contains a constant number of
    nodes; ball ``B2`` (remaining indices) contains Δ nodes.  The centers
    are placed ``center_distance`` apart (the paper uses R_2, i.e. inside
    interference range but outside communication range), so B2's aggregate
    interference crushes B1 exactly when Decay's probabilities become large
    enough for B1's nodes to transmit.
    """
    if n_sparse < 1 or n_dense < 1:
        raise ValueError("ball populations must be >= 1")
    rng = _rng(seed)

    def draw_at(cx: float):
        def draw(r: np.random.Generator) -> np.ndarray:
            rad = ball_radius * math.sqrt(r.random())
            theta = 2.0 * math.pi * r.random()
            return np.array([cx + rad * math.cos(theta), rad * math.sin(theta)])

        return draw

    sparse = _rejection_sample(n_sparse, draw_at(0.0), min_separation, rng)
    # Thread B1's points through B2's sampling: when the balls overlap
    # (center_distance < 2*ball_radius) the separation invariant must
    # hold across them, exactly as for overlapping clusters.
    dense = _rejection_sample(
        n_dense, draw_at(center_distance), min_separation, rng,
        existing=sparse,
    )
    coords = np.vstack([sparse, dense])
    return PointSet(coords, name=f"two_balls({n_sparse},{n_dense})")


def verify_min_separation(points: PointSet, min_separation: float) -> bool:
    """Check that all pairwise distances are >= ``min_separation``."""
    if len(points) < 2:
        return True
    dists = pairwise_distances(points.coords)
    np.fill_diagonal(dists, np.inf)
    return bool(dists.min() >= min_separation - 1e-12)
