"""Euclidean-plane geometry substrate.

The SINR model places nodes in the plane (paper §4.2).  This package
provides point containers, pairwise-distance computation, node deployment
generators used by the experiments, and growth-bounded metric utilities
(paper Definition 4.1 and Lemma 4.2).
"""

from repro.geometry.points import (
    PointSet,
    pairwise_distances,
    distance,
    min_pairwise_distance,
    bounding_box,
    enforce_min_distance,
)
from repro.geometry.deployment import (
    DeploymentError,
    uniform_disk,
    uniform_square,
    grid_deployment,
    line_deployment,
    cluster_deployment,
    annulus_deployment,
    two_parallel_lines,
    two_balls,
)
from repro.geometry.growth import (
    growth_bound_function,
    independence_number_in_radius,
    is_growth_bounded_sample,
    neighborhood_size_bound,
)

__all__ = [
    "PointSet",
    "pairwise_distances",
    "distance",
    "min_pairwise_distance",
    "bounding_box",
    "enforce_min_distance",
    "DeploymentError",
    "uniform_disk",
    "uniform_square",
    "grid_deployment",
    "line_deployment",
    "cluster_deployment",
    "annulus_deployment",
    "two_parallel_lines",
    "two_balls",
    "growth_bound_function",
    "independence_number_in_radius",
    "is_growth_bounded_sample",
    "neighborhood_size_bound",
]
