"""The columnar population runtime.

:class:`VectorRuntime` is the fast-path counterpart of
:class:`~repro.simulation.runtime.Runtime`: it advances the MAC
populations of many batched trials one slot at a time, but where the
object runtime makes N ``on_slot`` calls per trial per slot, this one
makes a fixed number of array operations over the ``trials × n``
lattice — the per-node protocol state lives in a columnar kernel
(:mod:`repro.vectorized.kernels`), the per-slot uniforms come from a
bulk pre-draw (:class:`~repro.simulation.rng.NodeUniformBuffer`), and
the SINR physics of the whole batch resolves through the flat-index
mode of :func:`~repro.sinr.physics.successful_receptions_batch`.

Equivalence contract
--------------------
A trial advanced here is **decode-for-decode identical** to the same
trial on the object runtime: same per-node RNG streams (drawn in the
same order), same transmit decisions, same receptions, same
wake/bcast/rcv/ack slots, same channel counters, and the same
:class:`~repro.simulation.trace.EventTrace` content.  The only visible
difference is intra-slot event interleaving: the object runtime
interleaves events node by node, while this runtime records each slot's
events grouped by kind (all transmits, then acks, then the delivery
events) — within one kind the order is identical, and every
measurement in :mod:`repro.core.spec` is ordering-free within a slot.

Scope: homogeneous populations — every node runs the same Decay/Ack
protocol.  Bare ``MacClient`` populations (the Table-1 and Theorem-8.1
experiment shape) run exactly as before; reactive protocol clients
(BSMB relays, BMMB queues, consensus waves) attach through a
:class:`~repro.vectorized.protocols.VectorMacAdapter`, which receives
this runtime's MAC events (wake / rcv / ack) as cell index arrays and
may start new broadcasts in response.  Rebroadcasting detaches the
single-shot restriction: each new broadcast resets the cell's kernel
state to a fresh engine (``kernel.reset``), mirroring the object MACs'
fresh-``Engine``-per-broadcast rule.  Sleeping nodes remain pure
listeners woken by their first decode (conditional wakeup,
Definition 4.4).  Heterogeneous stacks (the combined Algorithm 11.1
MAC) stay on the object runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.events import BcastMessage, MessageRegistry
from repro.native import resolve_backend, resolve_threads
from repro.simulation.rng import NodeUniformBuffer, spawn_node_rngs
from repro.simulation.trace import EventTrace, TraceEvent
from repro.sinr.channel import Channel
from repro.sinr.physics import batch_tensor, successful_receptions_batch

__all__ = ["VectorRuntime"]

_EMPTY_IDS = np.empty(0, dtype=np.intp)

# Byte ceiling for the rcv-dedup boolean matrix ((trials·n, n) cells);
# batches beyond it use the per-decode set fallback instead.  256 MiB
# admits a single n=10000 trial (1e8 cells) — the sparse-native bench
# shape — while still refusing the quadratic blowup of big-n *many*
# trial batches.
SEEN_MATRIX_CAP = 256 << 20


class VectorRuntime:
    """Lockstep columnar executor for a batch of homogeneous trials.

    Parameters
    ----------
    channels:
        One :class:`~repro.sinr.channel.Channel` per trial; all must
        share the node count and SINR parameters (the engine's batch
        key).  Each trial keeps its own adversary, counters and trace.
    kernel:
        A columnar protocol kernel sized for ``len(channels)`` trials of
        ``n`` nodes (:class:`~repro.vectorized.kernels.DecayKernel` or
        :class:`~repro.vectorized.kernels.AckKernel`).
    seeds:
        Per-trial master seeds; node generators are spawned exactly as
        the object runtime spawns them, so streams line up node for
        node.
    max_slots:
        Per-trial slot budget (int applies to all trials); exceeding it
        raises ``RuntimeError`` like the object runtime's budget check.
    record_physical:
        When True (default), every physical transmit/receive is traced.
    native:
        Backend selector for the fused C slot loop (:mod:`repro.native`):
        ``False`` pins the pure-numpy reference path, ``True`` demands
        the compiled kernel (raising when it is not built), ``None``
        (default) defers to the ``REPRO_NATIVE`` environment variable
        and otherwise auto-selects whatever is available.  Either way
        every slot shape the C kernel does not cover (tracing, fading,
        churn, adversaries, adapters, approximate-sparse physics)
        transparently runs the numpy step — the backends produce
        bit-identical results, so this is purely a speed knob.
        Sparse-*exact* batches over one shared resolver ride the fused
        CSR decode path.
    native_threads:
        Kernel threads partitioning the trials axis inside the C loop
        (``None`` defers to ``REPRO_NATIVE_THREADS``, default 1).
        Purely wall-clock: results are bit-identical for every count.
    """

    def __init__(
        self,
        channels: Sequence[Channel],
        kernel,
        seeds: Sequence[int | None],
        max_slots: Sequence[int] | int = 2_000_000,
        record_physical: bool = True,
        chunk: int = 512,
        native: bool | None = None,
        native_threads: int | None = None,
    ) -> None:
        self.channels = list(channels)
        if not self.channels:
            raise ValueError("need at least one trial channel")
        trials = len(self.channels)
        if len(seeds) != trials:
            raise ValueError("need one seed per trial")
        n = self.channels[0].n
        params = self.channels[0].params
        for channel in self.channels[1:]:
            if channel.n != n or channel.params != params:
                raise ValueError(
                    "all trials of one vector batch must share node "
                    "count and SINR parameters"
                )
        kernel_cells = len(kernel.configs) * kernel.n
        if kernel.n != n or kernel_cells != trials * n:
            raise ValueError("kernel lattice does not match the batch")
        self.kernel = kernel
        self.params = params
        self.trials = trials
        self._n = n
        self.record_physical = bool(record_physical)
        if isinstance(max_slots, int):
            max_slots = [max_slots] * trials
        self.max_slots = [int(m) for m in max_slots]
        if len(self.max_slots) != trials:
            raise ValueError("need one max_slots per trial")

        self._has_adversary = any(
            c.adversary is not None for c in self.channels
        )
        # Sparse resolution (params.sparse; shared — params is the
        # batch key) swaps the batched tensor reduction for per-trial
        # grid resolution: no (trials, n, n) stack is built, keeping
        # the columnar path free of the O(n²) matrices too.
        self._sparse = self.channels[0].sparse_active
        # Sparse-exact batches where every trial shares ONE resolver
        # object (same deployment + spec through the artifact cache)
        # stay native-eligible: the C kernel walks the shared CSR
        # candidate lists and gathers the shared dense gain matrix —
        # bit-identical to the numpy sparse resolver by construction.
        # Approximate modes and per-trial resolvers take the numpy step.
        self._sparse_native_ok = False
        if self._sparse:
            resolver = self.channels[0]._resolver
            spec = self.channels[0].sparse_spec
            self._sparse_native_ok = (
                spec is not None
                and spec.mode == "exact"
                and all(c._resolver is resolver for c in self.channels)
            )
        if self._sparse:
            self._dist_stack = None
            self._gain_stack = None
        else:
            self._dist_stack = batch_tensor(
                [c.distances for c in self.channels]
            )
            self._gain_stack = batch_tensor(
                [c.gains for c in self.channels]
            )
        # Arm each trial's channel with its own master seed, exactly as
        # the object Runtime does: the stochastic model (shared params ⇒
        # all trials or none) gets its per-trial channel streams, and
        # any dynamic topology provider binds fresh per-trial state.
        # Both arms are no-ops for plain channels, so static
        # deterministic batches stay byte-identical.
        self._stochastic = self.channels[0].stochastic
        self._dynamic = any(c.dynamic_topology for c in self.channels)
        if self._stochastic or self._dynamic:
            for channel, seed in zip(self.channels, seeds):
                channel.bind_trial_seed(seed)

        rngs = [
            rng
            for seed in seeds
            for rng in spawn_node_rngs(n, seed)
        ]
        self._uniforms = NodeUniformBuffer(rngs, chunk=chunk)

        self.traces = [EventTrace() for _ in range(trials)]
        self.registries = [MessageRegistry() for _ in range(trials)]
        self.slots = [0] * trials
        self._awake = np.zeros(trials * n, dtype=bool)
        self._busy = np.zeros(trials * n, dtype=bool)
        self._has_broadcast = np.zeros(trials * n, dtype=bool)
        self._current: list[list[BcastMessage | None]] = [
            [None] * n for _ in range(trials)
        ]
        self._delivered: list[set[tuple[int, int]]] = [
            set() for _ in range(trials)
        ]
        self.adapter = None
        # Broadcasts requested while this slot's transmissions are being
        # resolved swap in only after delivery: receivers of the final
        # (halting) transmission must still see the message that was on
        # the air, exactly like the object runtime's payload snapshot.
        self._in_phase1 = False
        self._staged_current: list[tuple[int, int, BcastMessage]] = []
        self._tx_mid = np.full(trials * n, -1, dtype=np.int64)
        # Columnar rcv dedup for the counters-only mode: because only a
        # message's origin ever transmits it (every MAC mints its own
        # messages), "listener already delivered the sender's current
        # message" is exactly the per-mid dedup rule of
        # MacLayerBase._deliver — one boolean gather replaces the
        # per-decode set probes, and duplicate decodes (the common case
        # under Decay/Ack repetition) cost no Python at all.  Falls
        # back to the per-decode sets when the matrix would be large
        # (big-n many-trial batches) or when full physical tracing
        # walks every decode anyway.
        self._seen = None
        if not self.record_physical and trials * n * n <= SEEN_MATRIX_CAP:
            self._seen = np.zeros((trials * n, n), dtype=bool)
        # Churn liveness over the flat lattice: None while every node of
        # every trial is up (the overwhelmingly common case — the fast
        # paths then skip all masking), else a (trials·n,) bool mask.
        self._alive = self._gather_alive()

        # Native backend: resolved once per batch; the stepper (the
        # marshalling bridge to the C kernel) is built lazily on the
        # first slot that actually qualifies.  native_slots counts the
        # slots the compiled kernel advanced — 0 under the fallback.
        self._use_native = resolve_backend(native)
        self._native_threads = resolve_threads(native_threads)
        self._native_stepper = None
        self.native_slots = 0

    def _gather_alive(self) -> np.ndarray | None:
        """Flatten the per-channel churn masks (None = all alive)."""
        if not any(c.alive is not None for c in self.channels):
            return None
        n = self._n
        alive = np.ones(self.trials * n, dtype=bool)
        for t, channel in enumerate(self.channels):
            if channel.alive is not None:
                alive[t * n : (t + 1) * n] = channel.alive
        return alive

    def attach_adapter(self, adapter) -> None:
        """Install a protocol client adapter
        (:class:`~repro.vectorized.protocols.VectorMacAdapter`)."""
        self.adapter = adapter

    # -- population facts --------------------------------------------------

    @property
    def n(self) -> int:
        """Nodes per trial."""
        return self._n

    @property
    def slot(self) -> int:
        """Current slot of trial 0 (the single-trial convenience view)."""
        return self.slots[0]

    @property
    def trace(self) -> EventTrace:
        """Trace of trial 0 (the single-trial convenience view)."""
        return self.traces[0]

    def busy_nodes(self, trial: int) -> np.ndarray:
        """Ids of the trial's nodes with a broadcast in flight."""
        row = self._busy[trial * self._n : (trial + 1) * self._n]
        return np.flatnonzero(row)

    def any_busy(self, trial: int, nodes=None) -> bool:
        """True while any (given) node of the trial is broadcasting."""
        row = self._busy[trial * self._n : (trial + 1) * self._n]
        if nodes is None:
            return bool(row.any())
        return bool(row[np.asarray(list(nodes), dtype=np.intp)].any())

    def busy_cells(self, cells: np.ndarray) -> np.ndarray:
        """Broadcast-in-flight flags for flat lattice cells."""
        return self._busy[cells]

    # -- environment inputs ------------------------------------------------

    def wake_node(self, trial: int, node: int) -> None:
        """Wake one node (environment input or conditional wakeup)."""
        cell = trial * self._n + node
        if not self._awake[cell]:
            self._awake[cell] = True
            self.traces[trial].record(self.slots[trial], "wake", node)

    def bcast(self, trial: int, node: int, payload: Any = None) -> BcastMessage:
        """Begin a local broadcast at the node, as MacLayer.bcast.

        A node may broadcast again once its previous broadcast acked;
        every new broadcast resets the cell's kernel state to a fresh
        engine (the object MACs construct a fresh ``Engine`` per
        broadcast).  Requests arriving while this slot's transmissions
        resolve (phase 1: ack-triggered rebroadcasts) stage the
        in-flight message swap until after delivery.
        """
        cell = trial * self._n + node
        self._check_idle(cell)
        if self._has_broadcast[cell]:
            self.kernel.reset(np.array([cell], dtype=np.intp))
        return self._begin_broadcast(cell, payload)

    def bcast_cells(self, cells: np.ndarray, payloads: Sequence[Any]) -> None:
        """Population form of :meth:`bcast` (``payloads`` cell-aligned).

        One batched ``kernel.reset`` serves every rebroadcasting cell;
        messages are minted and traced per cell in the given order.
        """
        busy = self._busy[cells]
        if busy.any():
            self._check_idle(int(cells[busy][0]))
        reset_cells = cells[self._has_broadcast[cells]]
        if reset_cells.size:
            self.kernel.reset(reset_cells)
        for cell, payload in zip(cells.tolist(), payloads):
            self._begin_broadcast(cell, payload)

    def _check_idle(self, cell: int) -> None:
        if self._busy[cell]:
            trial, node = divmod(cell, self._n)
            raise RuntimeError(
                f"node {node} of trial {trial} is already broadcasting"
            )

    def _begin_broadcast(self, cell: int, payload: Any) -> BcastMessage:
        """Mint, trace and arm one broadcast (cell idle, kernel reset)."""
        trial, node = divmod(cell, self._n)
        message = self.registries[trial].mint(node, payload)
        self.wake_node(trial, node)
        self._has_broadcast[cell] = True
        self._busy[cell] = True
        if self._in_phase1:
            self._staged_current.append((trial, node, message))
        else:
            self._attach_message(trial, node, message)
        self.traces[trial].record(self.slots[trial], "bcast", node, message.mid)
        return message

    def _attach_message(
        self, trial: int, node: int, message: BcastMessage
    ) -> None:
        """Make ``message`` the cell's in-flight broadcast: payload
        source for deliveries, mid column for rcv events, and a fresh
        dedup column (nobody has delivered the new message yet)."""
        n = self._n
        self._current[trial][node] = message
        self._tx_mid[trial * n + node] = message.mid
        if self._seen is not None:
            self._seen[trial * n : (trial + 1) * n, node] = False

    # -- the slot loop -----------------------------------------------------

    def advance(self, rows: Sequence[int] | None = None) -> None:
        """Advance the given trials (default: all) by one slot."""
        n = self._n
        trials = self.trials
        rows = list(range(trials)) if rows is None else list(rows)
        for t in rows:
            if self.slots[t] >= self.max_slots[t]:
                raise RuntimeError(
                    f"slot budget exhausted ({self.max_slots[t]}); "
                    "protocol appears not to terminate"
                )

        if self._dynamic:
            # Epoch contract: per-trial topology changes land before
            # this slot's transmit decisions (as in Runtime.step); any
            # geometry move restacks the batch tensors, and the churn
            # mask is re-gathered so crashed cells freeze below.
            geometry_moved = False
            for t in rows:
                geometry_moved |= self.channels[t].advance_topology(
                    self.slots[t]
                )
            if geometry_moved and not self._sparse:
                self._dist_stack = batch_tensor(
                    [c.distances for c in self.channels]
                )
                self._gain_stack = batch_tensor(
                    [c.gains for c in self.channels]
                )
            self._alive = self._gather_alive()

        live = np.zeros(trials, dtype=bool)
        live[rows] = True
        busy_mask = self._busy & np.repeat(live, n)
        if self._alive is not None:
            # Crashed cells are frozen: no kernel step, no RNG draw, no
            # transmission — the columnar twin of the object runtime
            # skipping their on_slot call.
            busy_mask &= self._alive
        idx = np.flatnonzero(busy_mask)

        # Phase 1: every broadcasting cell decides transmit/listen in
        # one kernel step (drawing its node's next private uniform).
        uniforms = self._uniforms.take(idx)
        transmit, halted = self.kernel.step(idx, uniforms)
        tx_cells = idx[transmit]
        ack_cells = idx[halted]

        # Reception feedback (Ack fallback counting) is owed to exactly
        # the engines that ran this slot and did not halt: on the object
        # path a halting cell's engine is gone before delivery, and a
        # same-slot (re)broadcast has no engine until its first step.
        feedback_ok = None
        if self.kernel.needs_reception_feedback:
            feedback_ok = np.zeros(trials * n, dtype=bool)
            feedback_ok[idx[~halted]] = True

        tx_trial = tx_cells // n
        tx_node = tx_cells - tx_trial * n
        bounds = np.searchsorted(tx_trial, np.arange(trials + 1))
        make = TraceEvent._make  # tuple.__new__, ~4x cheaper per event
        tx_ids: list[np.ndarray] = [_EMPTY_IDS] * trials
        for t in rows:
            lo, hi = bounds[t], bounds[t + 1]
            if lo == hi:
                continue
            nodes = tx_node[lo:hi]
            tx_ids[t] = nodes
            if self.record_physical:
                current = self._current[t]
                events = self.traces[t].events
                slot = self.slots[t]
                for node in nodes.tolist():
                    events.append(
                        make((slot, "transmit", node, current[node]))
                    )

        # Acknowledgments fire in the same slot the budget runs out,
        # with the final transmission still on the air; the message
        # stays attached until after delivery so this slot's receptions
        # of it still resolve their payload (the object path snapshots
        # payloads into the transmissions dict for the same reason).
        acked: list[tuple[int, int, BcastMessage]] = []
        if ack_cells.size:
            ack_trial = ack_cells // n
            ack_node = ack_cells - ack_trial * n
            self._busy[ack_cells] = False
            for t, node in zip(ack_trial.tolist(), ack_node.tolist()):
                message = self._current[t][node]
                acked.append((t, node, message))
                self.traces[t].record(self.slots[t], "ack", node, message.mid)
            if self.adapter is not None:
                # Client reactions to the acks (queue pumps, next waves)
                # run now, in ascending cell order like the object
                # runtime's phase-1 node loop; any rebroadcast they
                # request stages its message swap until after delivery.
                self._in_phase1 = True
                try:
                    self.adapter.on_ack(ack_cells)
                finally:
                    self._in_phase1 = False

        # One flat SINR reduction for the whole batch.  Under an active
        # channel model each trial contributes its own effective-power
        # block (static multipliers + this slot's fading draws from the
        # trial's private channel stream), concatenated in trial order
        # to match the kernel's ragged row layout.
        if self._sparse:
            # Per-trial grid resolution in trial order (each channel
            # consumes its own fading stream exactly as the dense block
            # concat below would); concatenated flat arrays reproduce
            # the batched kernel's (trial, transmitter, listener)
            # ordering, so everything downstream is unchanged.
            parts_t: list[np.ndarray] = []
            parts_l: list[np.ndarray] = []
            parts_s: list[np.ndarray] = []
            for t in range(trials):
                if not tx_ids[t].size:
                    continue
                listeners, senders = self.channels[t].resolve_raw_flat(
                    tx_ids[t]
                )
                if listeners.size:
                    parts_t.append(
                        np.full(listeners.size, t, dtype=np.intp)
                    )
                    parts_l.append(listeners)
                    parts_s.append(senders)
            if parts_t:
                hit_trial = np.concatenate(parts_t)
                hit_listener = np.concatenate(parts_l)
                hit_sender = np.concatenate(parts_s)
            else:
                hit_trial = hit_listener = hit_sender = _EMPTY_IDS
        else:
            link_powers = None
            if self._stochastic:
                blocks = [
                    self.channels[t].slot_link_powers(tx_ids[t])
                    for t in range(trials)
                    if tx_ids[t].size
                ]
                if blocks:
                    link_powers = np.concatenate(blocks)
            hit_trial, hit_listener, hit_sender = (
                successful_receptions_batch(
                    self.params,
                    self._dist_stack,
                    tx_ids,
                    gains=self._gain_stack,
                    flat=True,
                    link_powers=link_powers,
                )
            )
        if self._alive is not None and hit_trial.size:
            # Churn: a crashed listener's radio is off — drop its
            # decodes before any counter, wakeup or adversary sees them
            # (Channel.finalize_slot applies the same mask on the
            # object executors, so the filter here is load-bearing only
            # for the adversary-free fast delivery below).
            keep = self._alive[hit_trial * n + hit_listener]
            if not keep.all():
                hit_trial = hit_trial[keep]
                hit_listener = hit_listener[keep]
                hit_sender = hit_sender[keep]

        rx_bounds = np.searchsorted(hit_trial, np.arange(trials + 1))
        if self._has_adversary:
            self._deliver_filtered(
                rows,
                tx_ids,
                hit_trial,
                hit_listener,
                hit_sender,
                rx_bounds,
                feedback_ok,
            )
        else:
            # Fast delivery (no failure injection anywhere in the
            # batch): every raw decode is a delivered reception, so
            # conditional wakeup and rc feedback vectorize over the
            # flat hit arrays and only the per-reception trace/dedup
            # work stays in Python.
            hit_cells = hit_trial * n + hit_listener
            woken = hit_cells[~self._awake[hit_cells]]
            if woken.size:
                self._awake[woken] = True
                wk_trial = woken // n
                wk_node = woken - wk_trial * n
                for t, node in zip(wk_trial.tolist(), wk_node.tolist()):
                    self.traces[t].record(self.slots[t], "wake", node)
                if self.adapter is not None:
                    self.adapter.on_wake(woken)
            feedback = (
                hit_cells[feedback_ok[hit_cells]]
                if feedback_ok is not None
                else None
            )
            adapter = self.adapter
            if self._seen is not None:
                # Columnar dedup: one boolean gather finds the decodes
                # that are first deliveries; duplicate decodes cost no
                # Python (see the _seen comment in __init__).
                for t in rows:
                    lo, hi = rx_bounds[t], rx_bounds[t + 1]
                    channel = self.channels[t]
                    channel._slot_count += 1
                    channel.total_transmissions += int(tx_ids[t].size)
                    channel.total_receptions += int(hi - lo)
                fresh = ~self._seen[hit_cells, hit_sender]
                fr_cells = hit_cells[fresh]
                if fr_cells.size:
                    fr_sender = hit_sender[fresh]
                    self._seen[fr_cells, fr_sender] = True
                    fr_trial = fr_cells // n
                    fr_node = fr_cells - fr_trial * n
                    fr_sender_cells = fr_trial * n + fr_sender
                    mids = self._tx_mid[fr_sender_cells]
                    slots = self.slots
                    traces = self.traces
                    for t, listener, mid in zip(
                        fr_trial.tolist(), fr_node.tolist(), mids.tolist()
                    ):
                        traces[t].events.append(
                            make((slots[t], "rcv", listener, mid))
                        )
                    if adapter is not None:
                        adapter.on_rcv(fr_cells, fr_sender_cells)
            else:
                rcv_cells: list[int] = []
                rcv_senders: list[int] = []
                for t in rows:
                    lo, hi = rx_bounds[t], rx_bounds[t + 1]
                    slot = self.slots[t]
                    channel = self.channels[t]
                    # finalize_slot's bookkeeping, no dict traffic.
                    channel._slot_count += 1
                    channel.total_transmissions += int(tx_ids[t].size)
                    channel.total_receptions += int(hi - lo)
                    if lo == hi:
                        continue
                    current = self._current[t]
                    events = self.traces[t].events
                    delivered = self._delivered[t]
                    record = self.record_physical
                    base = t * n
                    for listener, sender in zip(
                        hit_listener[lo:hi].tolist(),
                        hit_sender[lo:hi].tolist(),
                    ):
                        payload = current[sender]
                        if record:
                            events.append(
                                make(
                                    (slot, "receive", listener,
                                     (sender, payload))
                                )
                            )
                        key = (listener, payload.mid)
                        if payload.origin != listener and key not in delivered:
                            delivered.add(key)
                            events.append(
                                make((slot, "rcv", listener, payload.mid))
                            )
                            if adapter is not None:
                                rcv_cells.append(base + listener)
                                rcv_senders.append(base + sender)
                if adapter is not None and rcv_cells:
                    adapter.on_rcv(
                        np.asarray(rcv_cells, dtype=np.intp),
                        np.asarray(rcv_senders, dtype=np.intp),
                    )
            if feedback is not None and feedback.size:
                self.kernel.notify(feedback)

        # Acked broadcasts detach only now (see the ack comment above);
        # staged rebroadcasts swap in afterwards — a cell may ack and
        # rebroadcast within one slot.  Detach only the message that
        # was acked: a reception during this very slot may already have
        # started the cell's next broadcast (direct write).
        for t, node, message in acked:
            if self._current[t][node] is message:
                self._current[t][node] = None
        if self._staged_current:
            for t, node, message in self._staged_current:
                self._attach_message(t, node, message)
            self._staged_current.clear()
        if self.adapter is not None:
            self.adapter.flush()
        for t in rows:
            self.slots[t] += 1

    def _deliver_filtered(
        self,
        rows,
        tx_ids,
        hit_trial,
        hit_listener,
        hit_sender,
        rx_bounds,
        feedback_ok,
    ) -> None:
        """Delivery through ``Channel.finalize_slot`` for batches with
        failure injection: the adversary filters the same receptions
        dict in the same order as the object runtime (consuming its RNG
        stream identically), and wakeup / rcv / rc feedback see only the
        surviving receptions."""
        n = self._n
        adapter = self.adapter
        feedback_cells: list[int] = []
        for t in rows:
            lo, hi = rx_bounds[t], rx_bounds[t + 1]
            raw = dict(
                zip(hit_listener[lo:hi].tolist(), hit_sender[lo:hi].tolist())
            )
            current = self._current[t]
            sent = {
                node: current[node] for node in tx_ids[t].tolist()
            }
            outcome = self.channels[t].finalize_slot(sent, tx_ids[t], raw)
            slot = self.slots[t]
            trace = self.traces[t]
            delivered = self._delivered[t]
            base = t * n
            # Conditional wakeups first (surviving receptions, delivery
            # order), then the rcv processing — per-kind streams match
            # the object runtime's per-listener interleave.
            woken = [
                base + listener
                for listener in outcome.receptions
                if not self._awake[base + listener]
            ]
            if woken:
                woken_arr = np.asarray(woken, dtype=np.intp)
                self._awake[woken_arr] = True
                for cell in woken:
                    trace.record(slot, "wake", cell - base)
                if adapter is not None:
                    adapter.on_wake(woken_arr)
            rcv_cells: list[int] = []
            rcv_senders: list[int] = []
            for listener, (sender, payload) in outcome.receptions.items():
                cell = base + listener
                if self.record_physical:
                    trace.events.append(
                        TraceEvent(slot, "receive", listener, (sender, payload))
                    )
                key = (listener, payload.mid)
                if payload.origin != listener and key not in delivered:
                    delivered.add(key)
                    trace.record(slot, "rcv", listener, payload.mid)
                    if adapter is not None:
                        rcv_cells.append(cell)
                        rcv_senders.append(base + sender)
                if feedback_ok is not None and feedback_ok[cell]:
                    feedback_cells.append(cell)
            if adapter is not None and rcv_cells:
                adapter.on_rcv(
                    np.asarray(rcv_cells, dtype=np.intp),
                    np.asarray(rcv_senders, dtype=np.intp),
                )
        if feedback_cells:
            self.kernel.notify(np.asarray(feedback_cells, dtype=np.intp))

    # -- native backend dispatch -------------------------------------------

    def _native_ok(self) -> bool:
        """Can the *next* slot run through the fused C kernel?

        The compiled loop covers exactly the counters-only deterministic
        fast path — dense physics, or sparse-exact over one shared
        resolver (the CSR decode path): everything else — physical
        tracing, adversaries, approximate-sparse / stochastic / dynamic
        physics, churn masks, attached adapters, kernels without native
        columns — takes the numpy step.  Checked per stride because
        eligibility can change mid-batch (e.g. an adapter attaching,
        churn starting).
        """
        return (
            self._use_native
            and self.adapter is None
            and not self._has_adversary
            and (not self._sparse or self._sparse_native_ok)
            and not self._stochastic
            and not self._dynamic
            and self._alive is None
            and not self.record_physical
            and self._seen is not None
            and hasattr(self.kernel, "native_columns")
        )

    def _advance_native(self, k: int, rows: list[int]) -> int:
        from repro.native.stepper import NativeStepper

        if self._native_stepper is None:
            self._native_stepper = NativeStepper(
                self, threads=self._native_threads
            )
        done = self._native_stepper.advance(k, rows)
        self.native_slots += done
        return done

    def advance_slots(
        self, k: int, rows: Sequence[int] | None = None
    ) -> None:
        """Advance the given trials (default: all) by ``k`` slots.

        The multi-slot form of :meth:`advance`: eligible stretches run
        through the fused native kernel in one call, everything else
        falls back to the per-slot numpy step — slot for slot the two
        backends produce identical state, so mixing them inside one
        stride is safe.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        rows = list(range(self.trials)) if rows is None else list(rows)
        remaining = int(k)
        while remaining > 0:
            if self._native_ok():
                done = self._advance_native(remaining, rows)
                if done:
                    remaining -= done
                    continue
                # 0 = budget exhausted; the numpy step raises the
                # budget RuntimeError with its usual message.
            self.advance(rows)
            remaining -= 1

    # -- single-batch drivers (Runtime-compatible) -------------------------

    def run(self, slots: int) -> None:
        """Advance every trial a fixed number of slots."""
        if slots < 0:
            raise ValueError("slots must be >= 0")
        self.advance_slots(slots)

    def run_until(
        self,
        predicate: Callable[["VectorRuntime"], bool],
        check_every: int = 1,
    ) -> int:
        """Advance all trials until ``predicate(self)`` holds.

        Same contract as :meth:`Runtime.run_until` (budget exhaustion
        raises ``RuntimeError``); returns trial 0's slot count.
        """
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        while not predicate(self):
            self.advance_slots(check_every)
        return self.slot
