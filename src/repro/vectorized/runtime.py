"""The columnar population runtime.

:class:`VectorRuntime` is the fast-path counterpart of
:class:`~repro.simulation.runtime.Runtime`: it advances the MAC
populations of many batched trials one slot at a time, but where the
object runtime makes N ``on_slot`` calls per trial per slot, this one
makes a fixed number of array operations over the ``trials × n``
lattice — the per-node protocol state lives in a columnar kernel
(:mod:`repro.vectorized.kernels`), the per-slot uniforms come from a
bulk pre-draw (:class:`~repro.simulation.rng.NodeUniformBuffer`), and
the SINR physics of the whole batch resolves through the flat-index
mode of :func:`~repro.sinr.physics.successful_receptions_batch`.

Equivalence contract
--------------------
A trial advanced here is **decode-for-decode identical** to the same
trial on the object runtime: same per-node RNG streams (drawn in the
same order), same transmit decisions, same receptions, same
wake/bcast/rcv/ack slots, same channel counters, and the same
:class:`~repro.simulation.trace.EventTrace` content.  The only visible
difference is intra-slot event interleaving: the object runtime
interleaves events node by node, while this runtime records each slot's
events grouped by kind (all transmits, then acks, then the delivery
events) — within one kind the order is identical, and every
measurement in :mod:`repro.core.spec` is ordering-free within a slot.

Scope: homogeneous single-shot broadcast populations — every node runs
the same Decay/Ack protocol with a bare ``MacClient``, each node
broadcasts at most once (the Table-1 and Theorem-8.1 experiment shape),
sleeping nodes are pure listeners woken by their first decode
(conditional wakeup, Definition 4.4).  Protocol stacks with reactive
clients (BSMB/BMMB relays, consensus) stay on the object runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.events import BcastMessage, MessageRegistry
from repro.simulation.rng import NodeUniformBuffer, spawn_node_rngs
from repro.simulation.trace import EventTrace, TraceEvent
from repro.sinr.channel import Channel
from repro.sinr.physics import batch_tensor, successful_receptions_batch

__all__ = ["VectorRuntime"]

_EMPTY_IDS = np.empty(0, dtype=np.intp)


class VectorRuntime:
    """Lockstep columnar executor for a batch of homogeneous trials.

    Parameters
    ----------
    channels:
        One :class:`~repro.sinr.channel.Channel` per trial; all must
        share the node count and SINR parameters (the engine's batch
        key).  Each trial keeps its own adversary, counters and trace.
    kernel:
        A columnar protocol kernel sized for ``len(channels)`` trials of
        ``n`` nodes (:class:`~repro.vectorized.kernels.DecayKernel` or
        :class:`~repro.vectorized.kernels.AckKernel`).
    seeds:
        Per-trial master seeds; node generators are spawned exactly as
        the object runtime spawns them, so streams line up node for
        node.
    max_slots:
        Per-trial slot budget (int applies to all trials); exceeding it
        raises ``RuntimeError`` like the object runtime's budget check.
    record_physical:
        When True (default), every physical transmit/receive is traced.
    """

    def __init__(
        self,
        channels: Sequence[Channel],
        kernel,
        seeds: Sequence[int | None],
        max_slots: Sequence[int] | int = 2_000_000,
        record_physical: bool = True,
        chunk: int = 512,
    ) -> None:
        self.channels = list(channels)
        if not self.channels:
            raise ValueError("need at least one trial channel")
        trials = len(self.channels)
        if len(seeds) != trials:
            raise ValueError("need one seed per trial")
        n = self.channels[0].n
        params = self.channels[0].params
        for channel in self.channels[1:]:
            if channel.n != n or channel.params != params:
                raise ValueError(
                    "all trials of one vector batch must share node "
                    "count and SINR parameters"
                )
        kernel_cells = len(kernel.configs) * kernel.n
        if kernel.n != n or kernel_cells != trials * n:
            raise ValueError("kernel lattice does not match the batch")
        self.kernel = kernel
        self.params = params
        self.trials = trials
        self._n = n
        self.record_physical = bool(record_physical)
        if isinstance(max_slots, int):
            max_slots = [max_slots] * trials
        self.max_slots = [int(m) for m in max_slots]
        if len(self.max_slots) != trials:
            raise ValueError("need one max_slots per trial")

        self._has_adversary = any(
            c.adversary is not None for c in self.channels
        )
        self._dist_stack = batch_tensor(
            [c.distances for c in self.channels]
        )
        self._gain_stack = batch_tensor([c.gains for c in self.channels])

        rngs = [
            rng
            for seed in seeds
            for rng in spawn_node_rngs(n, seed)
        ]
        self._uniforms = NodeUniformBuffer(rngs, chunk=chunk)

        self.traces = [EventTrace() for _ in range(trials)]
        self.registries = [MessageRegistry() for _ in range(trials)]
        self.slots = [0] * trials
        self._awake = np.zeros(trials * n, dtype=bool)
        self._busy = np.zeros(trials * n, dtype=bool)
        self._has_broadcast = np.zeros(trials * n, dtype=bool)
        self._current: list[list[BcastMessage | None]] = [
            [None] * n for _ in range(trials)
        ]
        self._delivered: list[set[tuple[int, int]]] = [
            set() for _ in range(trials)
        ]

    # -- population facts --------------------------------------------------

    @property
    def n(self) -> int:
        """Nodes per trial."""
        return self._n

    @property
    def slot(self) -> int:
        """Current slot of trial 0 (the single-trial convenience view)."""
        return self.slots[0]

    @property
    def trace(self) -> EventTrace:
        """Trace of trial 0 (the single-trial convenience view)."""
        return self.traces[0]

    def busy_nodes(self, trial: int) -> np.ndarray:
        """Ids of the trial's nodes with a broadcast in flight."""
        row = self._busy[trial * self._n : (trial + 1) * self._n]
        return np.flatnonzero(row)

    def any_busy(self, trial: int, nodes=None) -> bool:
        """True while any (given) node of the trial is broadcasting."""
        row = self._busy[trial * self._n : (trial + 1) * self._n]
        if nodes is None:
            return bool(row.any())
        return bool(row[np.asarray(list(nodes), dtype=np.intp)].any())

    # -- environment inputs ------------------------------------------------

    def wake_node(self, trial: int, node: int) -> None:
        """Wake one node (environment input or conditional wakeup)."""
        cell = trial * self._n + node
        if not self._awake[cell]:
            self._awake[cell] = True
            self.traces[trial].record(self.slots[trial], "wake", node)

    def bcast(self, trial: int, node: int, payload: Any = None) -> BcastMessage:
        """Begin the node's (single) local broadcast, as MacLayer.bcast."""
        cell = trial * self._n + node
        if self._busy[cell]:
            raise RuntimeError(
                f"node {node} of trial {trial} is already broadcasting"
            )
        if self._has_broadcast[cell]:
            raise NotImplementedError(
                "columnar kernels support one broadcast per node; "
                "rebroadcasting nodes need the object runtime"
            )
        message = self.registries[trial].mint(node, payload)
        self.wake_node(trial, node)
        self._has_broadcast[cell] = True
        self._busy[cell] = True
        self._current[trial][node] = message
        self.traces[trial].record(self.slots[trial], "bcast", node, message.mid)
        return message

    # -- the slot loop -----------------------------------------------------

    def advance(self, rows: Sequence[int] | None = None) -> None:
        """Advance the given trials (default: all) by one slot."""
        n = self._n
        trials = self.trials
        rows = list(range(trials)) if rows is None else list(rows)
        for t in rows:
            if self.slots[t] >= self.max_slots[t]:
                raise RuntimeError(
                    f"slot budget exhausted ({self.max_slots[t]}); "
                    "protocol appears not to terminate"
                )

        live = np.zeros(trials, dtype=bool)
        live[rows] = True
        idx = np.flatnonzero(self._busy & np.repeat(live, n))

        # Phase 1: every broadcasting cell decides transmit/listen in
        # one kernel step (drawing its node's next private uniform).
        uniforms = self._uniforms.take(idx)
        transmit, halted = self.kernel.step(idx, uniforms)
        tx_cells = idx[transmit]
        ack_cells = idx[halted]

        tx_trial = tx_cells // n
        tx_node = tx_cells - tx_trial * n
        bounds = np.searchsorted(tx_trial, np.arange(trials + 1))
        make = TraceEvent._make  # tuple.__new__, ~4x cheaper per event
        tx_ids: list[np.ndarray] = [_EMPTY_IDS] * trials
        for t in rows:
            lo, hi = bounds[t], bounds[t + 1]
            if lo == hi:
                continue
            nodes = tx_node[lo:hi]
            tx_ids[t] = nodes
            if self.record_physical:
                current = self._current[t]
                events = self.traces[t].events
                slot = self.slots[t]
                for node in nodes.tolist():
                    events.append(
                        make((slot, "transmit", node, current[node]))
                    )

        # Acknowledgments fire in the same slot the budget runs out,
        # with the final transmission still on the air; the message
        # stays attached until after delivery so this slot's receptions
        # of it still resolve their payload (the object path snapshots
        # payloads into the transmissions dict for the same reason).
        if ack_cells.size:
            ack_trial = ack_cells // n
            ack_node = ack_cells - ack_trial * n
            self._busy[ack_cells] = False
            for t, node in zip(ack_trial.tolist(), ack_node.tolist()):
                message = self._current[t][node]
                self.traces[t].record(self.slots[t], "ack", node, message.mid)
        else:
            ack_trial = ack_node = None

        # One flat SINR reduction for the whole batch.
        hit_trial, hit_listener, hit_sender = successful_receptions_batch(
            self.params,
            self._dist_stack,
            tx_ids,
            gains=self._gain_stack,
            flat=True,
        )

        rx_bounds = np.searchsorted(hit_trial, np.arange(trials + 1))
        if self._has_adversary:
            self._deliver_filtered(
                rows, tx_ids, hit_trial, hit_listener, hit_sender, rx_bounds
            )
        else:
            # Fast delivery (no failure injection anywhere in the
            # batch): every raw decode is a delivered reception, so
            # conditional wakeup and rc feedback vectorize over the
            # flat hit arrays and only the per-reception trace/dedup
            # work stays in Python.
            hit_cells = hit_trial * n + hit_listener
            woken = hit_cells[~self._awake[hit_cells]]
            if woken.size:
                self._awake[woken] = True
            feedback = (
                hit_cells[self._busy[hit_cells]]
                if self.kernel.needs_reception_feedback
                else None
            )
            for t in rows:
                lo, hi = rx_bounds[t], rx_bounds[t + 1]
                slot = self.slots[t]
                self.slots[t] = slot + 1
                channel = self.channels[t]
                # finalize_slot's bookkeeping without the dict traffic.
                channel._slot_count += 1
                channel.total_transmissions += int(tx_ids[t].size)
                channel.total_receptions += int(hi - lo)
                if lo == hi:
                    continue
                current = self._current[t]
                events = self.traces[t].events
                delivered = self._delivered[t]
                record = self.record_physical
                for listener, sender in zip(
                    hit_listener[lo:hi].tolist(), hit_sender[lo:hi].tolist()
                ):
                    payload = current[sender]
                    if record:
                        events.append(
                            make((slot, "receive", listener, (sender, payload)))
                        )
                    key = (listener, payload.mid)
                    if payload.origin != listener and key not in delivered:
                        delivered.add(key)
                        events.append(make((slot, "rcv", listener, payload.mid)))
            if woken.size:
                wk_trial = woken // n
                wk_node = woken - wk_trial * n
                for t, node in zip(wk_trial.tolist(), wk_node.tolist()):
                    # The wake belongs to the slot just resolved.
                    self.traces[t].record(self.slots[t] - 1, "wake", node)
            if feedback is not None and feedback.size:
                self.kernel.notify(feedback)

        # Acked broadcasts detach only now (see the ack comment above).
        if ack_trial is not None:
            for t, node in zip(ack_trial.tolist(), ack_node.tolist()):
                self._current[t][node] = None

    def _deliver_filtered(
        self, rows, tx_ids, hit_trial, hit_listener, hit_sender, rx_bounds
    ) -> None:
        """Delivery through ``Channel.finalize_slot`` for batches with
        failure injection: the adversary filters the same receptions
        dict in the same order as the object runtime (consuming its RNG
        stream identically), and wakeup / rcv / rc feedback see only the
        surviving receptions."""
        n = self._n
        feedback_cells: list[int] = []
        needs_feedback = self.kernel.needs_reception_feedback
        for t in rows:
            lo, hi = rx_bounds[t], rx_bounds[t + 1]
            raw = dict(
                zip(hit_listener[lo:hi].tolist(), hit_sender[lo:hi].tolist())
            )
            current = self._current[t]
            sent = {
                node: current[node] for node in tx_ids[t].tolist()
            }
            outcome = self.channels[t].finalize_slot(sent, tx_ids[t], raw)
            slot = self.slots[t]
            self.slots[t] = slot + 1
            trace = self.traces[t]
            delivered = self._delivered[t]
            base = t * n
            for listener, (sender, payload) in outcome.receptions.items():
                cell = base + listener
                if not self._awake[cell]:
                    self._awake[cell] = True
                    trace.record(slot, "wake", listener)
                if self.record_physical:
                    trace.events.append(
                        TraceEvent(slot, "receive", listener, (sender, payload))
                    )
                key = (listener, payload.mid)
                if payload.origin != listener and key not in delivered:
                    delivered.add(key)
                    trace.record(slot, "rcv", listener, payload.mid)
                if needs_feedback and self._busy[cell]:
                    feedback_cells.append(cell)
        if feedback_cells:
            self.kernel.notify(np.asarray(feedback_cells, dtype=np.intp))

    # -- single-batch drivers (Runtime-compatible) -------------------------

    def run(self, slots: int) -> None:
        """Advance every trial a fixed number of slots."""
        if slots < 0:
            raise ValueError("slots must be >= 0")
        for _ in range(slots):
            self.advance()

    def run_until(
        self,
        predicate: Callable[["VectorRuntime"], bool],
        check_every: int = 1,
    ) -> int:
        """Advance all trials until ``predicate(self)`` holds.

        Same contract as :meth:`Runtime.run_until` (budget exhaustion
        raises ``RuntimeError``); returns trial 0's slot count.
        """
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        while not predicate(self):
            for _ in range(check_every):
                self.advance()
        return self.slot
