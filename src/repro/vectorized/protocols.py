"""Columnar client-state kernels for the absMAC protocol layer.

PR 2's kernels stopped at the MAC primitives: the columnar fast path
could advance homogeneous Decay/Ack populations whose clients were bare
``MacClient`` listeners.  This module extends the struct-of-arrays
treatment one layer up the paper's stack, to the protocols that *use*
the absMAC (Khabbazian et al. [37] via Theorem 12.6/12.7, Newport [44]
via Corollary 5.5):

* :class:`BsmbClients` — single-message broadcast: a ``delivered_slot``
  column records each node's first rcv, and the relay-once rule becomes
  one masked bcast over the freshly delivered cells;
* :class:`BmmbClients` — multi-message broadcast: the per-node FIFO
  ``bcastq`` becomes a padded ``(cells, k)`` index array with head/tail
  pointers, and the dedup set becomes a ``has_token`` bit matrix;
* :class:`ConsensusClients` — flood-based consensus: the max-(id, value)
  wave state lives in ``best_id``/``best_value`` columns, wave counting
  and the decide rule in ``waves_done``/``decision`` columns.

The :class:`VectorMacAdapter` is the seam that keeps the protocol
modules MAC-agnostic, exactly like :class:`~repro.absmac.layer.MacClient`
does for the object stack: the
:class:`~repro.vectorized.runtime.VectorRuntime` reports MAC events
(wake / rcv / ack) as *cell index arrays*, the adapter fans them into
the installed client kernel's whole-population column updates, and the
client kernel requests new broadcasts back through :meth:`VectorMacAdapter.bcast`
— which works over any MAC kernel that supports
:meth:`~repro.vectorized.kernels.AckKernel.reset` (fresh engine per
broadcast, the object MACs' ``_start_broadcast`` rule).

Equivalence contract (pinned by ``tests/test_vectorized_protocols.py``):
every column update reproduces the corresponding object client's
transition on the same event in the same order, so traces, RNG streams
and :class:`~repro.experiments.plans.TrialResult`\\ s stay bit-identical
to :mod:`repro.protocols.bsmb` / :mod:`repro.protocols.bmmb` /
:mod:`repro.protocols.consensus` driven by the object runtime.

Intra-slot ordering mirrors the object runtime's two phases: ack-driven
effects (wave/queue advancement, rebroadcasts) run in ascending node
order during phase 1, delivery-driven effects (wakes, then rcv updates
and relays) run in delivery order during phase 2.  Writes to the
*transmit-side* columns (``tx_token``, ``tx_id``/``tx_value``) from
phase 1 are staged and applied only after delivery, because this slot's
receivers must still observe the payload that was on the air — the
columnar form of the object runtime snapshotting payloads into its
transmissions dict.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.experiments.workloads import consensus_outcome

__all__ = [
    "VectorMacAdapter",
    "BsmbClients",
    "BmmbClients",
    "ConsensusClients",
]


class VectorMacAdapter:
    """Maps the absMAC client event interface onto array operations.

    One adapter serves one :class:`~repro.vectorized.runtime.VectorRuntime`
    batch.  The runtime calls the ``on_*`` methods with flat lattice-cell
    index arrays (``cell = trial * n + node``), in the object runtime's
    event order; the installed client kernel updates its state columns
    and may call :meth:`bcast` / :meth:`emit` back.  ``install`` is
    separate from construction because client kernels need the adapter
    (their MAC handle) while they build their columns.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.client = None

    def install(self, client) -> "VectorMacAdapter":
        """Wire a client kernel in and register with the runtime."""
        self.client = client
        self.runtime.attach_adapter(self)
        return self

    # -- runtime-facing event fan-in ---------------------------------------

    def on_wake(self, cells: np.ndarray) -> None:
        """Conditional wakeup: first decode woke these sleeping cells."""
        self.client.on_mac_start(cells)

    def on_ack(self, cells: np.ndarray) -> None:
        """These cells' broadcasts completed this slot (ascending order)."""
        self.client.on_ack(cells)

    def on_rcv(self, cells: np.ndarray, sender_cells: np.ndarray) -> None:
        """Deduplicated deliveries of this slot, in delivery order."""
        self.client.on_rcv(cells, sender_cells)

    def flush(self) -> None:
        """End of slot: apply the client's staged transmit-column writes."""
        self.client.flush()

    # -- client-facing population operations -------------------------------

    def slot_of(self, cells: np.ndarray) -> np.ndarray:
        """Current slot of each cell's trial, aligned with ``cells``."""
        slots = np.asarray(self.runtime.slots, dtype=np.int64)
        return slots[cells // self.runtime.n]

    def busy(self, cells: np.ndarray) -> np.ndarray:
        """Broadcast-in-flight flags, aligned with ``cells``."""
        return self.runtime.busy_cells(cells)

    def bcast(self, cells: np.ndarray, payloads: Sequence[Any]) -> None:
        """Begin one broadcast per cell (``payloads`` aligned with cells).

        Cells must be idle; the runtime mints the messages, records the
        ``bcast`` trace events and resets the MAC kernel state of every
        rebroadcasting cell to a fresh engine in one batched reset,
        exactly as the object MACs do per broadcast.  During phase 1
        the in-flight message swap is staged until after delivery (see
        the module docstring).
        """
        self.runtime.bcast_cells(cells, payloads)

    def emit(self, cells: np.ndarray, kind: str, values) -> None:
        """Record one protocol-output trace event per cell (e.g. decide)."""
        runtime = self.runtime
        n = runtime.n
        for cell, value in zip(cells.tolist(), values.tolist()):
            trial, node = divmod(cell, n)
            runtime.traces[trial].record(
                runtime.slots[trial], kind, node, value
            )


class BsmbClients:
    """Columnar :class:`~repro.protocols.bsmb.BsmbClient` population.

    ``delivered_slot[cell]`` (−1 = not yet) is the quantity global-SMB
    completion is measured by; ``relayed`` enforces the relay-once rule
    of [37].  The protocol has no transmit-side payload columns: every
    relay re-broadcasts the trial's single message payload.
    """

    def __init__(self, adapter: VectorMacAdapter) -> None:
        self.adapter = adapter
        runtime = adapter.runtime
        self._n = runtime.n
        size = runtime.trials * runtime.n
        self.delivered_slot = np.full(size, -1, dtype=np.int64)
        self.relayed = np.zeros(size, dtype=bool)
        self.payloads: list[Any] = [None] * runtime.trials

    def start_as_source(self, trial: int, node: int, payload: Any) -> None:
        """Make ``node`` the trial's i0: it holds and broadcasts."""
        cell = trial * self._n + node
        self.payloads[trial] = payload
        self.delivered_slot[cell] = 0
        self.relayed[cell] = True
        self.adapter.bcast(
            np.array([cell], dtype=np.intp), [payload]
        )

    def on_mac_start(self, cells: np.ndarray) -> None:
        """Woken listeners have nothing pending (rcv arrives next)."""

    def on_rcv(self, cells: np.ndarray, sender_cells: np.ndarray) -> None:
        fresh = cells[self.delivered_slot[cells] < 0]
        if fresh.size == 0:
            return
        self.delivered_slot[fresh] = self.adapter.slot_of(fresh)
        # First delivery at a non-source node: deliver upward and relay
        # exactly once.  A first-rcv node cannot be busy (it has never
        # broadcast), so the object client's idle check always passes.
        relay = fresh[~self.relayed[fresh]]
        if relay.size == 0:
            return
        self.relayed[relay] = True
        trials = (relay // self._n).tolist()
        self.adapter.bcast(relay, [self.payloads[t] for t in trials])

    def on_ack(self, cells: np.ndarray) -> None:
        """BSMB clients ignore acks (the relay already happened)."""

    def flush(self) -> None:
        """No transmit-side columns to stage."""

    def done(self, trial: int) -> bool:
        """True once every node of the trial delivered the message."""
        row = self.delivered_slot[trial * self._n : (trial + 1) * self._n]
        return bool((row >= 0).all())


class BmmbClients:
    """Columnar :class:`~repro.protocols.bmmb.BmmbClient` population.

    Tokens are indexed per trial (position in the trial's arrival
    order); ``has_token`` is the ``rcvd`` dedup set, ``delivered_slot``
    the delivery map, and the FIFO ``bcastq`` is a ``(cells, k)`` index
    array with head/tail pointers — each token enters a cell's queue at
    most once, so capacity ``k`` never wraps.  Trials of one batch may
    carry different ``k`` (the Table-1 MMB sweep); columns pad to the
    largest.
    """

    def __init__(
        self, adapter: VectorMacAdapter, token_lists: Sequence[Sequence[Any]]
    ) -> None:
        self.adapter = adapter
        runtime = adapter.runtime
        if len(token_lists) != runtime.trials:
            raise ValueError("need one token list per trial")
        self._n = runtime.n
        self.tokens = [list(tokens) for tokens in token_lists]
        self._index = [
            {token: k for k, token in enumerate(tokens)}
            for tokens in self.tokens
        ]
        kmax = max((len(t) for t in self.tokens), default=0)
        size = runtime.trials * runtime.n
        self.has_token = np.zeros((size, max(kmax, 1)), dtype=bool)
        self.delivered_slot = np.full(
            (size, max(kmax, 1)), -1, dtype=np.int64
        )
        self.queue = np.full((size, max(kmax, 1)), -1, dtype=np.int64)
        self.q_head = np.zeros(size, dtype=np.int64)
        self.q_tail = np.zeros(size, dtype=np.int64)
        self.tx_token = np.full(size, -1, dtype=np.int64)
        self._staged: list[tuple[np.ndarray, np.ndarray]] = []

    def arrive(self, trial: int, node: int, token: Any) -> None:
        """arrive(m): the environment injects ``token`` at ``node``."""
        cell = trial * self._n + node
        tok = self._index[trial][token]
        if self.has_token[cell, tok]:
            return
        self.has_token[cell, tok] = True
        self.delivered_slot[cell, tok] = self.adapter.runtime.slots[trial]
        self.queue[cell, self.q_tail[cell]] = tok
        self.q_tail[cell] += 1
        self._pump(np.array([cell], dtype=np.intp), staged=False)

    def on_mac_start(self, cells: np.ndarray) -> None:
        """Woken listeners have empty queues (tokens arrive via rcv)."""

    def on_rcv(self, cells: np.ndarray, sender_cells: np.ndarray) -> None:
        toks = self.tx_token[sender_cells]
        fresh = ~self.has_token[cells, toks]
        cells, toks = cells[fresh], toks[fresh]
        if cells.size == 0:
            return
        self.has_token[cells, toks] = True
        self.delivered_slot[cells, toks] = self.adapter.slot_of(cells)
        self.queue[cells, self.q_tail[cells]] = toks
        self.q_tail[cells] += 1
        self._pump(cells, staged=False)

    def on_ack(self, cells: np.ndarray) -> None:
        self._pump(cells, staged=True)

    def _pump(self, cells: np.ndarray, staged: bool) -> None:
        """Broadcast the queue head of every idle cell with a backlog."""
        mask = ~self.adapter.busy(cells)
        mask &= self.q_tail[cells] > self.q_head[cells]
        go = cells[mask]
        if go.size == 0:
            return
        toks = self.queue[go, self.q_head[go]]
        self.q_head[go] += 1
        trials = (go // self._n).tolist()
        self.adapter.bcast(
            go,
            [self.tokens[t][k] for t, k in zip(trials, toks.tolist())],
        )
        if staged:
            self._staged.append((go, toks))
        else:
            self.tx_token[go] = toks

    def flush(self) -> None:
        for go, toks in self._staged:
            self.tx_token[go] = toks
        self._staged.clear()

    def done(self, trial: int) -> bool:
        """True once every node of the trial delivered every token."""
        k = len(self.tokens[trial])
        if k == 0:
            return True
        block = self.has_token[trial * self._n : (trial + 1) * self._n, :k]
        return bool(block.all())


class ConsensusClients:
    """Columnar :class:`~repro.protocols.consensus.ConsensusClient`
    population: flood the largest (id, value) pair via acknowledged
    broadcast waves, decide after ``waves`` completed waves."""

    def __init__(
        self,
        adapter: VectorMacAdapter,
        waves: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> None:
        self.adapter = adapter
        runtime = adapter.runtime
        n = runtime.n
        if len(waves) != runtime.trials or len(values) != runtime.trials:
            raise ValueError("need waves and values per trial")
        self._n = n
        size = runtime.trials * n
        for trial_values in values:
            if any(v not in (0, 1) for v in trial_values):
                raise ValueError("initial values are binary (paper §4.5)")
        for w in waves:
            if w < 1:
                raise ValueError("waves must be >= 1")
        self.waves = np.repeat(
            np.asarray(waves, dtype=np.int64), n
        )
        self.best_id = np.tile(np.arange(n, dtype=np.int64), runtime.trials)
        self.best_value = np.concatenate(
            [np.asarray(v, dtype=np.int64) for v in values]
        )
        self.waves_done = np.zeros(size, dtype=np.int64)
        self.decision = np.full(size, -1, dtype=np.int64)
        self.decision_slot = np.full(size, -1, dtype=np.int64)
        self.tx_id = np.full(size, -1, dtype=np.int64)
        self.tx_value = np.full(size, -1, dtype=np.int64)
        self._staged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def _bcast_best(self, cells: np.ndarray, staged: bool) -> None:
        ids = self.best_id[cells]
        vals = self.best_value[cells]
        self.adapter.bcast(
            cells, list(zip(ids.tolist(), vals.tolist()))
        )
        if staged:
            self._staged.append((cells, ids, vals))
        else:
            self.tx_id[cells] = ids
            self.tx_value[cells] = vals

    def start(self, trial: int) -> None:
        """Wake every node; each starts its first wave immediately."""
        runtime = self.adapter.runtime
        base = trial * self._n
        for node in range(self._n):
            runtime.wake_node(trial, node)
        self._bcast_best(
            np.arange(base, base + self._n, dtype=np.intp), staged=False
        )

    def on_mac_start(self, cells: np.ndarray) -> None:
        """A node joining mid-run starts flooding its current best."""
        self._bcast_best(cells, staged=False)

    def on_rcv(self, cells: np.ndarray, sender_cells: np.ndarray) -> None:
        cand = self.tx_id[sender_cells]
        upd = cand > self.best_id[cells]
        cells, senders = cells[upd], sender_cells[upd]
        self.best_id[cells] = self.tx_id[senders]
        self.best_value[cells] = self.tx_value[senders]

    def on_ack(self, cells: np.ndarray) -> None:
        self.waves_done[cells] += 1
        deciding = self.waves_done[cells] >= self.waves[cells]
        decide = cells[deciding]
        if decide.size:
            values = self.best_value[decide]
            self.decision[decide] = values
            self.decision_slot[decide] = self.adapter.slot_of(decide)
            self.adapter.emit(decide, "decide", values)
        again = cells[~deciding]
        if again.size:
            self._bcast_best(again, staged=True)

    def flush(self) -> None:
        for cells, ids, vals in self._staged:
            self.tx_id[cells] = ids
            self.tx_value[cells] = vals
        self._staged.clear()

    def done(self, trial: int) -> bool:
        """True once every node of the trial decided."""
        row = self.decision[trial * self._n : (trial + 1) * self._n]
        return bool((row >= 0).all())

    def finalize(self, trial: int, completion: int) -> dict[str, Any]:
        """The consensus workload's result metrics for one trial."""
        base = trial * self._n
        decided = self.decision[base : base + self._n].tolist()
        decisions = tuple(
            (node, value if value >= 0 else None)
            for node, value in enumerate(decided)
        )
        return consensus_outcome(decisions, completion)
