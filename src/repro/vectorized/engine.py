"""Plan-level entry points of the columnar fast path.

:func:`vector_eligible` decides whether a
:class:`~repro.experiments.plans.TrialPlan` can run columnar;
:func:`run_vector_group` advances one batch-compatible group of eligible
plans in lockstep on a :class:`~repro.vectorized.runtime.VectorRuntime`,
reproducing the object engine's phase machinery (done-predicate cadence,
``extra_slots`` observation tail, slot budgets) so the
:class:`~repro.experiments.plans.TrialResult` of every plan is
dataclass-equal to what the object path produces.

Eligibility — all of:

* ``plan.stack`` is ``"decay"`` or ``"ack"`` (homogeneous populations
  whose per-node engines have columnar kernels);
* the plan's workload opted in via ``Workload.vector_ready`` — bare
  ``MacClient`` workloads (local_broadcast, fixed_slots) and the
  protocol workloads with columnar client populations (smb, mmb,
  consensus; :mod:`repro.vectorized.protocols`).

Everything else falls back to the object lockstep executor — the
selection happens inside :func:`repro.experiments.run_trials`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.harness import default_ack_config, default_decay_config
from repro.core.spec import (
    broadcast_intervals,
    measure_acknowledgments,
    measure_approximate_progress,
)
from repro.experiments.cache import (
    ArtifactCache,
    deployment_artifacts,
    resolve_deployment,
)
from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.workloads import Workload, get_workload
from repro.sinr.channel import Channel
from repro.vectorized.kernels import AckKernel, DecayKernel
from repro.vectorized.protocols import VectorMacAdapter
from repro.vectorized.runtime import VectorRuntime

__all__ = ["vector_eligible", "run_vector_group", "plan_protocol_config"]

_VECTOR_STACKS = ("decay", "ack")


def vector_eligible(plan: TrialPlan) -> bool:
    """May this plan run on the columnar fast path?"""
    if plan.stack not in _VECTOR_STACKS:
        return False
    return get_workload(plan.workload).vector_ready(plan)


def plan_protocol_config(plan: TrialPlan, cache: ArtifactCache | None = None):
    """The plan's effective Decay/Ack config — explicit, or the shared
    paper-formula default the harness builders use
    (:func:`~repro.analysis.harness.default_decay_config` /
    :func:`~repro.analysis.harness.default_ack_config`; bit-identical
    configuration is the first precondition of bit-identical runs)."""
    if plan.stack == "decay":
        if plan.decay_config is not None:
            return plan.decay_config
        points = resolve_deployment(plan.deployment, cache)
        return default_decay_config(len(points), plan.eps_ack)
    if plan.stack == "ack":
        if plan.ack_config is not None:
            return plan.ack_config
        points = resolve_deployment(plan.deployment, cache)
        metrics = deployment_artifacts(points, plan.params, cache).metrics
        return default_ack_config(metrics.lam, plan.eps_ack)
    raise ValueError(f"stack {plan.stack!r} has no columnar kernel")


@dataclass
class _VectorTrialState:
    """Phase bookkeeping for one trial — the columnar twin of the
    object engine's ``_TrialState`` (same transitions, same cadence)."""

    index: int  # position in the caller's plan list
    row: int  # position in the batch lattice
    plan: TrialPlan
    workload: Workload
    target: int | None
    phase: str = "run"  # run -> extra -> done
    steps: int = 0
    extra_left: int = 0
    completion: int | None = None
    result: TrialResult | None = field(default=None, repr=False)


def run_vector_group(
    group: Sequence[tuple[int, TrialPlan]],
    cache: ArtifactCache | None = None,
    native: bool | None = None,
    native_threads: int | None = None,
) -> dict[int, TrialResult]:
    """Advance one batch-compatible group of eligible plans in lockstep.

    ``group`` pairs each plan with its position in the caller's plan
    list, exactly like the object lockstep executor; all plans must
    share node count, SINR parameters, stack kind and workload (one
    columnar client population serves the whole batch).  ``native``
    selects the runtime backend and ``native_threads`` its trial-axis
    thread count (see :class:`VectorRuntime`); the results are
    bit-identical either way.
    """
    stack_kind = group[0][1].stack
    params = group[0][1].params
    workload_name = group[0][1].workload
    artifacts = []
    for _index, plan in group:
        if (
            plan.stack != stack_kind
            or plan.params != params
            or plan.workload != workload_name
        ):
            raise ValueError(
                "vector groups must share stack, params and workload"
            )
        points = resolve_deployment(plan.deployment, cache)
        artifacts.append(deployment_artifacts(points, plan.params, cache))

    n = artifacts[0].metrics.n
    configs = [plan_protocol_config(plan, cache) for _, plan in group]
    kernel_cls = DecayKernel if stack_kind == "decay" else AckKernel
    kernel = kernel_cls(configs, n)
    channels = [
        Channel(
            art.points,
            params,
            adversary=(
                plan.adversary.build(art.graph, plan.seed)
                if plan.adversary is not None
                else None
            ),
            distances=art.distances,
            gains=art.gains,
            topology=plan.topology,
        )
        for art, (_index, plan) in zip(artifacts, group)
    ]
    record_physical = group[0][1].record_physical
    for _index, plan in group:
        if plan.record_physical != record_physical:
            raise ValueError("vector groups must agree on record_physical")
    shared_workload = get_workload(workload_name)
    # When every trial's slot horizon is known up front (fixed-slot
    # workloads), pre-size the uniform buffers to it: each node lane
    # then refills at most once for the whole run, hoisting the
    # per-slot refill check out of the hot loop on both backends.  The
    # served streams are chunk-independent (one PCG64 output per
    # double), so draw-for-draw equivalence is untouched; the buffer's
    # own byte ceiling caps oversized horizons.
    targets = [
        shared_workload.vector_target_slots(plan) for _, plan in group
    ]
    chunk = 512
    if all(target is not None for target in targets):
        horizon = max(
            target + plan.extra_slots
            for target, (_index, plan) in zip(targets, group)
        )
        chunk = max(chunk, horizon)
    runtime = VectorRuntime(
        channels,
        kernel,
        seeds=[plan.seed for _, plan in group],
        max_slots=[plan.max_slots for _, plan in group],
        record_physical=record_physical,
        chunk=chunk,
        native=native,
        native_threads=native_threads,
    )
    # Reactive-protocol workloads bring a columnar client population,
    # wired to the runtime through the MAC adapter; bare workloads
    # return None and the runtime runs adapter-free as before.
    adapter = VectorMacAdapter(runtime)
    clients = shared_workload.vector_clients(
        adapter, [plan for _, plan in group]
    )
    if clients is not None:
        adapter.install(clients)

    states: list[_VectorTrialState] = []
    for row, (index, plan) in enumerate(group):
        workload = get_workload(plan.workload)
        workload.vector_start(runtime, row, plan)
        states.append(
            _VectorTrialState(
                index=index,
                row=row,
                plan=plan,
                workload=workload,
                target=targets[row],
            )
        )

    def finish(st: _VectorTrialState) -> TrialResult:
        art = artifacts[st.row]
        trace = runtime.traces[st.row]
        channel = channels[st.row]
        intervals = broadcast_intervals(trace)
        ack = measure_acknowledgments(trace, art.graph, intervals)
        approg = measure_approximate_progress(
            trace, art.graph, art.approx_graph, intervals
        )
        metrics = art.metrics
        return TrialResult(
            label=st.plan.display_label,
            seed=st.plan.seed,
            n=metrics.n,
            degree=metrics.degree,
            degree_tilde=metrics.degree_tilde,
            diameter=metrics.diameter,
            diameter_tilde=metrics.diameter_tilde,
            lam=metrics.lam,
            slots=runtime.slots[st.row],
            broadcasts=len(ack.records),
            ack_latencies=tuple(ack.latencies()),
            ack_completeness=ack.completeness_fraction(),
            approg_latencies=tuple(approg.latencies()),
            approg_episodes=len(approg.records),
            transmissions=channel.total_transmissions,
            receptions=channel.total_receptions,
            extra=tuple(
                sorted(
                    st.workload.vector_finalize(
                        runtime, st.row, st.plan, st.completion
                    ).items()
                )
            ),
        )

    results: dict[int, TrialResult] = {}
    while True:
        live: list[_VectorTrialState] = []
        for st in states:
            if st.phase == "done":
                continue
            # Phase transitions due at the top of a slot — identical
            # cadence to the object engine's _TrialState.advance_phase.
            if st.phase == "run":
                finished = (
                    st.steps >= st.target
                    if st.target is not None
                    else (
                        st.steps % st.workload.check_every == 0
                        and st.workload.vector_done(runtime, st.row, st.plan)
                    )
                )
                if finished:
                    st.completion = runtime.slots[st.row]
                    st.extra_left = st.plan.extra_slots
                    st.phase = "extra"
            if st.phase == "extra" and st.extra_left <= 0:
                st.phase = "done"
                st.result = finish(st)
                results[st.index] = st.result
                continue
            live.append(st)
        if not live:
            return results
        # Advance by the longest stride that cannot cross any live
        # trial's next observation point — the target slot, the next
        # check_every multiple of a predicate workload, or the end of
        # the extra tail.  Each transition is then evaluated on exactly
        # the slot the per-slot loop would have evaluated it, while the
        # runtime gets whole strides to hand to the native kernel.
        stride = min(_stride(st) for st in live)
        runtime.advance_slots(stride, [st.row for st in live])
        for st in live:
            st.steps += stride
            if st.phase == "extra":
                st.extra_left -= stride


def _stride(st: _VectorTrialState) -> int:
    """Slots until this trial's next phase-transition check (>= 1)."""
    if st.phase == "extra":
        return st.extra_left
    if st.target is not None:
        return st.target - st.steps
    check_every = st.workload.check_every
    return check_every - st.steps % check_every
