"""Columnar (struct-of-arrays) protocol kernels.

The object runtime advances a population by calling ``on_slot`` on N
``MacLayerBase`` automata, each of which steps a per-broadcast engine
(:class:`~repro.core.decay.DecayEngine` /
:class:`~repro.core.ack_protocol.AckEngine`) holding a handful of Python
scalars.  For homogeneous populations — every node of a trial running
the same protocol — that object layout wastes almost all of its time on
attribute lookups and method dispatch.

A kernel here holds the *same* state transposed into flat numpy arrays
over the ``trials × n`` lattice (cell ``t*n + node``): ``slots_run``,
``probability``, ``tp``, ``halted``, … become columns, and one
:meth:`step` call advances every broadcasting node of every batched
trial with a fixed number of array operations.

Decision-for-decision, draw-for-draw equivalence with the scalar
engines is the design invariant (the equivalence tests pin it):

* every arithmetic step reproduces the scalar engine's float operations
  exactly (same operands, same order — powers of two, ``min``/``max``
  clamps and running sums are all bitwise-stable under broadcasting);
* the caller feeds each stepped cell the uniform its node's private
  generator would have produced on that owned slot (see
  :class:`~repro.simulation.rng.NodeUniformBuffer`);
* per-trial configuration scalars are expanded to per-cell columns at
  construction, so one lockstep batch may mix trials with different
  protocol parameters (e.g. an ε-sweep over one deployment);
* :meth:`reset` restores the cells of a new broadcast to freshly
  constructed engine state — the columnar form of the object MACs'
  fresh-``Engine``-per-broadcast rule, which is what lets reactive
  clients (BSMB relays, BMMB queues, consensus waves; see
  :mod:`repro.vectorized.protocols`) rebroadcast through one kernel.

Kernels know nothing about slots, channels or traces — the
:class:`~repro.vectorized.runtime.VectorRuntime` owns that choreography.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig

__all__ = ["DecayKernel", "AckKernel"]


def _expand(values, n: int, dtype) -> np.ndarray:
    """Per-trial scalars -> one value per lattice cell (trial-major)."""
    return np.repeat(np.asarray(values, dtype=dtype), n)


class DecayKernel:
    """Array-state form of :class:`~repro.core.decay.DecayEngine`.

    One probability sweep per phase: in step ``j`` of a phase the node
    transmits with probability ``2^-(j+1)``; after ``ack_budget_slots``
    owned slots the broadcast halts (and the MAC acknowledges).
    """

    needs_reception_feedback = False
    # Protocol selector for the fused C kernel (repro.native).
    NATIVE_KIND = 0

    def __init__(self, configs: Sequence[DecayConfig], n: int) -> None:
        self.configs = list(configs)
        self.n = int(n)
        size = len(self.configs) * self.n
        self.phase_length = _expand(
            [c.phase_length for c in self.configs], n, np.int64
        )
        self.ack_budget_slots = _expand(
            [c.ack_budget_slots for c in self.configs], n, np.int64
        )
        self.slots_run = np.zeros(size, dtype=np.int64)
        self.transmissions = np.zeros(size, dtype=np.int64)

    def step(self, idx: np.ndarray, uniforms: np.ndarray):
        """Run one owned slot for the lattice cells ``idx``.

        Returns ``(transmit, halted)`` boolean arrays aligned with
        ``idx`` — ``halted`` marks cells whose acknowledgment budget is
        exhausted *after* this slot (the MAC acks in the same slot, with
        the final transmission still on the air, exactly like the
        scalar engine).
        """
        step_in_phase = self.slots_run[idx] % self.phase_length[idx]
        self.slots_run[idx] += 1
        probability = 2.0 ** -(step_in_phase + 1.0)
        transmit = uniforms < probability
        self.transmissions[idx] += transmit
        halted = self.slots_run[idx] >= self.ack_budget_slots[idx]
        return transmit, halted

    def notify(self, idx: np.ndarray) -> None:
        """Decay ignores overheard traffic (no fallback machinery)."""

    def reset(self, idx: np.ndarray) -> None:
        """Restore ``idx`` to fresh-engine state (new broadcast)."""
        self.slots_run[idx] = 0
        self.transmissions[idx] = 0

    def native_columns(self) -> dict[str, np.ndarray]:
        """Column arrays by their ``repro_state`` field names.

        The native backend steps these very arrays in place; a batch can
        therefore hop between backends slot by slot without copying.
        """
        return {
            "slots_run": self.slots_run,
            "transmissions": self.transmissions,
            "phase_length": self.phase_length,
            "ack_budget": self.ack_budget_slots,
        }


class AckKernel:
    """Array-state form of :class:`~repro.core.ack_protocol.AckEngine`.

    Algorithm B.1's nested loops become masked column updates: the
    outer loop (probability fallback on overheard traffic) fires on
    cells whose ``fallback_pending`` flag armed last slot, the inner
    loop (probability doubling every ``inner_block_slots``) on cells
    whose block ran out, and the spent-probability budget ``tp`` halts
    — and acknowledges — exactly as in the scalar engine.
    """

    needs_reception_feedback = True
    # Protocol selector for the fused C kernel (repro.native).
    NATIVE_KIND = 1

    def __init__(self, configs: Sequence[AckConfig], n: int) -> None:
        self.configs = list(configs)
        self.n = int(n)
        size = len(self.configs) * self.n

        self.halt_budget = _expand(
            [c.halt_budget for c in self.configs], n, np.float64
        )
        self.rc_threshold = _expand(
            [c.rc_threshold for c in self.configs], n, np.float64
        )
        self.inner_block_slots = _expand(
            [c.inner_block_slots for c in self.configs], n, np.int64
        )
        self.prob_cap = _expand(
            [c.prob_cap for c in self.configs], n, np.float64
        )
        self.fallback_divisor = _expand(
            [c.fallback_divisor for c in self.configs], n, np.float64
        )
        self.floor_probability = _expand(
            [c.floor_probability for c in self.configs], n, np.float64
        )

        self.initial_probability = _expand(
            [c.initial_probability for c in self.configs], n, np.float64
        )
        self.probability = np.zeros(size, dtype=np.float64)
        self.block_remaining = np.zeros(size, dtype=np.int64)
        self.tp = np.zeros(size, dtype=np.float64)
        self.rc = np.zeros(size, dtype=np.int64)
        self.halted = np.zeros(size, dtype=bool)
        self.fallback_pending = np.zeros(size, dtype=bool)
        self.slots_run = np.zeros(size, dtype=np.int64)
        self.transmissions = np.zeros(size, dtype=np.int64)
        self.fallbacks = np.zeros(size, dtype=np.int64)
        self.reset(np.arange(size, dtype=np.intp))

    def reset(self, idx: np.ndarray) -> None:
        """Restore ``idx`` to fresh-engine state (new broadcast).

        AckEngine.__init__ runs one fallback + one inner-block entry
        before the first slot: p = min(cap, 2·max(floor, p0/divisor)).
        """
        self.probability[idx] = np.minimum(
            self.prob_cap[idx],
            2.0
            * np.maximum(
                self.floor_probability[idx],
                self.initial_probability[idx] / self.fallback_divisor[idx],
            ),
        )
        self.block_remaining[idx] = self.inner_block_slots[idx]
        self.tp[idx] = 0.0
        self.rc[idx] = 0
        self.halted[idx] = False
        self.fallback_pending[idx] = False
        self.slots_run[idx] = 0
        self.transmissions[idx] = 0
        self.fallbacks[idx] = 0

    def step(self, idx: np.ndarray, uniforms: np.ndarray):
        """Run one owned slot for the lattice cells ``idx``.

        Returns ``(transmit, halted)`` aligned with ``idx``; ``halted``
        marks cells whose probability budget overflowed this slot.
        """
        # Lines 4-8 (outer loop entry): fallback armed by last slot's
        # overheard traffic — divide the probability, reset the counter,
        # and open a fresh inner block at the doubled probability.
        pending = self.fallback_pending[idx]
        if pending.any():
            fidx = idx[pending]
            self.fallback_pending[fidx] = False
            self.fallbacks[fidx] += 1
            fallen = np.maximum(
                self.floor_probability[fidx],
                self.probability[fidx] / self.fallback_divisor[fidx],
            )
            self.rc[fidx] = 0
            self.probability[fidx] = np.minimum(
                self.prob_cap[fidx], 2.0 * fallen
            )
            self.block_remaining[fidx] = self.inner_block_slots[fidx]

        self.slots_run[idx] += 1
        probability = self.probability[idx]
        transmit = uniforms < probability
        self.transmissions[idx] += transmit

        # Lines 13-15: budget accounting and halting.
        tp = self.tp[idx] + probability
        self.tp[idx] = tp
        halted = tp > self.halt_budget[idx]
        self.halted[idx] |= halted

        remaining = self.block_remaining[idx] - 1
        self.block_remaining[idx] = remaining
        renew = (remaining <= 0) & ~halted
        if renew.any():
            ridx = idx[renew]
            self.probability[ridx] = np.minimum(
                self.prob_cap[ridx], 2.0 * self.probability[ridx]
            )
            self.block_remaining[ridx] = self.inner_block_slots[ridx]
        return transmit, halted

    def notify(self, idx: np.ndarray) -> None:
        """Lines 17-21: count overheard messages; arm fallback on overflow.

        ``idx`` holds the lattice cells of this slot's *still-busy*
        listeners (at most one decode per listener per slot, so a +1 is
        exact); halted engines are gone on the object path (the MAC
        drops them at ack), which busy-only indexing reproduces.
        """
        if idx.size == 0:
            return
        self.rc[idx] += 1
        self.fallback_pending[idx] |= self.rc[idx] > self.rc_threshold[idx]

    def native_columns(self) -> dict[str, np.ndarray]:
        """Column arrays by their ``repro_state`` field names.

        The native backend steps these very arrays in place; a batch can
        therefore hop between backends slot by slot without copying.
        """
        return {
            "slots_run": self.slots_run,
            "transmissions": self.transmissions,
            "probability": self.probability,
            "block_remaining": self.block_remaining,
            "tp": self.tp,
            "rc": self.rc,
            "halted_col": self.halted,
            "fallback_pending": self.fallback_pending,
            "fallbacks": self.fallbacks,
            "halt_budget": self.halt_budget,
            "rc_threshold": self.rc_threshold,
            "inner_block_slots": self.inner_block_slots,
            "prob_cap": self.prob_cap,
            "fallback_divisor": self.fallback_divisor,
            "floor_probability": self.floor_probability,
        }
