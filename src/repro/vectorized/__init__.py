"""repro.vectorized — columnar fast path for homogeneous populations.

The object runtime (:mod:`repro.simulation.runtime`) dispatches one
``on_slot`` call per node per slot; for homogeneous Decay / Algorithm
B.1 populations that Python dispatch layer dominates thousand-node
sweeps.  This package transposes the per-node protocol engines into
struct-of-arrays kernels over the ``trials × n`` lattice and advances
whole populations with a handful of numpy operations per slot —
**decode-for-decode identical** to the object runtime (same RNG
streams, same traces, same results; the equivalence suites in
``tests/test_vectorized_equivalence.py`` and
``tests/test_vectorized_protocols.py`` pin the contract).

The treatment covers both halves of the paper's stack: the MAC
primitives (:mod:`~repro.vectorized.kernels`) and the absMAC protocol
layer above them (:mod:`~repro.vectorized.protocols` — BSMB relays,
BMMB queues, flood consensus as client-state columns behind a
``VectorMacAdapter``).

The experiment engine (:func:`repro.experiments.run_trials`)
auto-selects this path for eligible plans; pass ``vectorize=False``
there to opt out.  See ``docs/architecture.md`` ("The vectorized fast
path") for the selection rules and why bit-identity holds.
"""

from __future__ import annotations

from repro.vectorized.engine import (
    plan_protocol_config,
    run_vector_group,
    vector_eligible,
)
from repro.vectorized.kernels import AckKernel, DecayKernel
from repro.vectorized.protocols import (
    BmmbClients,
    BsmbClients,
    ConsensusClients,
    VectorMacAdapter,
)
from repro.vectorized.runtime import VectorRuntime

__all__ = [
    "AckKernel",
    "BmmbClients",
    "BsmbClients",
    "ConsensusClients",
    "DecayKernel",
    "VectorMacAdapter",
    "VectorRuntime",
    "plan_protocol_config",
    "run_vector_group",
    "vector_eligible",
]
