/* Fused slot-loop kernel for the columnar runtime (repro.native).
 *
 * One call advances the counters-only fast path of
 * repro.vectorized.runtime.VectorRuntime toward per-trial slot targets:
 * transmit decision from the pre-drawn NodeUniformBuffer uniforms, gain
 * gather (dense rows or CSR-pruned candidate lists), SINR reduce,
 * decode, dedup and kernel state step in one C loop, with no Python
 * dispatch between slots.
 *
 * Bit-identity contract (the whole point — see the "Native kernels"
 * section of docs/architecture.md):
 *
 *  - Uniform consumption: each busy cell of a live trial consumes
 *    exactly one pre-drawn uniform per slot, read from the same
 *    (lane, cursor) position NodeUniformBuffer.take() would serve.
 *    When a stepping lane is exhausted the trial stops at the slot
 *    boundary so the Python shim can refill whole chunks exactly like
 *    take() does.
 *  - Decay probability: 2^-(j+1) is produced with ldexp (exact power
 *    of two, the value numpy's `2.0 ** -(j + 1.0)` yields).
 *  - Ack arithmetic: the same adds / multiplies / min-max clamps in
 *    the same order as AckKernel.step / AckKernel.notify.
 *  - Interference totals accumulate row-by-row in transmitter order —
 *    the addend order of ndarray.sum(axis=0), which physics.
 *    _segment_totals documents as the bit-identity anchor — and the
 *    SINR evaluates as p / ((total - p) + noise), decode iff >= beta.
 *  - Decode order is transmitter-major then listener-ascending per
 *    trial (np.nonzero row-major over the (k, n) ok matrix), and the
 *    per-trial event order within a slot is acks, then wakes, then
 *    deduped rcvs — the numpy fast path's per-kind subsequences.
 *  - Sparse (CSR) mode replays SparseResolver._exact_flat: the
 *    candidate set is the ascending union of the transmitters' grid
 *    neighborhoods minus the transmitters themselves (np.unique order),
 *    and every arithmetic input is *gathered* from the same dense gain
 *    matrix the numpy paths read — never recomputed from coordinates,
 *    because libm pow() does not bit-match numpy's power kernel.
 *    Non-candidate listeners are provably undecodable (sinr/sparse.py),
 *    so pruning them changes no decode and no event.
 *
 * Trial-parallel threading: trials share nothing — each owns its RNG
 *  lanes, uniform-buffer rows, kernel-state columns, counters, dedup
 *  rows and event subsequence — so the trials axis is partitioned into
 *  contiguous ranges, one POSIX thread each.  Every thread writes its
 *  events into its own segment of the sink (ev_seg rows apiece) and its
 *  own (n,)-sized scratch block; the only shared mutable word is the
 *  atomic error flag.  Results are therefore independent of nthreads by
 *  construction, which tests/test_native_equivalence.py pins across
 *  thread counts {1, 2, 8}.
 *
 * The struct below is mirrored field-for-field by the ctypes binding
 * in repro/native/__init__.py; every field is 8 bytes wide (LP64), so
 * the layouts agree without packing pragmas.
 */

#include <math.h>
#include <pthread.h>
#include <stdatomic.h>
#include <stddef.h>
#include <string.h>

typedef struct {
    /* lattice geometry and call bounds */
    long trials;
    long n;
    long nthreads; /* thread count; Python clamps to [1, trials] */
    long kind;     /* 0 = decay, 1 = ack */
    long sparse;   /* 1 = CSR candidate decode, 0 = dense rows */
    /* per-trial absolute slot targets (trial_slots[t] advances to it) */
    const long *trial_target;
    /* runtime columns over the (trials*n,) lattice */
    const unsigned char *live; /* (trials,) which trials advance */
    unsigned char *busy;
    unsigned char *awake;
    long *tx_mid;
    unsigned char *seen; /* (trials*n, n) rcv dedup matrix */
    /* pre-drawn per-node uniforms (NodeUniformBuffer internals) */
    double *uni_buf; /* (trials*n, chunk) */
    long *uni_cursor;
    long chunk;
    /* deterministic physics: dense gains, optionally CSR-pruned */
    const double *gains; /* base gain matrix pointer */
    long gain_stride;    /* elements between trial blocks (0 = shared) */
    double noise;
    double beta;
    const long *nbr;    /* CSR neighbor ids (sparse mode, else NULL) */
    const long *indptr; /* CSR row pointers, (n+1,) */
    /* kernel columns shared by both protocols */
    long *slots_run;
    long *transmissions;
    /* DecayKernel columns (NULL for ack) */
    const long *phase_length;
    const long *ack_budget;
    /* AckKernel columns (NULL for decay) */
    double *probability;
    long *block_remaining;
    double *tp;
    long *rc;
    unsigned char *halted_col;
    unsigned char *fallback_pending;
    long *fallbacks;
    const double *halt_budget;
    const double *rc_threshold;
    const long *inner_block_slots;
    const double *prob_cap;
    const double *fallback_divisor;
    const double *floor_probability;
    /* per-trial accumulators, drained by the shim after each call */
    long *trial_slots; /* runtime.slots (advanced in place) */
    long *slot_counts; /* Channel._slot_count increments */
    long *tx_totals;   /* Channel.total_transmissions increments */
    long *rx_totals;   /* Channel.total_receptions increments */
    /* event sink: nthreads segments of ev_seg rows of
     * [trial, slot, code, node, mid]; segment order is thread order,
     * i.e. ascending trial ranges, so a segment-order drain preserves
     * per-trial event order for any thread count. */
    long *events;
    long ev_seg;  /* rows per thread segment */
    long *ev_lens; /* (nthreads,) rows used per segment (out) */
    /* per-thread scratch, each sized (nthreads, n) */
    long *sc_tx;
    double *sc_tot;
    unsigned char *sc_txflag;
    unsigned char *sc_stepped;
    unsigned char *sc_decoded;
    long *sc_rx_listener;
    long *sc_rx_sender;
    long *sc_cand;              /* sparse candidate ids, ascending */
    unsigned char *sc_candflag; /* sparse candidate membership flags */
    /* -2 after any thread sees a beta > 1 uniqueness violation */
    _Atomic long error;
} repro_state;

enum { EV_ACK = 0, EV_WAKE = 1, EV_RCV = 2 };

/* One thread's working set: its trial range, its event segment and its
 * scratch block.  Everything it may write is disjoint from every other
 * thread's set. */
typedef struct {
    repro_state *st;
    long t0; /* first trial (inclusive) */
    long t1; /* last trial (exclusive) */
    long *events;  /* this thread's segment base */
    long *ev_len;  /* this thread's slot in ev_lens */
    long *sc_tx;
    double *sc_tot;
    unsigned char *sc_txflag;
    unsigned char *sc_stepped;
    unsigned char *sc_decoded;
    long *sc_rx_listener;
    long *sc_rx_sender;
    long *sc_cand;
    unsigned char *sc_candflag;
} worker_slot;

static void emit(worker_slot *w, long t, long slot, long code, long node,
                 long mid) {
    long *row = w->events + *w->ev_len * 5;
    row[0] = t;
    row[1] = slot;
    row[2] = code;
    row[3] = node;
    row[4] = mid;
    *w->ev_len += 1;
}

/* Advance the trials of one worker slot toward their targets, stopping
 * a trial at a slot boundary when a stepping lane's uniforms are
 * exhausted, and the whole slot when its event segment cannot hold a
 * worst-case slot (3n rows: every busy cell acks plus one wake and one
 * rcv per unique-decode listener).  A beta > 1 uniqueness violation
 * (two decodable senders at one listener) raises the shared error flag
 * and stops every thread at its next slot boundary. */
static void advance_range(worker_slot *w) {
    repro_state *st = w->st;
    const long n = st->n;
    const long chunk = st->chunk;
    if (n <= 0)
        return;

    for (long t = w->t0; t < w->t1; t++) {
        if (!st->live[t])
            continue;
        const long base = t * n;
        while (st->trial_slots[t] < st->trial_target[t]) {
            if (atomic_load_explicit(&st->error, memory_order_relaxed))
                return;
            if (st->ev_seg - *w->ev_len < 3 * n)
                return;
            /* Every cell that will step this slot must have a
             * pre-drawn uniform left; otherwise park this trial so the
             * shim can refill whole chunks exactly as
             * NodeUniformBuffer.take() would. */
            int need_refill = 0;
            for (long v = 0; v < n; v++) {
                if (st->busy[base + v] &&
                    st->uni_cursor[base + v] >= chunk) {
                    need_refill = 1;
                    break;
                }
            }
            if (need_refill)
                break;

            const long slot = st->trial_slots[t];

            /* Phase 1: kernel step for every busy cell, in ascending
             * node order (the flatnonzero order of the numpy path). */
            long ntx = 0;
            memset(w->sc_txflag, 0, (size_t)n);
            memset(w->sc_stepped, 0, (size_t)n);
            for (long v = 0; v < n; v++) {
                const long cell = base + v;
                if (!st->busy[cell])
                    continue;
                const double u =
                    st->uni_buf[cell * chunk + st->uni_cursor[cell]];
                st->uni_cursor[cell] += 1;
                int transmit = 0;
                int halt = 0;
                if (st->kind == 0) {
                    const long j =
                        st->slots_run[cell] % st->phase_length[cell];
                    st->slots_run[cell] += 1;
                    const double p = ldexp(1.0, (int)(-(j + 1)));
                    transmit = u < p;
                    halt = st->slots_run[cell] >= st->ack_budget[cell];
                } else {
                    if (st->fallback_pending[cell]) {
                        st->fallback_pending[cell] = 0;
                        st->fallbacks[cell] += 1;
                        double fallen = st->probability[cell] /
                                        st->fallback_divisor[cell];
                        if (st->floor_probability[cell] > fallen)
                            fallen = st->floor_probability[cell];
                        st->rc[cell] = 0;
                        double doubled = 2.0 * fallen;
                        st->probability[cell] =
                            doubled < st->prob_cap[cell]
                                ? doubled
                                : st->prob_cap[cell];
                        st->block_remaining[cell] =
                            st->inner_block_slots[cell];
                    }
                    st->slots_run[cell] += 1;
                    const double p = st->probability[cell];
                    transmit = u < p;
                    st->tp[cell] += p;
                    halt = st->tp[cell] > st->halt_budget[cell];
                    if (halt)
                        st->halted_col[cell] = 1;
                    st->block_remaining[cell] -= 1;
                    if (st->block_remaining[cell] <= 0 && !halt) {
                        double doubled = 2.0 * st->probability[cell];
                        st->probability[cell] =
                            doubled < st->prob_cap[cell]
                                ? doubled
                                : st->prob_cap[cell];
                        st->block_remaining[cell] =
                            st->inner_block_slots[cell];
                    }
                }
                if (transmit) {
                    st->transmissions[cell] += 1;
                    w->sc_tx[ntx++] = v;
                    w->sc_txflag[v] = 1;
                }
                if (halt) {
                    st->busy[cell] = 0;
                    emit(w, t, slot, EV_ACK, v, st->tx_mid[cell]);
                } else {
                    w->sc_stepped[v] = 1;
                }
            }

            /* Channel.finalize_slot's counter bookkeeping. */
            st->slot_counts[t] += 1;
            st->tx_totals[t] += ntx;

            /* Phase 2: SINR resolution.  Totals accumulate row by row
             * in transmitter order (ndarray.sum(axis=0) addend order);
             * the decode scan is transmitter-major then listener-
             * ascending (np.nonzero row-major).  Sparse mode prunes
             * the listener axis to the CSR candidate union first —
             * identical arithmetic on identical gain entries, fewer
             * of them. */
            long nrx = 0;
            if (ntx > 0) {
                const double *g = st->gains + st->gain_stride * t;
                memset(w->sc_decoded, 0, (size_t)n);
                if (st->sparse) {
                    /* Candidate union: flag every grid neighbor of
                     * every transmitter, then collect the flagged,
                     * non-transmitting nodes in one ascending pass —
                     * np.unique's sorted order, minus the tx set,
                     * exactly _candidate_listeners(). */
                    long ncand = 0;
                    memset(w->sc_candflag, 0, (size_t)n);
                    for (long i = 0; i < ntx; i++) {
                        const long s = w->sc_tx[i];
                        for (long e = st->indptr[s]; e < st->indptr[s + 1];
                             e++)
                            w->sc_candflag[st->nbr[e]] = 1;
                    }
                    for (long u = 0; u < n; u++) {
                        if (w->sc_candflag[u] && !w->sc_txflag[u])
                            w->sc_cand[ncand++] = u;
                    }
                    for (long j = 0; j < ncand; j++)
                        w->sc_tot[w->sc_cand[j]] = 0.0;
                    for (long i = 0; i < ntx; i++) {
                        const double *row = g + w->sc_tx[i] * n;
                        for (long j = 0; j < ncand; j++)
                            w->sc_tot[w->sc_cand[j]] += row[w->sc_cand[j]];
                    }
                    for (long i = 0; i < ntx; i++) {
                        const long s = w->sc_tx[i];
                        const double *row = g + s * n;
                        for (long j = 0; j < ncand; j++) {
                            const long u = w->sc_cand[j];
                            const double p = row[u];
                            const double sinr =
                                p / ((w->sc_tot[u] - p) + st->noise);
                            if (sinr >= st->beta) {
                                if (w->sc_decoded[u]) {
                                    atomic_store_explicit(
                                        &st->error, -2,
                                        memory_order_relaxed);
                                    return;
                                }
                                w->sc_decoded[u] = 1;
                                w->sc_rx_listener[nrx] = u;
                                w->sc_rx_sender[nrx] = s;
                                nrx++;
                            }
                        }
                    }
                } else {
                    for (long u = 0; u < n; u++)
                        w->sc_tot[u] = 0.0;
                    for (long i = 0; i < ntx; i++) {
                        const double *row = g + w->sc_tx[i] * n;
                        for (long u = 0; u < n; u++)
                            w->sc_tot[u] += row[u];
                    }
                    for (long i = 0; i < ntx; i++) {
                        const long s = w->sc_tx[i];
                        const double *row = g + s * n;
                        for (long u = 0; u < n; u++) {
                            if (w->sc_txflag[u])
                                continue; /* half-duplex */
                            const double p = row[u];
                            const double sinr =
                                p / ((w->sc_tot[u] - p) + st->noise);
                            if (sinr >= st->beta) {
                                if (w->sc_decoded[u]) {
                                    atomic_store_explicit(
                                        &st->error, -2,
                                        memory_order_relaxed);
                                    return;
                                }
                                w->sc_decoded[u] = 1;
                                w->sc_rx_listener[nrx] = u;
                                w->sc_rx_sender[nrx] = s;
                                nrx++;
                            }
                        }
                    }
                }
            }
            st->rx_totals[t] += nrx;

            /* Conditional wakeups (hit order), then deduped rcvs, then
             * reception feedback for the Ack fallback counters. */
            for (long i = 0; i < nrx; i++) {
                const long u = w->sc_rx_listener[i];
                if (!st->awake[base + u]) {
                    st->awake[base + u] = 1;
                    emit(w, t, slot, EV_WAKE, u, -1);
                }
            }
            for (long i = 0; i < nrx; i++) {
                const long u = w->sc_rx_listener[i];
                const long s = w->sc_rx_sender[i];
                unsigned char *cell_seen =
                    st->seen + (size_t)(base + u) * (size_t)n + (size_t)s;
                if (!*cell_seen) {
                    *cell_seen = 1;
                    emit(w, t, slot, EV_RCV, u, st->tx_mid[base + s]);
                }
            }
            if (st->kind == 1) {
                for (long i = 0; i < nrx; i++) {
                    const long u = w->sc_rx_listener[i];
                    if (w->sc_stepped[u]) {
                        const long cell = base + u;
                        st->rc[cell] += 1;
                        if ((double)st->rc[cell] > st->rc_threshold[cell])
                            st->fallback_pending[cell] = 1;
                    }
                }
            }
            st->trial_slots[t] += 1;
        }
    }
}

static void fill_slot(repro_state *st, worker_slot *w, long th, long t0,
                      long t1) {
    const long n = st->n;
    w->st = st;
    w->t0 = t0;
    w->t1 = t1;
    w->events = st->events + th * st->ev_seg * 5;
    w->ev_len = st->ev_lens + th;
    w->sc_tx = st->sc_tx + th * n;
    w->sc_tot = st->sc_tot + th * n;
    w->sc_txflag = st->sc_txflag + th * n;
    w->sc_stepped = st->sc_stepped + th * n;
    w->sc_decoded = st->sc_decoded + th * n;
    w->sc_rx_listener = st->sc_rx_listener + th * n;
    w->sc_rx_sender = st->sc_rx_sender + th * n;
    w->sc_cand = st->sc_cand + th * n;
    w->sc_candflag = st->sc_candflag + th * n;
}

static void *worker_main(void *arg) {
    advance_range((worker_slot *)arg);
    return NULL;
}

/* Advance every live trial toward its target.  Returns 0 when every
 * thread ran to completion (some trials may still be short of target:
 * parked for a uniform refill or a segment drain — the shim re-calls),
 * -2 on a beta > 1 uniqueness violation. */
long repro_advance_slots(repro_state *st) {
    enum { MAX_THREADS = 64 };
    long nt = st->nthreads;
    if (nt < 1)
        nt = 1;
    if (nt > MAX_THREADS)
        nt = MAX_THREADS;
    atomic_store_explicit(&st->error, 0, memory_order_relaxed);
    for (long th = 0; th < st->nthreads; th++)
        st->ev_lens[th] = 0;

    worker_slot slots[MAX_THREADS];
    const long per = (st->trials + nt - 1) / nt;
    for (long th = 0; th < nt; th++) {
        long t0 = th * per;
        long t1 = t0 + per;
        if (t0 > st->trials)
            t0 = st->trials;
        if (t1 > st->trials)
            t1 = st->trials;
        fill_slot(st, &slots[th], th, t0, t1);
    }

    if (nt == 1) {
        advance_range(&slots[0]);
        return atomic_load_explicit(&st->error, memory_order_relaxed);
    }

    pthread_t threads[MAX_THREADS];
    unsigned char started[MAX_THREADS];
    for (long th = 1; th < nt; th++)
        started[th] =
            pthread_create(&threads[th], NULL, worker_main, &slots[th]) == 0;
    advance_range(&slots[0]);
    for (long th = 1; th < nt; th++) {
        if (started[th])
            pthread_join(threads[th], NULL);
        else
            advance_range(&slots[th]); /* degraded serial fallback */
    }
    return atomic_load_explicit(&st->error, memory_order_relaxed);
}
