/* Fused slot-loop kernel for the columnar runtime (repro.native).
 *
 * One call advances the counters-only fast path of
 * repro.vectorized.runtime.VectorRuntime by up to k slots: transmit
 * decision from the pre-drawn NodeUniformBuffer uniforms, dense gain
 * gather, SINR reduce, decode, dedup and kernel state step in one C
 * loop, with no Python dispatch between slots.
 *
 * Bit-identity contract (the whole point — see the "Native kernels"
 * section of docs/architecture.md):
 *
 *  - Uniform consumption: each busy cell of a live trial consumes
 *    exactly one pre-drawn uniform per slot, read from the same
 *    (lane, cursor) position NodeUniformBuffer.take() would serve.
 *    When any stepping lane is exhausted the call returns at the slot
 *    boundary so the Python shim can refill whole chunks exactly like
 *    take() does.
 *  - Decay probability: 2^-(j+1) is produced with ldexp (exact power
 *    of two, the value numpy's `2.0 ** -(j + 1.0)` yields).
 *  - Ack arithmetic: the same adds / multiplies / min-max clamps in
 *    the same order as AckKernel.step / AckKernel.notify.
 *  - Interference totals accumulate row-by-row in transmitter order —
 *    the addend order of ndarray.sum(axis=0), which physics.
 *    _segment_totals documents as the bit-identity anchor — and the
 *    SINR evaluates as p / ((total - p) + noise), decode iff >= beta.
 *  - Decode order is transmitter-major then listener-ascending per
 *    trial (np.nonzero row-major over the (k, n) ok matrix), and the
 *    per-trial event order within a slot is acks, then wakes, then
 *    deduped rcvs — the numpy fast path's per-kind subsequences.
 *
 * The struct below is mirrored field-for-field by the ctypes binding
 * in repro/native/__init__.py; every field is 8 bytes wide (LP64), so
 * the layouts agree without packing pragmas.
 */

#include <math.h>
#include <stddef.h>
#include <string.h>

typedef struct {
    /* lattice geometry and call bounds */
    long trials;
    long n;
    long k;    /* max slots to attempt this call */
    long kind; /* 0 = decay, 1 = ack */
    /* runtime columns over the (trials*n,) lattice */
    unsigned char *live; /* (trials,) which trials advance */
    unsigned char *busy;
    unsigned char *awake;
    long *tx_mid;
    unsigned char *seen; /* (trials*n, n) rcv dedup matrix */
    /* pre-drawn per-node uniforms (NodeUniformBuffer internals) */
    double *uni_buf; /* (trials*n, chunk) */
    long *uni_cursor;
    long chunk;
    /* dense deterministic physics */
    const double *gains; /* base gain matrix pointer */
    long gain_stride;    /* elements between trial blocks (0 = shared) */
    double noise;
    double beta;
    /* kernel columns shared by both protocols */
    long *slots_run;
    long *transmissions;
    /* DecayKernel columns (NULL for ack) */
    const long *phase_length;
    const long *ack_budget;
    /* AckKernel columns (NULL for decay) */
    double *probability;
    long *block_remaining;
    double *tp;
    long *rc;
    unsigned char *halted_col;
    unsigned char *fallback_pending;
    long *fallbacks;
    const double *halt_budget;
    const double *rc_threshold;
    const long *inner_block_slots;
    const double *prob_cap;
    const double *fallback_divisor;
    const double *floor_probability;
    /* per-trial accumulators, drained by the shim after each call */
    long *trial_slots; /* runtime.slots (advanced in place) */
    long *slot_counts; /* Channel._slot_count increments */
    long *tx_totals;   /* Channel.total_transmissions increments */
    long *rx_totals;   /* Channel.total_receptions increments */
    /* event sink: rows of [trial, slot, code, node, mid] */
    long *events;
    long ev_cap; /* rows available */
    long ev_len; /* rows used (in/out) */
    /* per-trial scratch, each sized (n,) */
    long *sc_tx;
    double *sc_tot;
    unsigned char *sc_txflag;
    unsigned char *sc_stepped;
    unsigned char *sc_decoded;
    long *sc_rx_listener;
    long *sc_rx_sender;
} repro_state;

enum { EV_ACK = 0, EV_WAKE = 1, EV_RCV = 2 };

static void emit(repro_state *st, long t, long slot, long code, long node,
                 long mid) {
    long *row = st->events + st->ev_len * 5;
    row[0] = t;
    row[1] = slot;
    row[2] = code;
    row[3] = node;
    row[4] = mid;
    st->ev_len += 1;
}

/* Returns the number of whole slots advanced (>= 0), stopping early at
 * a slot boundary when a stepping lane's uniforms are exhausted or the
 * event sink cannot guarantee a worst-case slot; -2 signals a beta > 1
 * uniqueness violation (two decodable senders at one listener). */
long repro_advance_slots(repro_state *st) {
    const long trials = st->trials;
    const long n = st->n;
    const long chunk = st->chunk;
    long slots_done = 0;

    for (; slots_done < st->k; slots_done++) {
        /* Worst case one slot can emit: every busy cell acks plus one
         * wake and one rcv per unique-decode listener. */
        long live_trials = 0;
        for (long t = 0; t < trials; t++)
            live_trials += st->live[t];
        if (st->ev_cap - st->ev_len < 3 * live_trials * n)
            break;
        /* Every cell that will step this slot must have a pre-drawn
         * uniform left; otherwise return so the shim can refill whole
         * chunks exactly as NodeUniformBuffer.take() would. */
        int need_refill = 0;
        for (long t = 0; t < trials && !need_refill; t++) {
            if (!st->live[t])
                continue;
            const long base = t * n;
            for (long v = 0; v < n; v++) {
                if (st->busy[base + v] && st->uni_cursor[base + v] >= chunk) {
                    need_refill = 1;
                    break;
                }
            }
        }
        if (need_refill)
            break;

        for (long t = 0; t < trials; t++) {
            if (!st->live[t])
                continue;
            const long base = t * n;
            const long slot = st->trial_slots[t];

            /* Phase 1: kernel step for every busy cell, in ascending
             * node order (the flatnonzero order of the numpy path). */
            long ntx = 0;
            memset(st->sc_txflag, 0, (size_t)n);
            memset(st->sc_stepped, 0, (size_t)n);
            for (long v = 0; v < n; v++) {
                const long cell = base + v;
                if (!st->busy[cell])
                    continue;
                const double u =
                    st->uni_buf[cell * chunk + st->uni_cursor[cell]];
                st->uni_cursor[cell] += 1;
                int transmit = 0;
                int halt = 0;
                if (st->kind == 0) {
                    const long j =
                        st->slots_run[cell] % st->phase_length[cell];
                    st->slots_run[cell] += 1;
                    const double p = ldexp(1.0, (int)(-(j + 1)));
                    transmit = u < p;
                    halt = st->slots_run[cell] >= st->ack_budget[cell];
                } else {
                    if (st->fallback_pending[cell]) {
                        st->fallback_pending[cell] = 0;
                        st->fallbacks[cell] += 1;
                        double fallen =
                            st->probability[cell] / st->fallback_divisor[cell];
                        if (st->floor_probability[cell] > fallen)
                            fallen = st->floor_probability[cell];
                        st->rc[cell] = 0;
                        double doubled = 2.0 * fallen;
                        st->probability[cell] = doubled < st->prob_cap[cell]
                                                    ? doubled
                                                    : st->prob_cap[cell];
                        st->block_remaining[cell] =
                            st->inner_block_slots[cell];
                    }
                    st->slots_run[cell] += 1;
                    const double p = st->probability[cell];
                    transmit = u < p;
                    st->tp[cell] += p;
                    halt = st->tp[cell] > st->halt_budget[cell];
                    if (halt)
                        st->halted_col[cell] = 1;
                    st->block_remaining[cell] -= 1;
                    if (st->block_remaining[cell] <= 0 && !halt) {
                        double doubled = 2.0 * st->probability[cell];
                        st->probability[cell] = doubled < st->prob_cap[cell]
                                                    ? doubled
                                                    : st->prob_cap[cell];
                        st->block_remaining[cell] =
                            st->inner_block_slots[cell];
                    }
                }
                if (transmit) {
                    st->transmissions[cell] += 1;
                    st->sc_tx[ntx++] = v;
                    st->sc_txflag[v] = 1;
                }
                if (halt) {
                    st->busy[cell] = 0;
                    emit(st, t, slot, EV_ACK, v, st->tx_mid[cell]);
                } else {
                    st->sc_stepped[v] = 1;
                }
            }

            /* Channel.finalize_slot's counter bookkeeping. */
            st->slot_counts[t] += 1;
            st->tx_totals[t] += ntx;

            /* Phase 2: SINR resolution.  Totals accumulate row by row
             * in transmitter order (ndarray.sum(axis=0) addend order);
             * the decode scan is transmitter-major then listener-
             * ascending (np.nonzero row-major). */
            long nrx = 0;
            if (ntx > 0) {
                const double *g = st->gains + st->gain_stride * t;
                for (long u = 0; u < n; u++)
                    st->sc_tot[u] = 0.0;
                for (long i = 0; i < ntx; i++) {
                    const double *row = g + st->sc_tx[i] * n;
                    for (long u = 0; u < n; u++)
                        st->sc_tot[u] += row[u];
                }
                memset(st->sc_decoded, 0, (size_t)n);
                for (long i = 0; i < ntx; i++) {
                    const long s = st->sc_tx[i];
                    const double *row = g + s * n;
                    for (long u = 0; u < n; u++) {
                        if (st->sc_txflag[u])
                            continue; /* half-duplex */
                        const double p = row[u];
                        const double sinr =
                            p / ((st->sc_tot[u] - p) + st->noise);
                        if (sinr >= st->beta) {
                            if (st->sc_decoded[u])
                                return -2;
                            st->sc_decoded[u] = 1;
                            st->sc_rx_listener[nrx] = u;
                            st->sc_rx_sender[nrx] = s;
                            nrx++;
                        }
                    }
                }
            }
            st->rx_totals[t] += nrx;

            /* Conditional wakeups (hit order), then deduped rcvs, then
             * reception feedback for the Ack fallback counters. */
            for (long i = 0; i < nrx; i++) {
                const long u = st->sc_rx_listener[i];
                if (!st->awake[base + u]) {
                    st->awake[base + u] = 1;
                    emit(st, t, slot, EV_WAKE, u, -1);
                }
            }
            for (long i = 0; i < nrx; i++) {
                const long u = st->sc_rx_listener[i];
                const long s = st->sc_rx_sender[i];
                unsigned char *cell_seen =
                    st->seen + (size_t)(base + u) * (size_t)n + (size_t)s;
                if (!*cell_seen) {
                    *cell_seen = 1;
                    emit(st, t, slot, EV_RCV, u, st->tx_mid[base + s]);
                }
            }
            if (st->kind == 1) {
                for (long i = 0; i < nrx; i++) {
                    const long u = st->sc_rx_listener[i];
                    if (st->sc_stepped[u]) {
                        const long cell = base + u;
                        st->rc[cell] += 1;
                        if ((double)st->rc[cell] > st->rc_threshold[cell])
                            st->fallback_pending[cell] = 1;
                    }
                }
            }
            st->trial_slots[t] += 1;
        }
    }
    return slots_done;
}
