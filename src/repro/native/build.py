"""Build glue for the native slot-loop kernel.

The extension is deliberately *not* a CPython extension module: it is a
plain shared library (no ``Python.h``, no numpy headers) loaded through
:mod:`ctypes`, so building it needs nothing but a C compiler and the
import path degrades gracefully on machines without one.  ``make
native`` and the best-effort hook in ``setup.py`` both land here; the
module is import-safe without numpy or the repro package (``setup.py``
runs it before any dependency is installed).

Usage::

    PYTHONPATH=src python -m repro.native.build          # build if stale
    PYTHONPATH=src python -m repro.native.build --force  # always rebuild
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

__all__ = ["SOURCE", "TARGET", "build", "main"]

SOURCE = Path(__file__).resolve().parent / "_advance.c"
TARGET = SOURCE.with_suffix(".so")

# First available compiler wins; -O3 -fPIC -shared is all the kernel
# needs (pure C99 + libm, no Python or numpy headers).
_COMPILERS = ("cc", "gcc", "clang")
_FLAGS = ("-O3", "-fPIC", "-shared", "-fvisibility=default")


def _find_compiler() -> str | None:
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def build(force: bool = False, quiet: bool = False) -> Path | None:
    """Compile ``_advance.c`` next to itself; return the .so path.

    Returns None (instead of raising) when no compiler is available —
    the caller decides whether that is fatal (``make native``) or fine
    (the best-effort install hook).  A failed *compilation* raises,
    with the compiler output attached: broken C must never be silent.
    """
    if not SOURCE.is_file():
        raise FileNotFoundError(f"native kernel source missing: {SOURCE}")
    if (
        not force
        and TARGET.is_file()
        and TARGET.stat().st_mtime >= SOURCE.stat().st_mtime
    ):
        if not quiet:
            print(f"native kernel up to date: {TARGET}")
        return TARGET
    compiler = _find_compiler()
    if compiler is None:
        if not quiet:
            print(
                "no C compiler found (tried "
                + ", ".join(_COMPILERS)
                + "); the pure-numpy fallback stays active"
            )
        return None
    cmd = [compiler, *_FLAGS, "-o", str(TARGET), str(SOURCE), "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"native kernel build failed ({' '.join(cmd)}):\n"
            f"{proc.stdout}{proc.stderr}"
        )
    if not quiet:
        print(f"built native kernel: {TARGET}")
    return TARGET


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    force = "--force" in argv
    target = build(force=force)
    return 0 if target is not None else 1


if __name__ == "__main__":
    sys.exit(main())
