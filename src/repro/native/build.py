"""Build glue for the native slot-loop kernel.

The extension is deliberately *not* a CPython extension module: it is a
plain shared library (no ``Python.h``, no numpy headers) loaded through
:mod:`ctypes`, so building it needs nothing but a C compiler and the
import path degrades gracefully on machines without one.  ``make
native`` and the best-effort hook in ``setup.py`` both land here; the
module is import-safe without numpy or the repro package (``setup.py``
runs it before any dependency is installed).

Staleness is judged against a *build stamp* sidecar, not mtimes alone:
the stamp records the source hash, the flag list and the compiler
identity of the last successful build, so changing ``_FLAGS`` (adding
``-pthread``…) or switching compilers rebuilds even though the ``.so``
postdates the ``.c``.  A missing or unreadable stamp counts as stale.

Usage::

    PYTHONPATH=src python -m repro.native.build          # build if stale
    PYTHONPATH=src python -m repro.native.build --force  # always rebuild
"""

from __future__ import annotations

import hashlib
import json
import shutil
import subprocess
import sys
from pathlib import Path

__all__ = ["SOURCE", "TARGET", "STAMP", "build", "build_stamp", "main"]

SOURCE = Path(__file__).resolve().parent / "_advance.c"
TARGET = SOURCE.with_suffix(".so")
STAMP = SOURCE.with_suffix(".buildstamp.json")

# First available compiler wins; the kernel is C11 (stdatomic) + libm +
# pthreads, no Python or numpy headers.
_COMPILERS = ("cc", "gcc", "clang")
_FLAGS = ("-O3", "-fPIC", "-shared", "-fvisibility=default", "-pthread")


def _find_compiler() -> str | None:
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _compiler_identity(compiler: str) -> str:
    """A stable fingerprint of the compiler binary.

    Version output would be ideal but costs a subprocess per staleness
    probe; path + mtime + size changes whenever the toolchain is
    upgraded in place, which is the case the stamp must catch.
    """
    try:
        stat = Path(compiler).stat()
    except OSError:
        return compiler
    return f"{compiler}:{int(stat.st_mtime)}:{stat.st_size}"


def build_stamp(compiler: str) -> dict:
    """The stamp a successful build of the current source would write."""
    digest = hashlib.sha256(SOURCE.read_bytes()).hexdigest()
    return {
        "source_sha256": digest,
        "flags": list(_FLAGS),
        "compiler": _compiler_identity(compiler),
    }


def _is_fresh(compiler: str) -> bool:
    if not TARGET.is_file() or not STAMP.is_file():
        return False
    try:
        recorded = json.loads(STAMP.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return False
    return recorded == build_stamp(compiler)


def build(force: bool = False, quiet: bool = False) -> Path | None:
    """Compile ``_advance.c`` next to itself; return the .so path.

    Returns None (instead of raising) when no compiler is available —
    the caller decides whether that is fatal (``make native``) or fine
    (the best-effort install hook).  A failed *compilation* raises,
    with the compiler output attached: broken C must never be silent.
    """
    if not SOURCE.is_file():
        raise FileNotFoundError(f"native kernel source missing: {SOURCE}")
    compiler = _find_compiler()
    if compiler is None:
        if not quiet:
            print(
                "no C compiler found (tried "
                + ", ".join(_COMPILERS)
                + "); the pure-numpy fallback stays active"
            )
        return None
    if not force and _is_fresh(compiler):
        if not quiet:
            print(f"native kernel up to date: {TARGET}")
        return TARGET
    cmd = [compiler, *_FLAGS, "-o", str(TARGET), str(SOURCE), "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"native kernel build failed ({' '.join(cmd)}):\n"
            f"{proc.stdout}{proc.stderr}"
        )
    STAMP.write_text(
        json.dumps(build_stamp(compiler), indent=2) + "\n", encoding="utf-8"
    )
    if not quiet:
        print(f"built native kernel: {TARGET}")
    return TARGET


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    force = "--force" in argv
    target = build(force=force)
    return 0 if target is not None else 1


if __name__ == "__main__":
    sys.exit(main())
