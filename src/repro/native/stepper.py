"""Marshalling layer between :class:`VectorRuntime` and the C kernel.

A :class:`NativeStepper` is created lazily by the runtime the first
time a batch advances through the native backend, and reused for the
batch's whole life: it pins the gain base pointer (dense stack, or the
shared dense matrix the sparse CSR path gathers from), allocates the
event sink and per-thread scratch blocks once, and on every call

1. caps the stride at the tightest per-trial slot budget and writes the
   per-trial absolute slot targets,
2. hands the runtime's *live* columnar state (kernel columns, busy /
   awake / seen / tx_mid, the NodeUniformBuffer storage) to
   ``repro_advance_slots`` by pointer — the C kernel mutates the very
   arrays the numpy path reads, so the two backends can interleave
   slot by slot without any copying or divergence,
3. drains each thread's event segment (segment order is ascending
   trial-range order, so per-trial event order is thread-count
   invariant) into the per-trial
   :class:`~repro.simulation.trace.EventTrace` objects, folds the
   counter accumulators into each trial's channel, detaches acked
   messages, and refills exhausted uniform lanes whole-chunk exactly
   as ``NodeUniformBuffer.take`` would before re-entering C.

The stepper never runs unless the runtime's eligibility probe passed
(counters-only, adapter-free, adversary-free, deterministic physics —
dense, or sparse-exact over one shared resolver — no churn mask); every
other slot shape falls back to the numpy step, transparently, in
``VectorRuntime.advance_slots``.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.native import (
    ERR_BETA_VIOLATION,
    EV_ACK,
    EV_RCV,
    EV_WAKE,
    NativeState,
    load,
)
from repro.simulation.trace import TraceEvent

__all__ = ["NativeStepper"]

_EVENT_KINDS = {EV_ACK: "ack", EV_WAKE: "wake", EV_RCV: "rcv"}


def _ptr(array: np.ndarray | None):
    if array is None:
        return None
    return array.ctypes.data_as(ctypes.c_void_p)


class NativeStepper:
    """One batch's bridge to ``repro_advance_slots`` (see module doc)."""

    def __init__(self, runtime, threads: int = 1) -> None:
        lib = load()
        if lib is None:
            raise RuntimeError("native kernel is not built")
        self._lib = lib
        self._runtime = runtime
        n = runtime.n
        trials = runtime.trials
        kernel = runtime.kernel
        # More threads than trials would only spawn idle workers; the
        # partition stays deterministic for a fixed clamped count, so a
        # trial's event segment never moves between calls.
        self._nthreads = max(1, min(int(threads), trials))

        sparse = bool(runtime._sparse)
        # The gains are immutable for native-eligible batches (no
        # dynamic topology): pin the base pointer once.  A zero-stride
        # broadcast view (shared deployment, the common sweep) gathers
        # through its base matrix, exactly like the numpy kernel.  The
        # sparse-exact path has no stack at all — eligibility demands
        # one shared resolver, hence one deployment, and the C side
        # gathers the *dense* matrix entries the numpy sparse resolver
        # provably reproduces (recomputing powers in C is off the table:
        # libm pow is not bit-identical to numpy's).
        gains = runtime._gain_stack
        if gains is None:
            self._gains = np.ascontiguousarray(runtime.channels[0].gains)
            gain_stride = 0
        elif gains.ndim == 3 and gains.strides[0] == 0:
            self._gains = np.ascontiguousarray(gains[0])
            gain_stride = 0
        else:
            self._gains = np.ascontiguousarray(gains)
            gain_stride = n * n
        if sparse:
            resolver = runtime.channels[0]._resolver
            self._nbr = np.ascontiguousarray(resolver._nbr, dtype=np.int64)
            self._indptr = np.ascontiguousarray(
                resolver._indptr, dtype=np.int64
            )
        else:
            self._nbr = None
            self._indptr = None

        self._live = np.zeros(trials, dtype=np.uint8)
        self._trial_target = np.zeros(trials, dtype=np.int64)
        self._trial_slots = np.zeros(trials, dtype=np.int64)
        self._slot_counts = np.zeros(trials, dtype=np.int64)
        self._tx_totals = np.zeros(trials, dtype=np.int64)
        self._rx_totals = np.zeros(trials, dtype=np.int64)
        # Event sink: one segment per thread.  The C side checks a
        # worst case of 3n rows before entering a slot, so a segment of
        # at least 6n guarantees every thread at least one slot of
        # progress per call while letting sparse-event stretches (the
        # common case) run for thousands of slots.
        self._ev_seg = max(
            6 * n,
            (max(6 * trials * n, 1 << 14) + self._nthreads - 1)
            // self._nthreads,
        )
        self._events = np.empty((self._nthreads * self._ev_seg, 5),
                                dtype=np.int64)
        self._ev_lens = np.zeros(self._nthreads, dtype=np.int64)

        state = NativeState()
        state.trials = trials
        state.n = n
        state.nthreads = self._nthreads
        state.kind = kernel.NATIVE_KIND
        state.sparse = 1 if sparse else 0
        state.trial_target = _ptr(self._trial_target)
        state.live = _ptr(self._live)
        state.busy = _ptr(runtime._busy)
        state.awake = _ptr(runtime._awake)
        state.tx_mid = _ptr(runtime._tx_mid)
        state.seen = _ptr(runtime._seen)
        state.uni_buf = _ptr(runtime._uniforms._buf)
        state.uni_cursor = _ptr(runtime._uniforms._cursor)
        state.chunk = runtime._uniforms.chunk
        state.gains = _ptr(self._gains)
        state.gain_stride = gain_stride
        state.noise = float(runtime.params.noise)
        state.beta = float(runtime.params.beta)
        state.nbr = _ptr(self._nbr)
        state.indptr = _ptr(self._indptr)
        for name, column in kernel.native_columns().items():
            setattr(state, name, _ptr(column))
        state.trial_slots = _ptr(self._trial_slots)
        state.slot_counts = _ptr(self._slot_counts)
        state.tx_totals = _ptr(self._tx_totals)
        state.rx_totals = _ptr(self._rx_totals)
        state.events = _ptr(self._events)
        state.ev_seg = self._ev_seg
        state.ev_lens = _ptr(self._ev_lens)
        self._scratch = {
            "sc_tx": np.empty(self._nthreads * n, dtype=np.int64),
            "sc_tot": np.empty(self._nthreads * n, dtype=np.float64),
            "sc_txflag": np.empty(self._nthreads * n, dtype=np.uint8),
            "sc_stepped": np.empty(self._nthreads * n, dtype=np.uint8),
            "sc_decoded": np.empty(self._nthreads * n, dtype=np.uint8),
            "sc_rx_listener": np.empty(self._nthreads * n, dtype=np.int64),
            "sc_rx_sender": np.empty(self._nthreads * n, dtype=np.int64),
            "sc_cand": np.empty(self._nthreads * n, dtype=np.int64),
            "sc_candflag": np.empty(self._nthreads * n, dtype=np.uint8),
        }
        for name, array in self._scratch.items():
            setattr(state, name, _ptr(array))
        state.error = 0
        self._state = state

    def advance(self, k: int, rows: list[int]) -> int:
        """Advance ``rows`` by up to ``k`` native slots; return count.

        The stride is capped at the tightest per-trial slot budget so
        the numpy path's budget ``RuntimeError`` still fires on the
        exact slot it would have (the caller falls back to ``advance``
        when 0 comes back).
        """
        runtime = self._runtime
        budget = min(
            runtime.max_slots[t] - runtime.slots[t] for t in rows
        )
        k = min(int(k), int(budget))
        if k <= 0:
            return 0
        state = self._state
        self._live[:] = 0
        self._live[rows] = 1
        self._trial_slots[:] = runtime.slots
        self._slot_counts[:] = 0
        self._tx_totals[:] = 0
        self._rx_totals[:] = 0
        row_idx = np.asarray(rows, dtype=np.intp)
        self._trial_target[:] = self._trial_slots
        self._trial_target[row_idx] += k

        while True:
            before = self._trial_slots[row_idx].sum()
            rc = int(self._lib.repro_advance_slots(ctypes.byref(state)))
            if rc < 0:
                if rc == ERR_BETA_VIOLATION:
                    raise RuntimeError(
                        "beta > 1 violated: two decodable senders at "
                        "one listener"
                    )
                raise RuntimeError(
                    f"native kernel failed with code {rc}"
                )  # pragma: no cover - no other codes exist
            self._drain_events()
            pending = self._trial_slots[row_idx] < self._trial_target[row_idx]
            if not pending.any():
                break
            progressed = self._trial_slots[row_idx].sum() > before
            if not self._refill_uniforms() and not progressed:
                raise RuntimeError(
                    "native kernel made no progress"
                )  # pragma: no cover - defensive
        self._sync_counters(rows)
        return k

    def _drain_events(self) -> None:
        """Append the C event records to the per-trial traces.

        Segments drain in thread order — ascending contiguous trial
        ranges — and a trial's events always land in the same segment,
        so each trial's event stream is in slot order regardless of
        thread count or how many calls the stride took.  Ack events
        also detach the acked broadcast from ``_current`` (adapter-free
        batches never rebroadcast mid-advance, so the message at drain
        time is the message that acked)."""
        runtime = self._runtime
        traces = runtime.traces
        current = runtime._current
        make = TraceEvent._make
        seg = self._ev_seg
        for th, count in enumerate(self._ev_lens.tolist()):
            if not count:
                continue
            base = th * seg
            for trial, slot, code, node, mid in self._events[
                base : base + count
            ].tolist():
                kind = _EVENT_KINDS[code]
                data = None if code == EV_WAKE else mid
                traces[trial].events.append(make((slot, kind, node, data)))
                if code == EV_ACK:
                    current[trial][node] = None

    def _refill_uniforms(self) -> bool:
        """Refill exhausted lanes that will step next slot; True if any.

        Whole-chunk refills of exactly the busy live lanes — the same
        lanes, the same ``Generator.random(chunk)`` calls, and the same
        per-lane stream positions ``NodeUniformBuffer.take`` would
        produce on the numpy path next slot."""
        runtime = self._runtime
        uniforms = runtime._uniforms
        live_cells = np.repeat(self._live.astype(bool), runtime.n)
        lanes = np.flatnonzero(
            runtime._busy & live_cells & (uniforms._cursor >= uniforms.chunk)
        )
        if not lanes.size:
            return False
        uniforms.refill(lanes)
        return True

    def _sync_counters(self, rows: list[int]) -> None:
        """Fold the per-trial accumulators back into Python state."""
        runtime = self._runtime
        slots = self._trial_slots.tolist()
        slot_counts = self._slot_counts.tolist()
        tx_totals = self._tx_totals.tolist()
        rx_totals = self._rx_totals.tolist()
        for t in rows:
            runtime.slots[t] = slots[t]
            channel = runtime.channels[t]
            channel._slot_count += slot_counts[t]
            channel.total_transmissions += tx_totals[t]
            channel.total_receptions += rx_totals[t]
