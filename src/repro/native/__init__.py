"""repro.native — the compiled slot-loop kernel behind the columnar path.

The remaining hot-path cost after the columnar rewrite is per-slot
Python dispatch: every slot of a counters-only sweep still pays ~20
numpy calls and their temporaries.  This package fuses the whole slot —
transmit decision from pre-drawn uniforms, dense gain gather, SINR
reduce, decode, dedup, kernel state step — into one C loop
(``_advance.c``) that advances the ``(trials, n)`` lattice k slots per
call, **bit-identical** to the numpy path and the object runtime (the
RNG-stream contract is untouched: the C kernel reads the very same
:class:`~repro.simulation.rng.NodeUniformBuffer` storage the numpy path
gathers from, consuming the same draws per node per slot).

Backend selection
-----------------
The kernel is a plain shared library loaded through :mod:`ctypes` — no
CPython/numpy ABI, so a machine without a compiler simply keeps the
pure-numpy reference path.  :func:`available` probes whether the
library is built and loadable; :func:`resolve_backend` folds in the
``REPRO_NATIVE`` environment override (``0`` forces the numpy
fallback, ``1`` demands the native kernel and raises when it is
missing, unset auto-selects) and any explicit ``native=`` argument
threaded down from :func:`repro.experiments.run_trials`.

Build with ``make native`` (or ``python -m repro.native.build``); see
the "Native kernels" section of ``docs/architecture.md`` for the
fusion boundary and the fallback matrix.
"""

from __future__ import annotations

import ctypes
import os
from pathlib import Path

from repro.native.build import SOURCE, TARGET, build

__all__ = [
    "available",
    "build",
    "lib_path",
    "load",
    "resolve_backend",
    "resolve_threads",
    "NativeState",
    "EV_ACK",
    "EV_WAKE",
    "EV_RCV",
]

EV_ACK = 0
EV_WAKE = 1
EV_RCV = 2

# Return codes of repro_advance_slots beyond "slots completed".
ERR_BETA_VIOLATION = -2


class NativeState(ctypes.Structure):
    """ctypes mirror of the ``repro_state`` struct in ``_advance.c``.

    Field order and widths must match the C definition exactly; every
    field is 8 bytes on LP64 platforms, so no packing pragma is needed.
    """

    _fields_ = [
        ("trials", ctypes.c_long),
        ("n", ctypes.c_long),
        ("nthreads", ctypes.c_long),
        ("kind", ctypes.c_long),
        ("sparse", ctypes.c_long),
        ("trial_target", ctypes.c_void_p),
        ("live", ctypes.c_void_p),
        ("busy", ctypes.c_void_p),
        ("awake", ctypes.c_void_p),
        ("tx_mid", ctypes.c_void_p),
        ("seen", ctypes.c_void_p),
        ("uni_buf", ctypes.c_void_p),
        ("uni_cursor", ctypes.c_void_p),
        ("chunk", ctypes.c_long),
        ("gains", ctypes.c_void_p),
        ("gain_stride", ctypes.c_long),
        ("noise", ctypes.c_double),
        ("beta", ctypes.c_double),
        ("nbr", ctypes.c_void_p),
        ("indptr", ctypes.c_void_p),
        ("slots_run", ctypes.c_void_p),
        ("transmissions", ctypes.c_void_p),
        ("phase_length", ctypes.c_void_p),
        ("ack_budget", ctypes.c_void_p),
        ("probability", ctypes.c_void_p),
        ("block_remaining", ctypes.c_void_p),
        ("tp", ctypes.c_void_p),
        ("rc", ctypes.c_void_p),
        ("halted_col", ctypes.c_void_p),
        ("fallback_pending", ctypes.c_void_p),
        ("fallbacks", ctypes.c_void_p),
        ("halt_budget", ctypes.c_void_p),
        ("rc_threshold", ctypes.c_void_p),
        ("inner_block_slots", ctypes.c_void_p),
        ("prob_cap", ctypes.c_void_p),
        ("fallback_divisor", ctypes.c_void_p),
        ("floor_probability", ctypes.c_void_p),
        ("trial_slots", ctypes.c_void_p),
        ("slot_counts", ctypes.c_void_p),
        ("tx_totals", ctypes.c_void_p),
        ("rx_totals", ctypes.c_void_p),
        ("events", ctypes.c_void_p),
        ("ev_seg", ctypes.c_long),
        ("ev_lens", ctypes.c_void_p),
        ("sc_tx", ctypes.c_void_p),
        ("sc_tot", ctypes.c_void_p),
        ("sc_txflag", ctypes.c_void_p),
        ("sc_stepped", ctypes.c_void_p),
        ("sc_decoded", ctypes.c_void_p),
        ("sc_rx_listener", ctypes.c_void_p),
        ("sc_rx_sender", ctypes.c_void_p),
        ("sc_cand", ctypes.c_void_p),
        ("sc_candflag", ctypes.c_void_p),
        # C11 _Atomic long: same size and alignment as long on LP64;
        # only the C side touches it concurrently.
        ("error", ctypes.c_long),
    ]


_lib: ctypes.CDLL | None = None
_load_failed = False


def lib_path() -> Path:
    """Where the compiled kernel lives (next to its C source)."""
    return TARGET


def load() -> ctypes.CDLL | None:
    """The loaded kernel library, or None when it is not built.

    The result is cached: the first failing probe (missing or unloadable
    ``.so``) pins the session to the numpy fallback — rebuild and
    restart to pick a fresh kernel up.
    """
    global _lib, _load_failed
    if _lib is not None or _load_failed:
        return _lib
    if not TARGET.is_file():
        _load_failed = True
        return None
    try:
        lib = ctypes.CDLL(str(TARGET))
        lib.repro_advance_slots.argtypes = [ctypes.POINTER(NativeState)]
        lib.repro_advance_slots.restype = ctypes.c_long
    except OSError:
        _load_failed = True
        return None
    _lib = lib
    return _lib


def available() -> bool:
    """True when the compiled kernel is built and loadable."""
    return load() is not None


def resolve_backend(explicit: bool | None = None) -> bool:
    """Decide whether the native backend should run.

    ``explicit`` is the ``native=`` argument threaded down from the
    experiment engine: ``False`` always keeps the numpy reference path,
    ``True`` demands the native kernel (``RuntimeError`` when it is not
    built), and ``None`` defers to the ``REPRO_NATIVE`` environment
    variable — ``0`` forces the fallback, ``1`` demands the kernel,
    unset (or anything else) auto-selects it when available.
    """
    if explicit is False:
        return False
    if explicit is None:
        env = os.environ.get("REPRO_NATIVE", "").strip()
        if env == "0":
            return False
        if env != "1":
            return available()
    if not available():
        origin = (
            "native=True" if explicit else "REPRO_NATIVE=1"
        )
        raise RuntimeError(
            f"{origin} demands the native kernel, but {TARGET.name} is "
            f"not built; run `make native` (source: {SOURCE})"
        )
    return True


def resolve_threads(explicit: int | None = None) -> int:
    """How many kernel threads partition the trials axis.

    ``explicit`` is the ``native_threads=`` knob threaded down from
    :class:`~repro.experiments.policy.ExecutionPolicy`; ``None`` defers
    to the ``REPRO_NATIVE_THREADS`` environment variable, and an unset
    (or unparseable) variable keeps the single-threaded default.  The
    count only shapes wall-clock: results are bit-identical for every
    value (the equivalence suite pins {1, 2, 8}).
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError("native_threads must be >= 1")
        return int(explicit)
    env = os.environ.get("REPRO_NATIVE_THREADS", "").strip()
    if env:
        try:
            threads = int(env)
        except ValueError:
            raise RuntimeError(
                f"REPRO_NATIVE_THREADS={env!r} is not an integer"
            ) from None
        if threads < 1:
            raise RuntimeError("REPRO_NATIVE_THREADS must be >= 1")
        return threads
    return 1
