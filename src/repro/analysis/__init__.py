"""Analysis-side tooling: bound formulas, network metrics, harness.

* :mod:`repro.analysis.bounds` — every closed-form bound of Tables 1–2
  (and the baselines they are compared against) as plain functions, so
  benchmarks can plot measured latencies against predicted shapes.
* :mod:`repro.analysis.metrics` — Δ, D, Λ and friends computed from a
  deployment.
* :mod:`repro.analysis.harness` — shared experiment plumbing: build a
  full protocol stack over a deployment, run it, collect reports, and
  print paper-style comparison tables.
"""

from repro.analysis.bounds import (
    fack_upper_bound,
    fprog_lower_bound,
    fapprog_upper_bound,
    smb_upper_bound,
    smb_bound_daum,
    smb_bound_jurdzinski,
    smb_lower_bound,
    mmb_upper_bound,
    mmb_bound_decay_pipeline,
    consensus_upper_bound,
    decay_approg_lower_bound,
    log2c,
    log_star,
)
from repro.analysis.metrics import NetworkMetrics, compute_metrics
from repro.analysis.harness import (
    StackBundle,
    build_combined_stack,
    build_decay_stack,
    build_approg_stack,
    run_local_broadcast_experiment,
    format_table,
    correlation_with_shape,
)

__all__ = [
    "fack_upper_bound",
    "fprog_lower_bound",
    "fapprog_upper_bound",
    "smb_upper_bound",
    "smb_bound_daum",
    "smb_bound_jurdzinski",
    "smb_lower_bound",
    "mmb_upper_bound",
    "mmb_bound_decay_pipeline",
    "consensus_upper_bound",
    "decay_approg_lower_bound",
    "log2c",
    "log_star",
    "NetworkMetrics",
    "compute_metrics",
    "StackBundle",
    "build_combined_stack",
    "build_decay_stack",
    "build_approg_stack",
    "run_local_broadcast_experiment",
    "format_table",
    "correlation_with_shape",
]
