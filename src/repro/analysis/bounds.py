"""Closed-form bounds of Tables 1 and 2, as plain functions.

These are *shape predictors*: Θ-expressions with all leading constants
set to 1.  Benchmarks compare measured latencies against these curves
by correlation / ratio-stability, never by absolute value (the paper
itself only claims asymptotics).

Every function documents the paper source of its formula.
"""

from __future__ import annotations

import math

__all__ = [
    "log2c",
    "log_star",
    "fack_upper_bound",
    "fprog_lower_bound",
    "fapprog_upper_bound",
    "smb_upper_bound",
    "smb_bound_daum",
    "smb_bound_jurdzinski",
    "smb_lower_bound",
    "mmb_upper_bound",
    "mmb_bound_decay_pipeline",
    "consensus_upper_bound",
    "decay_approg_lower_bound",
]


def log2c(x: float) -> float:
    """Clamped log2: log2(max(x, 2)) — keeps bounds monotone and >= 1."""
    return math.log2(max(x, 2.0))


def log_star(x: float) -> int:
    """Iterated base-2 logarithm, >= 1 for the ranges used here."""
    count = 0
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return max(count, 1)


def fack_upper_bound(delta: float, lam: float, eps_ack: float) -> float:
    """Theorem 5.1: f_ack = O(Δ·log(Λ/ε) + log Λ·log(Λ/ε))."""
    log_term = log2c(lam / eps_ack)
    return delta * log_term + log2c(lam) * log_term


def fprog_lower_bound(delta: float) -> float:
    """Theorem 6.1: f_prog >= Δ for any implementation."""
    return float(delta)


def fapprog_upper_bound(lam: float, eps_approg: float, alpha: float) -> float:
    """Theorem 9.1:
    f_approg = O((log^α Λ + log*(1/ε))·log Λ·log(1/ε))."""
    poly_log = log2c(lam) ** alpha + log_star(1.0 / eps_approg)
    return poly_log * log2c(lam) * log2c(1.0 / eps_approg)


def smb_upper_bound(
    diameter_tilde: float, n: float, eps_smb: float, lam: float, alpha: float
) -> float:
    """Theorem 12.7: SMB in O((D_{G_{1-2ε}} + log(n/ε))·log^{α+1} Λ)."""
    return (diameter_tilde + log2c(n / eps_smb)) * log2c(lam) ** (alpha + 1)


def smb_bound_daum(
    diameter: float, n: float, lam: float, alpha: float
) -> float:
    """Table 2, row [14]: O(D·log^{α+1}(Λ)·log n) (Daum et al.)."""
    return diameter * log2c(lam) ** (alpha + 1) * log2c(n)


def smb_bound_jurdzinski(diameter: float, n: float) -> float:
    """Table 2, row [32]: O(D·log² n) (Jurdziński et al.)."""
    return diameter * log2c(n) ** 2


def smb_lower_bound(diameter: float, n: float) -> float:
    """Table 1: Ω(D·log(n/D) + log² n) (graph-model lower bounds
    [2, 42], which transfer to the SINR setting)."""
    return diameter * log2c(n / max(diameter, 1.0)) + log2c(n) ** 2


def mmb_upper_bound(
    diameter_tilde: float,
    k: float,
    delta: float,
    n: float,
    eps_mmb: float,
    lam: float,
    alpha: float,
) -> float:
    """Theorem 12.7: MMB in
    O(D̃·log^{α+1} Λ + k·(Δ + polylog(nkΛ/ε))·log(nk/ε)).

    The crucial feature is *additivity* of the D-term and the k-term.
    """
    polylog = log2c(n * k * lam / eps_mmb) ** 2
    return diameter_tilde * log2c(lam) ** (alpha + 1) + k * (
        delta + polylog
    ) * log2c(n * k / eps_mmb)


def mmb_bound_decay_pipeline(
    diameter: float, k: float, delta: float, n: float
) -> float:
    """§2.1: the MMB bound O((D + k)·(Δ·log n + log² n)) obtained from
    per-hop local broadcast [29] — D and k enter multiplicatively with
    Δ; the baseline our MMB experiment compares shapes against."""
    return (diameter + k) * (delta * log2c(n) + log2c(n) ** 2)


def consensus_upper_bound(
    diameter: float, delta: float, lam: float, n: float, eps_cons: float
) -> float:
    """Corollary 5.5: CONS in O(D·(Δ + log Λ)·log(nΛ/ε))."""
    return diameter * (delta + log2c(lam)) * log2c(n * lam / eps_cons)


def decay_approg_lower_bound(delta: float, eps_approg: float) -> float:
    """Theorem 8.1: Decay needs Ω(Δ·log(1/ε)) for approximate progress."""
    return delta * log2c(1.0 / eps_approg)
