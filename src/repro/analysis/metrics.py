"""Network metrics: the quantities the bounds are parameterized by."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.geometry.points import PointSet
from repro.sinr.graphs import (
    approx_connectivity_graph,
    graph_degree,
    graph_diameter,
    link_length_ratio,
    strong_connectivity_graph,
)
from repro.sinr.params import SINRParameters

__all__ = ["NetworkMetrics", "compute_metrics", "metrics_from_graphs"]


@dataclass(frozen=True)
class NetworkMetrics:
    """The paper's parameters for one deployment.

    Attributes mirror §2's notation: n, Δ and D for both G_{1-ε} and
    G_{1-2ε}, and the length ratio Λ of G_{1-ε}.
    """

    n: int
    degree: int  # Δ_{G_{1-ε}}
    degree_tilde: int  # Δ_{G_{1-2ε}}
    diameter: int | None  # D_{G_{1-ε}} (None if disconnected)
    diameter_tilde: int | None  # D_{G_{1-2ε}} (None if disconnected)
    lam: float  # Λ
    connected: bool
    connected_tilde: bool

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"n={self.n} Δ={self.degree} Δ̃={self.degree_tilde} "
            f"D={self.diameter} D̃={self.diameter_tilde} Λ={self.lam:.2f}"
        )


def metrics_from_graphs(
    n: int, strong: nx.Graph, approx: nx.Graph
) -> NetworkMetrics:
    """Derive the bound parameters from already-built G_{1-ε} / G_{1-2ε}.

    Used by the experiment engine's artifact cache, which builds both
    graphs once per deployment and shares them across trials.
    """
    connected = strong.number_of_nodes() > 0 and nx.is_connected(strong)
    connected_tilde = approx.number_of_nodes() > 0 and nx.is_connected(approx)
    return NetworkMetrics(
        n=n,
        degree=graph_degree(strong),
        degree_tilde=graph_degree(approx),
        diameter=graph_diameter(strong) if connected else None,
        diameter_tilde=graph_diameter(approx) if connected_tilde else None,
        lam=link_length_ratio(strong),
        connected=connected,
        connected_tilde=connected_tilde,
    )


def compute_metrics(
    points: PointSet, params: SINRParameters
) -> NetworkMetrics:
    """Compute all bound parameters for a deployment."""
    strong = strong_connectivity_graph(points, params)
    approx = approx_connectivity_graph(points, params)
    return metrics_from_graphs(len(points), strong, approx)
