"""Programmatic regeneration of the paper's Table 1.

Table 1 summarizes the algorithmic results: for each task (f_ack,
f_prog, f_approg, global SMB/MMB/CONS) the known lower bound and the
paper's upper bound.  This module evaluates every cell's Θ/Ω-expression
for a concrete parameterization, following the caption's comparison
recipe: "to compare graph-based lower bounds with our upper bounds, one
might choose Λ = n ... and ε = n^{-c} to achieve w.h.p. correctness."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import (
    consensus_upper_bound,
    fack_upper_bound,
    fapprog_upper_bound,
    fprog_lower_bound,
    log2c,
    mmb_upper_bound,
    smb_lower_bound,
    smb_upper_bound,
)

__all__ = ["Table1Row", "render_table1", "table1_rows"]


@dataclass(frozen=True)
class Table1Row:
    """One task row: the bound pair the paper tabulates."""

    task: str
    lower_bound: float | None  # None where the paper lists none
    upper_bound: float | None
    note: str = ""


def table1_rows(
    n: int,
    delta: int,
    diameter: int,
    diameter_tilde: int,
    k: int = 4,
    alpha: float = 3.0,
    lam: float | None = None,
    eps: float | None = None,
) -> list[Table1Row]:
    """Evaluate every Table 1 cell.

    Defaults follow the caption's recipe: ``lam = n`` (accounting for
    possibly high degree) and ``eps = 1/n`` (w.h.p. correctness).
    """
    if n < 2 or delta < 1 or diameter < 1 or diameter_tilde < 1:
        raise ValueError("network parameters must be positive (n >= 2)")
    if diameter_tilde < diameter:
        raise ValueError("D_tilde >= D (G_tilde is a subgraph of G)")
    lam = float(n) if lam is None else lam
    eps = 1.0 / n if eps is None else eps
    return [
        Table1Row(
            task="f_ack",
            lower_bound=float(delta),
            upper_bound=fack_upper_bound(delta, lam, eps),
            note="lower bound trivial (Remark 5.3)",
        ),
        Table1Row(
            task="f_prog",
            lower_bound=fprog_lower_bound(delta),
            upper_bound=fack_upper_bound(delta, lam, eps),
            note="lower bound Thm 6.1; best upper = the f_ack algorithm",
        ),
        Table1Row(
            task="f_approg",
            lower_bound=None,
            upper_bound=fapprog_upper_bound(lam, eps, alpha),
            note="the paper's headline bound (Thm 9.1)",
        ),
        Table1Row(
            task="global SMB",
            lower_bound=smb_lower_bound(diameter, n),
            upper_bound=smb_upper_bound(diameter_tilde, n, eps, lam, alpha),
            note="lower bound from graph models [2, 42]",
        ),
        Table1Row(
            task="global MMB",
            # Ω(D·log(n/D) + k·log n + log² n), combining [2, 42, 20].
            lower_bound=smb_lower_bound(diameter, n) + k * log2c(n),
            upper_bound=mmb_upper_bound(
                diameter_tilde, k, delta, n, eps, lam, alpha
            ),
            note="lower bound adds Ω(k log n) [20]",
        ),
        Table1Row(
            task="global CONS",
            lower_bound=None,
            upper_bound=consensus_upper_bound(diameter, delta, lam, n, eps),
            note="first efficient algorithm in this model (Cor. 5.5)",
        ),
    ]


def render_table1(rows: list[Table1Row]) -> str:
    """Render rows as an aligned text table (paper-style)."""
    header = f"{'Task':<12}{'Lower bound':>14}{'Upper bound':>16}  Note"
    lines = [header, "-" * len(header)]
    for row in rows:
        lower = "-" if row.lower_bound is None else f"{row.lower_bound:,.0f}"
        upper = "-" if row.upper_bound is None else f"{row.upper_bound:,.0f}"
        lines.append(f"{row.task:<12}{lower:>14}{upper:>16}  {row.note}")
    return "\n".join(lines)
