"""Shared experiment plumbing for tests, examples and benchmarks.

A :class:`StackBundle` wires a deployment, its SINR channel, a MAC
population and optional per-node clients into a ready-to-run
:class:`~repro.simulation.runtime.Runtime`, and carries the induced
graphs and metrics every measurement needs.

Deployment-derived artifacts (distance/gain matrices, connectivity
graphs, metrics) come from the keyed cache in
:mod:`repro.experiments.cache`, so building several stacks over one
deployment — a multi-trial sweep, or merely a builder that needs the
metrics before assembling — derives them once.  For multi-trial
experiments prefer the batched engine
(:func:`repro.experiments.run_trials`), which drives these same
builders; the single-trial path below is the thin wrapper it is
verified bit-identical against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx
import numpy as np

from repro.absmac.layer import MacClient, MacLayerBase
from repro.analysis.metrics import NetworkMetrics
from repro.core.ack_protocol import AckConfig, AckMacLayer
from repro.core.approx_progress import (
    ApproxProgressConfig,
    ApproxProgressMacLayer,
    EpochSchedule,
)
from repro.core.combined import CombinedMacLayer
from repro.core.decay import DecayConfig, DecayMacLayer
from repro.core.events import MessageRegistry
from repro.core.spec import (
    AckReport,
    ProgressReport,
    measure_acknowledgments,
    measure_approximate_progress,
)
from repro.experiments.cache import deployment_artifacts
from repro.geometry.points import PointSet
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.sinr.channel import Channel, JammingAdversary
from repro.sinr.params import SINRParameters
from repro.topology import TopologyProvider

__all__ = [
    "StackBundle",
    "default_ack_config",
    "default_decay_config",
    "build_combined_stack",
    "build_decay_stack",
    "build_approg_stack",
    "build_ack_stack",
    "attach_exact_local_broadcast",
    "run_local_broadcast_experiment",
    "format_table",
    "correlation_with_shape",
]


@dataclass
class StackBundle:
    """Everything one experiment needs, wired together."""

    points: PointSet
    params: SINRParameters
    runtime: Runtime
    macs: list[MacLayerBase]
    clients: list[MacClient]
    registry: MessageRegistry
    metrics: NetworkMetrics
    graph: nx.Graph  # G_{1-ε}
    approx_graph: nx.Graph  # G_{1-2ε}

    def ack_report(self, intervals=None) -> AckReport:
        """Acknowledgment measurements of the run so far."""
        return measure_acknowledgments(
            self.runtime.trace, self.graph, intervals
        )

    def approg_report(self, intervals=None) -> ProgressReport:
        """Approximate-progress measurements of the run so far."""
        return measure_approximate_progress(
            self.runtime.trace, self.graph, self.approx_graph, intervals
        )


def default_ack_config(lam: float, eps_ack: float) -> AckConfig:
    """The paper-formula Algorithm B.1 default: Ñ = 4Λ² at the measured Λ.

    Single source of truth shared by the harness builders and the
    columnar fast path (``repro.vectorized.engine.plan_protocol_config``)
    — the two executors' bit-identity contract requires equal configs,
    so the formula must never fork.
    """
    return AckConfig(
        contention_bound=SINRParameters.max_contention_bound(max(lam, 2.0)),
        eps_ack=eps_ack,
    )


def default_decay_config(n: int, eps_ack: float) -> DecayConfig:
    """The Decay baseline default: contention bound = population size.

    Shared with the columnar fast path exactly like
    :func:`default_ack_config`.
    """
    return DecayConfig(
        contention_bound=max(float(n), 2.0), eps_ack=eps_ack
    )


def _assemble(
    points: PointSet,
    params: SINRParameters,
    mac_factory: Callable[[int, MessageRegistry, MacClient], MacLayerBase],
    client_factory: Callable[[int], MacClient] | None,
    seed: int,
    max_slots: int,
    adversary: JammingAdversary | None,
    record_physical: bool,
    topology: TopologyProvider | None = None,
) -> StackBundle:
    artifacts = deployment_artifacts(points, params)
    registry = MessageRegistry()
    n = len(points)
    clients = [
        client_factory(i) if client_factory else MacClient() for i in range(n)
    ]
    macs = [mac_factory(i, registry, clients[i]) for i in range(n)]
    channel = Channel(
        points,
        params,
        adversary=adversary,
        distances=artifacts.distances,
        gains=artifacts.gains,
        topology=topology,
    )
    runtime = Runtime(
        channel,
        macs,
        RuntimeConfig(
            seed=seed,
            max_slots=max_slots,
            record_physical=record_physical,
        ),
    )
    return StackBundle(
        points=points,
        params=params,
        runtime=runtime,
        macs=macs,
        clients=clients,
        registry=registry,
        metrics=artifacts.metrics,
        graph=artifacts.graph,
        approx_graph=artifacts.approx_graph,
    )


def build_combined_stack(
    points: PointSet,
    params: SINRParameters,
    eps_ack: float = 0.1,
    eps_approg: float = 0.1,
    client_factory: Callable[[int], MacClient] | None = None,
    seed: int = 0,
    max_slots: int = 2_000_000,
    adversary: JammingAdversary | None = None,
    ack_config: AckConfig | None = None,
    approg_config: ApproxProgressConfig | None = None,
    record_physical: bool = True,
    topology: TopologyProvider | None = None,
) -> StackBundle:
    """The paper's full absMAC (Algorithm 11.1) over a deployment.

    Configs default to the paper formulas evaluated at the deployment's
    measured Λ (standing in for the "known polynomial bound on Λ").
    """
    metrics = deployment_artifacts(points, params).metrics
    lam = max(metrics.lam, 2.0)
    if ack_config is None:
        ack_config = default_ack_config(lam, eps_ack)
    if approg_config is None:
        approg_config = ApproxProgressConfig(
            lambda_bound=lam, eps_approg=eps_approg, alpha=params.alpha
        )
    schedule = EpochSchedule(approg_config)

    def factory(i: int, reg: MessageRegistry, client: MacClient):
        return CombinedMacLayer(i, reg, ack_config, schedule, client)

    return _assemble(
        points, params, factory, client_factory, seed, max_slots,
        adversary, record_physical, topology,
    )


def build_ack_stack(
    points: PointSet,
    params: SINRParameters,
    eps_ack: float = 0.1,
    client_factory: Callable[[int], MacClient] | None = None,
    seed: int = 0,
    max_slots: int = 2_000_000,
    adversary: JammingAdversary | None = None,
    ack_config: AckConfig | None = None,
    record_physical: bool = True,
    topology: TopologyProvider | None = None,
) -> StackBundle:
    """Algorithm B.1 alone (the Theorem 5.1 object of study)."""
    metrics = deployment_artifacts(points, params).metrics
    lam = max(metrics.lam, 2.0)
    if ack_config is None:
        ack_config = default_ack_config(lam, eps_ack)

    def factory(i: int, reg: MessageRegistry, client: MacClient):
        return AckMacLayer(i, reg, ack_config, client)

    return _assemble(
        points, params, factory, client_factory, seed, max_slots,
        adversary, record_physical, topology,
    )


def build_approg_stack(
    points: PointSet,
    params: SINRParameters,
    eps_approg: float = 0.1,
    client_factory: Callable[[int], MacClient] | None = None,
    seed: int = 0,
    max_slots: int = 2_000_000,
    adversary: JammingAdversary | None = None,
    approg_config: ApproxProgressConfig | None = None,
    record_physical: bool = True,
    topology: TopologyProvider | None = None,
) -> StackBundle:
    """Algorithm 9.1 alone (the Theorem 9.1 object of study)."""
    metrics = deployment_artifacts(points, params).metrics
    lam = max(metrics.lam, 2.0)
    if approg_config is None:
        approg_config = ApproxProgressConfig(
            lambda_bound=lam, eps_approg=eps_approg, alpha=params.alpha
        )
    schedule = EpochSchedule(approg_config)

    def factory(i: int, reg: MessageRegistry, client: MacClient):
        return ApproxProgressMacLayer(i, reg, schedule, client)

    return _assemble(
        points, params, factory, client_factory, seed, max_slots,
        adversary, record_physical, topology,
    )


def build_decay_stack(
    points: PointSet,
    params: SINRParameters,
    eps_ack: float = 0.1,
    client_factory: Callable[[int], MacClient] | None = None,
    seed: int = 0,
    max_slots: int = 2_000_000,
    adversary: JammingAdversary | None = None,
    decay_config: DecayConfig | None = None,
    record_physical: bool = True,
    topology: TopologyProvider | None = None,
) -> StackBundle:
    """The Decay MAC baseline over the same deployment."""
    if decay_config is None:
        decay_config = default_decay_config(len(points), eps_ack)

    def factory(i: int, reg: MessageRegistry, client: MacClient):
        return DecayMacLayer(i, reg, decay_config, client)

    return _assemble(
        points, params, factory, client_factory, seed, max_slots,
        adversary, record_physical, topology,
    )


def attach_exact_local_broadcast(bundle: StackBundle) -> None:
    """Enable Remark 4.6's exact local broadcast on a stack.

    Equips every MAC node with a range oracle built from G_{1-ε}, so
    rcv events fire only for messages transmitted by strong neighbors.
    Models the platform capability ("nodes can detect in which range a
    received message originated") the remark discusses; the default
    stacks leave it off, matching the paper's main setting.
    """
    graph = bundle.graph
    for mac in bundle.macs:
        me = mac.node_id
        mac.neighbor_oracle = (
            lambda sender, me=me: graph.has_edge(me, sender)
        )


def run_local_broadcast_experiment(
    bundle: StackBundle,
    broadcasters: Sequence[int],
    extra_slots: int = 0,
) -> tuple[AckReport, ProgressReport]:
    """Broadcast from the given nodes, run until all are acked.

    Returns the acknowledgment and approximate-progress reports.
    MAC layers that never acknowledge (the standalone Algorithm 9.1
    layer) must be run with explicit slot counts instead.
    """
    for node in broadcasters:
        bundle.macs[node].bcast(payload=f"payload-{node}")

    def all_acked(rt: Runtime) -> bool:
        return all(not bundle.macs[i].busy for i in broadcasters)

    bundle.runtime.run_until(all_acked, check_every=16)
    if extra_slots:
        bundle.runtime.run(extra_slots)
    return bundle.ack_report(), bundle.approg_report()


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text aligned table for benchmark/experiment output."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def correlation_with_shape(
    measured: Sequence[float], predicted: Sequence[float]
) -> dict:
    """How well measured latencies track a predicted Θ-shape.

    Returns the Pearson correlation and the spread of the
    measured/predicted ratio (max/min); a correct shape shows high
    correlation and a bounded ratio spread even though absolute
    constants differ.
    """
    if len(measured) != len(predicted) or len(measured) < 2:
        raise ValueError("need two aligned samples at least")
    m = np.asarray(measured, dtype=np.float64)
    p = np.asarray(predicted, dtype=np.float64)
    if np.all(p > 0) and np.all(m > 0):
        ratios = m / p
        spread = float(ratios.max() / ratios.min())
    else:
        spread = float("inf")
    if np.std(m) == 0 or np.std(p) == 0:
        corr = 1.0 if np.allclose(m / m.max(), p / p.max()) else 0.0
    else:
        corr = float(np.corrcoef(m, p)[0, 1])
    return {"pearson": corr, "ratio_spread": spread}
