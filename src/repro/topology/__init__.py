"""repro.topology — dynamic-topology providers (mobility & churn).

A :class:`TopologyProvider` turns "geometry is a constant" from an
implicit invariant of every executor into an explicit, swappable layer:
attach one to a :class:`~repro.experiments.plans.TrialPlan` (or pass it
to :class:`~repro.sinr.channel.Channel`) and the deployment evolves at
epoch boundaries — identically on the sequential, lockstep-batched and
columnar executors.  See :mod:`repro.topology.providers` for the epoch
contract and the RNG-stream allocation rules.
"""

from repro.topology.providers import (
    ChurnSchedule,
    CompositeTopology,
    StaticTopology,
    TopologyProvider,
    TopologyState,
    TopologyUpdate,
    WaypointMobility,
    random_churn_schedule,
)

__all__ = [
    "ChurnSchedule",
    "CompositeTopology",
    "StaticTopology",
    "TopologyProvider",
    "TopologyState",
    "TopologyUpdate",
    "WaypointMobility",
    "random_churn_schedule",
]
