"""Topology dynamics: mobility and churn as an explicit, swappable layer.

Every executor in this codebase used to assume *frozen geometry*:
distances and gains were computed once per trial, cached by deployment
key, and stacked into ``(trials, n, n)`` tensors by the batched paths.
This module converts that implicit invariant into an explicit layer — a
:class:`TopologyProvider` describes how a deployment evolves over the
course of a trial, and every runtime advances it at the same slot
boundaries:

* :class:`StaticTopology` — today's behavior.  ``is_dynamic`` is False,
  no state is bound, no RNG is spawned, and every run is byte-identical
  to a run without a provider.
* :class:`WaypointMobility` — random-waypoint motion on an epoch
  schedule: every ``epoch_slots`` slots each node moves up to ``speed``
  distance units toward its private waypoint (drawn uniformly in the
  deployment's bounding box, or an explicit one), picking a fresh
  waypoint on arrival.  Distances → gains are re-derived per epoch
  through the shared geometry cache
  (:meth:`repro.experiments.cache.ArtifactCache.geometry`).
* :class:`ChurnSchedule` — nodes crash and recover at scheduled slots.
  A crashed node is masked out of the protocol population (its automaton
  is frozen: no ``on_slot`` call, no RNG draw, no kernel step) and out
  of the SINR physics (it neither transmits, interferes, nor decodes).
* :class:`CompositeTopology` — mobility and churn together.

Epoch contract
--------------
``Channel.advance_topology(slot)`` is called exactly once per trial per
slot, in increasing slot order, *before* that slot's transmit decisions
— by the sequential :class:`~repro.simulation.runtime.Runtime`, the
lockstep batched executor in :mod:`repro.experiments.engine`, and the
columnar :class:`~repro.vectorized.runtime.VectorRuntime` alike.  All
provider state transitions therefore happen at identical slot
boundaries on every executor, which is what keeps dynamic-topology
trials dataclass-equal across the three.

RNG-stream allocation
---------------------
Mobility draws come from a generator seeded by the *provider's own*
``seed`` field, never from the trial's master seed: node protocol
streams (children ``0..n-1``) and the stochastic-channel stream (child
``n``, PR 4) are untouched, so attaching a provider perturbs only the
geometry.  A further consequence: every trial of a sweep sharing one
provider traverses the *same* trajectory, so per-epoch geometry is
cache-shared across trials (and the batched tensor stacks collapse to
zero-stride views).  :class:`ChurnSchedule` is fully deterministic and
consumes no randomness at all; :func:`random_churn_schedule` derives a
reproducible schedule from an explicit seed ahead of time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.geometry.points import PointSet, bounding_box

__all__ = [
    "TopologyUpdate",
    "TopologyState",
    "TopologyProvider",
    "StaticTopology",
    "WaypointMobility",
    "ChurnSchedule",
    "CompositeTopology",
    "random_churn_schedule",
]


@dataclass
class TopologyUpdate:
    """What changed at one slot boundary.

    ``points`` is the full new deployment (None = geometry unchanged);
    ``alive`` is the full new liveness mask (None = membership
    unchanged).  Returning the complete state rather than deltas keeps
    the consumers (one per executor) trivially idempotent.
    """

    points: PointSet | None = None
    alive: np.ndarray | None = None


class TopologyState:
    """Per-trial mutable state of a provider (one per ``Channel``)."""

    def initial_alive(self) -> np.ndarray | None:
        """Liveness mask in force before slot 0 (None = all alive)."""
        return None

    def advance(self, slot: int) -> TopologyUpdate | None:
        """Apply every change scheduled at ``slot``; None = no change.

        Called once per slot in increasing order (the epoch contract
        above); implementations may rely on that to keep a cursor.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class TopologyProvider:
    """Base class: a frozen, hashable, picklable dynamics recipe.

    Providers are plan-level configuration
    (:class:`~repro.experiments.plans.TrialPlan.topology`); all per-trial
    mutable state lives in the :class:`TopologyState` returned by
    :meth:`bind`.
    """

    @property
    def is_dynamic(self) -> bool:
        """Does this provider ever change anything?  Non-dynamic
        providers are treated exactly like ``topology=None``."""
        return True

    def bind(self, points: PointSet, seed: int | None) -> TopologyState:
        """Fresh per-trial state for a deployment.

        ``seed`` is the trial's master seed, passed for forward
        compatibility; the built-in providers deliberately ignore it
        (see the RNG-stream allocation notes in the module docstring).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class StaticTopology(TopologyProvider):
    """The explicit spelling of the default: geometry is a constant."""

    @property
    def is_dynamic(self) -> bool:
        return False

    def bind(self, points: PointSet, seed: int | None) -> TopologyState:
        raise RuntimeError("StaticTopology has no per-trial state")


class _WaypointState(TopologyState):
    """Random-waypoint motion, advanced one epoch at a time."""

    def __init__(self, provider: "WaypointMobility", points: PointSet) -> None:
        self.provider = provider
        self.positions = points.coords.copy()
        self.name = points.name
        self.rng = np.random.default_rng(
            np.random.SeedSequence(provider.seed)
        )
        bounds = provider.bounds or bounding_box(points.coords)
        self.low = np.array([bounds[0], bounds[1]], dtype=np.float64)
        self.high = np.array([bounds[2], bounds[3]], dtype=np.float64)
        self.epoch = 0
        self.waypoints = self._draw_waypoints(len(points))

    def _draw_waypoints(self, count: int) -> np.ndarray:
        span = self.high - self.low
        return self.low + self.rng.random((count, 2)) * span

    def advance(self, slot: int) -> TopologyUpdate | None:
        if slot == 0 or slot % self.provider.epoch_slots != 0:
            return None
        self.epoch += 1
        speed = self.provider.speed
        delta = self.waypoints - self.positions
        dist = np.hypot(delta[:, 0], delta[:, 1])
        arrived = dist <= speed
        moving = ~arrived
        if moving.any():
            step = delta[moving] * (speed / dist[moving])[:, None]
            self.positions[moving] += step
        if arrived.any():
            self.positions[arrived] = self.waypoints[arrived]
            self.waypoints[arrived] = self._draw_waypoints(
                int(arrived.sum())
            )
        return TopologyUpdate(
            points=PointSet(
                self.positions.copy(),
                name=f"{self.name}@epoch{self.epoch}",
            )
        )


@dataclass(frozen=True)
class WaypointMobility(TopologyProvider):
    """Random-waypoint / bounded-velocity motion on an epoch schedule.

    Attributes
    ----------
    epoch_slots:
        Geometry refresh period: positions move at slots ``k·epoch_slots``
        (k >= 1), i.e. every node is stationary within an epoch (the
        standard quasi-static mobility discretization).
    speed:
        Maximum displacement per epoch, in the deployment's distance
        units (the paper normalizes d_min to 1, so ``speed=1`` moves a
        node one minimum-separation per epoch).
    seed:
        Seed of the provider's private waypoint stream (see the module
        docstring: trial RNG streams are never touched, and all trials
        of one provider share one trajectory).
    bounds:
        Optional explicit ``(xmin, ymin, xmax, ymax)`` motion box;
        default is the initial deployment's bounding box.
    """

    epoch_slots: int = 64
    speed: float = 1.0
    seed: int = 0
    bounds: tuple[float, float, float, float] | None = None

    def __post_init__(self) -> None:
        if self.epoch_slots < 1:
            raise ValueError("epoch_slots must be >= 1")
        if self.speed <= 0:
            raise ValueError(
                "speed must be positive (use StaticTopology or "
                "topology=None for a frozen deployment)"
            )
        if self.bounds is not None:
            xmin, ymin, xmax, ymax = self.bounds
            if not (xmin < xmax and ymin < ymax):
                raise ValueError("bounds must be (xmin, ymin, xmax, ymax)")

    def bind(self, points: PointSet, seed: int | None) -> TopologyState:
        return _WaypointState(self, points)


class _ChurnState(TopologyState):
    """Scheduled crash/recover events, applied slot by slot."""

    def __init__(self, provider: "ChurnSchedule", n: int) -> None:
        self.alive = np.ones(n, dtype=bool)
        for node in provider.initially_down:
            if not 0 <= node < n:
                raise ValueError(f"churn node {node} outside 0..{n - 1}")
            self.alive[node] = False
        # Stable sort by slot: same-slot events apply in schedule order.
        self.events = sorted(provider.events, key=lambda e: e[0])
        for _slot, node, _kind in self.events:
            if not 0 <= node < n:
                raise ValueError(f"churn node {node} outside 0..{n - 1}")
        self.cursor = 0

    def initial_alive(self) -> np.ndarray | None:
        return self.alive.copy() if not self.alive.all() else None

    def advance(self, slot: int) -> TopologyUpdate | None:
        changed = False
        while (
            self.cursor < len(self.events)
            and self.events[self.cursor][0] <= slot
        ):
            _slot, node, kind = self.events[self.cursor]
            self.alive[node] = kind == "recover"
            self.cursor += 1
            changed = True
        if not changed:
            return None
        return TopologyUpdate(alive=self.alive.copy())


@dataclass(frozen=True)
class ChurnSchedule(TopologyProvider):
    """Deterministic node crash/recover schedule.

    Attributes
    ----------
    events:
        Tuple of ``(slot, node, kind)`` with ``kind`` in
        ``{"crash", "recover"}``.  An event takes effect at the *top* of
        its slot (before transmit decisions), on every executor.
        Same-slot events for one node apply in schedule order (last
        wins).
    initially_down:
        Nodes that are crashed before slot 0 (e.g. late joiners whose
        ``recover`` event is their join).

    A crashed node's automaton is frozen, not reset: its MAC engine,
    client state and private RNG stream resume exactly where they
    stopped when the node recovers — the paper-side interpretation is a
    transient radio failure, not a reboot.
    """

    events: tuple[tuple[int, int, str], ...] = ()
    initially_down: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            slot, node, kind = event
            if slot < 0 or node < 0:
                raise ValueError(f"invalid churn event {event!r}")
            if kind not in ("crash", "recover"):
                raise ValueError(
                    f"churn event kind must be 'crash' or 'recover'; "
                    f"got {kind!r}"
                )

    @property
    def is_dynamic(self) -> bool:
        return bool(self.events) or bool(self.initially_down)

    def bind(self, points: PointSet, seed: int | None) -> TopologyState:
        return _ChurnState(self, len(points))


class _CompositeState(TopologyState):
    def __init__(self, states: list[TopologyState]) -> None:
        self.states = states

    def initial_alive(self) -> np.ndarray | None:
        masks = [s.initial_alive() for s in self.states]
        masks = [m for m in masks if m is not None]
        if not masks:
            return None
        combined = masks[0]
        for mask in masks[1:]:
            combined &= mask
        return combined

    def advance(self, slot: int) -> TopologyUpdate | None:
        points = alive = None
        for state in self.states:
            update = state.advance(slot)
            if update is None:
                continue
            if update.points is not None:
                points = update.points
            if update.alive is not None:
                alive = update.alive
        if points is None and alive is None:
            return None
        return TopologyUpdate(points=points, alive=alive)


@dataclass(frozen=True)
class CompositeTopology(TopologyProvider):
    """Several providers advancing together (e.g. mobility + churn).

    Parts advance in order each slot; if two parts move the geometry or
    the liveness mask at the same slot, the later part wins (built-in
    parts never conflict: mobility owns positions, churn owns liveness).
    """

    parts: tuple[TopologyProvider, ...] = ()

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("CompositeTopology needs at least one part")
        for part in self.parts:
            if not isinstance(part, TopologyProvider):
                raise TypeError(f"not a TopologyProvider: {part!r}")

    @property
    def is_dynamic(self) -> bool:
        return any(part.is_dynamic for part in self.parts)

    def bind(self, points: PointSet, seed: int | None) -> TopologyState:
        return _CompositeState(
            [
                part.bind(points, seed)
                for part in self.parts
                if part.is_dynamic
            ]
        )


def random_churn_schedule(
    n: int,
    crash_rate: float,
    horizon: int,
    downtime: int,
    seed: int = 0,
    spare: Iterable[int] = (),
) -> ChurnSchedule:
    """A reproducible random churn schedule (benchmark helper).

    Each node independently suffers ``Poisson(crash_rate · horizon)``
    transient failures at uniform slots in ``[1, horizon]``, each
    lasting ``downtime`` slots (``crash_rate`` is thus the per-node
    crash probability per slot).  Nodes listed in ``spare`` never crash
    — e.g. a broadcast source whose permanent loss would make the
    workload undecidable.  The schedule is a pure function of the
    arguments; attach it to plans like any other provider.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if crash_rate < 0:
        raise ValueError("crash_rate must be >= 0")
    if horizon < 1 or downtime < 1:
        raise ValueError("horizon and downtime must be >= 1")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    spared = set(spare)
    events: list[tuple[int, int, str]] = []
    for node in range(n):
        crashes = int(rng.poisson(crash_rate * horizon))
        if node in spared or crashes == 0:
            continue
        slots = rng.integers(1, horizon + 1, size=crashes)
        # Merge overlapping outage windows: a crash landing inside an
        # earlier outage extends it, so every emitted window really
        # lasts (at least) ``downtime`` slots — interleaved
        # crash/recover pairs would otherwise let the first window's
        # recover revive the node mid-second-outage.
        down_until = None
        for slot in sorted(int(s) for s in slots):
            if down_until is not None and slot <= down_until:
                events[-1] = (max(down_until, slot + downtime), node, "recover")
                down_until = events[-1][0]
                continue
            events.append((slot, node, "crash"))
            events.append((slot + downtime, node, "recover"))
            down_until = slot + downtime
    events.sort(key=lambda e: e[0])
    return ChurnSchedule(events=tuple(events))
