"""Algorithm 11.1: the full absMAC implementation (Theorem 11.1).

Two engines run in parallel by time multiplexing:

* **even slots** execute Algorithm B.1 (:class:`~repro.core.ack_protocol.
  AckEngine`), delivering the near-optimal acknowledgment bound of
  Theorem 5.1;
* **odd slots** execute Algorithm 9.1 (:class:`~repro.core.
  approx_progress.ApproxProgressEngine`), delivering the fast
  approximate-progress bound of Theorem 9.1 with respect to
  G̃ = G_{1-2ε}.

The combination is necessary (§11): the ack algorithm alone gives no good
progress bound, and the approximate-progress algorithm alone never
acknowledges.  Interleaving costs a factor 2 in every bound.

Per §11.1: a bcast(m) input starts both engines on m; the ack event fires
when the B.1 engine halts; an abort(m) input stops transmissions on
behalf of m (the engine finishes its current epoch harmlessly — it simply
no longer has a message to transmit, which Algorithm 9.1 treats as
leaving S_1 at the next epoch boundary).
"""

from __future__ import annotations

from typing import Any

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.ack_protocol import AckConfig, AckEngine
from repro.core.approx_progress import ApproxProgressEngine, EpochSchedule
from repro.core.events import BcastMessage, MessageRegistry

__all__ = ["CombinedMacLayer"]


class CombinedMacLayer(MacLayerBase):
    """The paper's absMAC for the SINR model (Algorithm 11.1).

    Guarantees (Theorem 11.1), in physical slots (each engine owns every
    second slot, so engine-time bounds double):

    * acknowledgments in G_{1-ε} within
      ``f_ack = O(Δ·log(Λ/ε_ack) + log Λ·log(Λ/ε_ack))``
      with probability ≥ 1 − ε_ack,
    * approximate progress w.r.t. G̃ = G_{1-2ε} within
      ``f_approg = O((log^α Λ + log*(1/ε))·log Λ·log(1/ε))``
      with probability ≥ 1 − ε_approg.
    """

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        ack_config: AckConfig,
        schedule: EpochSchedule,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id, registry, client)
        self.ack_config = ack_config
        self.schedule = schedule
        self.ack_engine: AckEngine | None = None
        self.approg_engine: ApproxProgressEngine | None = None

    # -- engine plumbing -------------------------------------------------

    def _ensure_approg(self) -> ApproxProgressEngine:
        if self.approg_engine is None:
            self.approg_engine = ApproxProgressEngine(
                self.schedule, self.api.rng, self.node_id
            )
        return self.approg_engine

    def _start_broadcast(self, message: BcastMessage) -> None:
        self.ack_engine = None  # fresh B.1 instance per broadcast
        if self.approg_engine is not None:
            self.approg_engine.message = message

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        self.ack_engine = None
        if self.approg_engine is not None:
            self.approg_engine.message = None

    @staticmethod
    def _virtual_slot(slot: int) -> int:
        """Odd physical slots map to consecutive Algorithm 9.1 slots."""
        return slot // 2

    # -- runtime hooks ------------------------------------------------------

    def on_slot(self, slot: int) -> Any | None:
        if slot % 2 == 0:
            # Even slots: Algorithm B.1.
            if not self.busy:
                return None
            if self.ack_engine is None:
                self.ack_engine = AckEngine(self.ack_config, self.api.rng)
            transmit = self.ack_engine.step()
            payload = self.current if transmit else None
            if self.ack_engine.halted:
                self._acknowledge(slot)
            return payload
        # Odd slots: Algorithm 9.1.
        engine = self._ensure_approg()
        engine.message = self.current
        return engine.step(self._virtual_slot(slot))

    def on_receive(self, slot: int, sender: int, payload: Any) -> None:
        if isinstance(payload, BcastMessage) and self._sender_in_range(
            sender
        ):
            self._deliver(slot, payload)
        if slot % 2 == 0:
            if self.ack_engine is not None and isinstance(
                payload, BcastMessage
            ):
                self.ack_engine.notify_reception()
        else:
            self._ensure_approg().on_reception(
                self._virtual_slot(slot), payload
            )
