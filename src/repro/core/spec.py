"""The probabilistic absMAC specification and its trace checker.

The absMAC contract (§4.4 and Definition 7.1) makes three probabilistic
timing promises for local broadcast over a communication graph G (here
G_{1-ε}), with approximate progress measured against a subgraph
G̃ ⊆ G (here G_{1-2ε}):

* **acknowledgment**: every bcast(m) is ack'ed within ``f_ack`` slots
  with probability ≥ 1 − ε_ack, and by then every G-neighbor of the
  origin received m;
* **progress**: while some G-neighbor of v is broadcasting, v receives
  *some* message originating at a G-neighbor within ``f_prog`` slots
  (Theorem 6.1: no SINR implementation can make this beat Δ);
* **approximate progress** (Definition 7.1, this paper's contribution):
  while some *G̃*-neighbor of v is broadcasting, v receives some message
  originating at a G-neighbor within ``f_approg`` slots with probability
  ≥ 1 − ε_approg.

These are statistical statements, so the checker measures empirical
latency distributions over a trace and compares success fractions
against the contract.  All measurement is trace-based: protocols are
never trusted to self-report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.events import BcastMessage
from repro.simulation.trace import EventTrace

__all__ = [
    "AbsMacContract",
    "AckRecord",
    "AckReport",
    "ProgressRecord",
    "ProgressReport",
    "EpochProgressReport",
    "broadcast_intervals",
    "measure_acknowledgments",
    "measure_progress",
    "measure_approximate_progress",
    "measure_epoch_progress",
    "check_contract",
]


@dataclass(frozen=True)
class AbsMacContract:
    """Numerical absMAC guarantees to check a trace against."""

    fack: float
    eps_ack: float
    fapprog: float | None = None
    eps_approg: float | None = None

    def __post_init__(self) -> None:
        if self.fack <= 0:
            raise ValueError("fack must be positive")
        if not 0.0 < self.eps_ack < 1.0:
            raise ValueError("eps_ack must be in (0, 1)")
        if (self.fapprog is None) != (self.eps_approg is None):
            raise ValueError("fapprog and eps_approg must come together")


@dataclass(frozen=True)
class AckRecord:
    """Measured fate of one broadcast."""

    mid: int
    origin: int
    bcast_slot: int
    ack_slot: int | None
    neighbor_count: int
    covered_by_ack: int  # neighbors that received m before the ack

    @property
    def latency(self) -> int | None:
        """Slots from bcast to ack (None if never acked)."""
        if self.ack_slot is None:
            return None
        return self.ack_slot - self.bcast_slot

    @property
    def complete(self) -> bool:
        """True iff every neighbor had the message when the ack fired."""
        return (
            self.ack_slot is not None
            and self.covered_by_ack == self.neighbor_count
        )


@dataclass
class AckReport:
    """All acknowledgment measurements of a trace."""

    records: list[AckRecord] = field(default_factory=list)

    def latencies(self) -> list[int]:
        """Latencies of acked broadcasts, in slot counts."""
        return [r.latency for r in self.records if r.latency is not None]

    def success_fraction(self, fack: float) -> float:
        """Fraction of broadcasts acked within ``fack`` *and* complete."""
        if not self.records:
            return 1.0
        good = sum(
            1
            for r in self.records
            if r.complete and r.latency is not None and r.latency <= fack
        )
        return good / len(self.records)

    def completeness_fraction(self) -> float:
        """Fraction of acked broadcasts whose neighbors all received."""
        acked = [r for r in self.records if r.ack_slot is not None]
        if not acked:
            return 1.0
        return sum(1 for r in acked if r.complete) / len(acked)

    def max_latency(self) -> int | None:
        """Largest observed ack latency."""
        lats = self.latencies()
        return max(lats) if lats else None

    def mean_latency(self) -> float | None:
        """Mean observed ack latency."""
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else None


@dataclass(frozen=True)
class ProgressRecord:
    """Measured (approximate-)progress episode at one receiver."""

    node: int
    start_slot: int  # earliest slot a relevant neighbor was broadcasting
    latency: int | None  # slots until a G-origin message arrived


@dataclass
class ProgressReport:
    """All progress measurements of a trace."""

    records: list[ProgressRecord] = field(default_factory=list)

    def latencies(self) -> list[int]:
        """Latencies of satisfied episodes."""
        return [r.latency for r in self.records if r.latency is not None]

    def success_fraction(self, bound: float) -> float:
        """Fraction of episodes satisfied within ``bound`` slots."""
        if not self.records:
            return 1.0
        good = sum(
            1
            for r in self.records
            if r.latency is not None and r.latency <= bound
        )
        return good / len(self.records)

    def max_latency(self) -> int | None:
        """Largest observed latency."""
        lats = self.latencies()
        return max(lats) if lats else None

    def mean_latency(self) -> float | None:
        """Mean observed latency."""
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else None


def broadcast_intervals(trace: EventTrace) -> dict[int, tuple[int, int, int]]:
    """Extract per-message active intervals from a trace.

    Returns ``mid -> (origin, bcast_slot, end_slot)`` where ``end_slot``
    is the ack/abort slot or the end of the trace for still-active
    broadcasts.
    """
    intervals: dict[int, tuple[int, int, int]] = {}
    horizon = trace.last_slot() + 1
    for event in trace:
        if event.kind == "bcast":
            intervals[event.data] = (event.node, event.slot, horizon)
        elif event.kind in ("ack", "abort") and event.data in intervals:
            origin, start, _ = intervals[event.data]
            intervals[event.data] = (origin, start, event.slot)
    return intervals


def _first_deliveries(trace: EventTrace) -> dict[tuple[int, int], int]:
    """(node, mid) -> slot of the node's rcv event for that message."""
    deliveries: dict[tuple[int, int], int] = {}
    for event in trace:
        if event.kind == "rcv":
            key = (event.node, event.data)
            if key not in deliveries:
                deliveries[key] = event.slot
    return deliveries


def measure_acknowledgments(
    trace: EventTrace,
    graph: nx.Graph,
    intervals: dict[int, tuple[int, int, int]] | None = None,
) -> AckReport:
    """Measure every broadcast's ack latency and neighbor coverage.

    ``intervals`` optionally reuses a precomputed
    :func:`broadcast_intervals` scan — callers measuring several
    quantities over one big trace (the experiment engine's per-trial
    result assembly) share one pass instead of rescanning per measure.
    """
    if intervals is None:
        intervals = broadcast_intervals(trace)
    deliveries = _first_deliveries(trace)
    acks = {
        event.data: event.slot for event in trace if event.kind == "ack"
    }
    report = AckReport()
    for mid, (origin, bcast_slot, _end) in sorted(intervals.items()):
        ack_slot = acks.get(mid)
        neighbors = [v for v in graph.neighbors(origin)]
        if ack_slot is None:
            covered = 0
        else:
            covered = sum(
                1
                for v in neighbors
                if deliveries.get((v, mid), ack_slot + 1) <= ack_slot
            )
        report.records.append(
            AckRecord(
                mid=mid,
                origin=origin,
                bcast_slot=bcast_slot,
                ack_slot=ack_slot,
                neighbor_count=len(neighbors),
                covered_by_ack=covered,
            )
        )
    return report


def _neighbor_origin_receptions(
    trace: EventTrace, graph: nx.Graph
) -> dict[int, list[int]]:
    """node -> sorted slots of physical receptions of bcast-messages
    originating at a G-neighbor of the node."""
    receptions: dict[int, list[int]] = {}
    # Raw adjacency-dict lookups instead of has_node/has_edge calls:
    # physical receive events are the bulkiest trace kind (one per
    # decode), so this scan is measurement's hottest loop on big
    # populations and the Mapping-protocol wrappers around `graph.adj`
    # cost more than the membership tests themselves.
    adjacency = _plain_adjacency(graph)
    for event in trace:
        if event.kind != "receive":
            continue
        _sender, payload = event.data
        if not isinstance(payload, BcastMessage):
            continue
        neighbors = adjacency.get(event.node)
        if neighbors is None:
            continue
        if payload.origin == event.node:
            continue
        if payload.origin in neighbors:
            receptions.setdefault(event.node, []).append(event.slot)
    for slots in receptions.values():
        slots.sort()
    return receptions


def _plain_adjacency(graph: nx.Graph) -> dict:
    """The graph's node -> neighbor-dict mapping as plain dicts.

    ``graph._adj`` is the stable networkx backing store (dict of
    dicts); falling back to materializing ``graph.adj`` keeps exotic
    graph subclasses working.
    """
    adjacency = getattr(graph, "_adj", None)
    if isinstance(adjacency, dict):
        return adjacency
    return {node: dict(neighbors) for node, neighbors in graph.adj.items()}


def _measure_episodes(
    trace: EventTrace,
    comm_graph: nx.Graph,
    trigger_graph: nx.Graph,
    intervals: dict[int, tuple[int, int, int]] | None = None,
) -> ProgressReport:
    """Shared core of progress and approximate-progress measurement.

    An *episode* starts at the earliest slot at which some
    ``trigger_graph``-neighbor of v has an active broadcast; it is
    satisfied when v physically receives a bcast-message originating at a
    ``comm_graph``-neighbor.  One episode per (receiver, broadcast) pair:
    we take the earliest trigger per receiver for a conservative
    measurement (longest exposure).
    """
    if intervals is None:
        intervals = broadcast_intervals(trace)
    receptions = _neighbor_origin_receptions(trace, comm_graph)
    # Earliest broadcast start per origin, then one adjacency walk per
    # receiver: min over a node's broadcasting neighbors equals the old
    # min over every (interval, has_edge) pair, without the
    # O(nodes × broadcasts) edge probes that dominated measurement on
    # thousand-node all-broadcast sweeps.
    earliest_start: dict[int, int] = {}
    for origin, start, _end in intervals.values():
        known = earliest_start.get(origin)
        if known is None or start < known:
            earliest_start[origin] = start
    report = ProgressReport()
    adjacency = _plain_adjacency(trigger_graph)
    for v in trigger_graph.nodes:
        triggers = [
            earliest_start[u] for u in adjacency[v] if u in earliest_start
        ]
        if not triggers:
            continue
        start = min(triggers)
        after = [s for s in receptions.get(v, []) if s >= start]
        latency = (after[0] - start) if after else None
        report.records.append(ProgressRecord(v, start, latency))
    return report


def measure_progress(trace: EventTrace, graph: nx.Graph) -> ProgressReport:
    """Standard progress: trigger and reception both w.r.t. G."""
    return _measure_episodes(trace, graph, graph)


def measure_approximate_progress(
    trace: EventTrace,
    comm_graph: nx.Graph,
    approx_graph: nx.Graph,
    intervals: dict[int, tuple[int, int, int]] | None = None,
) -> ProgressReport:
    """Definition 7.1: triggers in G̃, receptions from G-neighbors.

    ``intervals`` optionally shares a :func:`broadcast_intervals` scan
    (see :func:`measure_acknowledgments`).
    """
    return _measure_episodes(trace, comm_graph, approx_graph, intervals)


@dataclass
class EpochProgressReport:
    """Per-epoch success statistics for the Theorem 9.1 probability
    claim: each (node, epoch) trial succeeds iff the node — having a
    G̃-neighbor with an ongoing broadcast for the whole epoch — received
    a G-origin bcast-message *within that epoch*."""

    trials: int = 0
    successes: int = 0
    per_epoch: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def success_fraction(self) -> float:
        """Overall empirical per-epoch success probability."""
        if self.trials == 0:
            return 1.0
        return self.successes / self.trials


def measure_epoch_progress(
    trace: EventTrace,
    comm_graph: nx.Graph,
    approx_graph: nx.Graph,
    epoch_slots: int,
    first_epoch: int = 0,
) -> EpochProgressReport:
    """Validate Theorem 9.1 statistically, epoch by epoch.

    The theorem promises: in every epoch, a node whose G̃-neighbor has
    an ongoing broadcast receives some G-origin message within the
    epoch, with probability ≥ 1 − ε_approg.  Each (node, epoch) pair
    where some G̃-neighbor's broadcast covers the *entire* epoch is one
    Bernoulli trial; the report aggregates successes.  ``epoch_slots``
    is the physical epoch length (double the schedule's virtual length
    for the combined layer).  ``first_epoch`` skips warm-up epochs
    (nodes that woke mid-epoch join only at the next boundary).
    """
    if epoch_slots < 1:
        raise ValueError("epoch_slots must be >= 1")
    intervals = broadcast_intervals(trace)
    receptions = _neighbor_origin_receptions(trace, comm_graph)
    horizon = trace.last_slot() + 1
    n_epochs = horizon // epoch_slots
    report = EpochProgressReport()
    for epoch in range(first_epoch, n_epochs):
        start = epoch * epoch_slots
        end = start + epoch_slots
        epoch_trials = 0
        epoch_successes = 0
        for v in approx_graph.nodes:
            covered = any(
                approx_graph.has_edge(origin, v)
                and bcast_start <= start
                and bcast_end >= end
                for origin, bcast_start, bcast_end in intervals.values()
            )
            if not covered:
                continue
            epoch_trials += 1
            got = any(
                start <= slot < end for slot in receptions.get(v, [])
            )
            if got:
                epoch_successes += 1
        report.trials += epoch_trials
        report.successes += epoch_successes
        report.per_epoch[epoch] = (epoch_successes, epoch_trials)
    return report


def check_contract(
    trace: EventTrace,
    comm_graph: nx.Graph,
    approx_graph: nx.Graph | None,
    contract: AbsMacContract,
) -> dict:
    """Check a trace against an :class:`AbsMacContract`.

    Returns a summary dict with the measured reports, success fractions
    and pass booleans.  Passing means the empirical success fraction
    meets ``1 − ε`` (these are statistical guarantees, so callers running
    few broadcasts should interpret fractions, not booleans).
    """
    ack_report = measure_acknowledgments(trace, comm_graph)
    ack_fraction = ack_report.success_fraction(contract.fack)
    summary = {
        "ack_report": ack_report,
        "ack_success_fraction": ack_fraction,
        "ack_ok": ack_fraction >= 1.0 - contract.eps_ack,
    }
    if contract.fapprog is not None and approx_graph is not None:
        prog_report = measure_approximate_progress(
            trace, comm_graph, approx_graph
        )
        prog_fraction = prog_report.success_fraction(contract.fapprog)
        summary.update(
            {
                "approg_report": prog_report,
                "approg_success_fraction": prog_fraction,
                "approg_ok": prog_fraction >= 1.0 - contract.eps_approg,
            }
        )
    return summary
