"""MAC-layer message and event vocabulary (paper §4.4).

The absMAC interface revolves around four events per message ``m``:

* ``bcast(m)_i`` — the environment asks node ``i`` to locally broadcast,
* ``rcv(m)_v`` — node ``v`` delivers a received message upward,
* ``ack(m)_i`` — node ``i`` learns its broadcast completed,
* ``abort(m)_i`` — the environment cancels an in-flight broadcast
  (enhanced absMAC only).

Broadcast messages are assumed unique (§4.4, w.l.o.g.); the
:class:`MessageRegistry` mints globally unique message ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["BcastMessage", "MessageRegistry"]


@dataclass(frozen=True, order=True)
class BcastMessage:
    """A unique local-broadcast message.

    Attributes
    ----------
    mid:
        Globally unique message id (orders messages by creation).
    origin:
        Node id at which the ``bcast`` event occurred.
    payload:
        Opaque application content (compared by identity only through
        ``mid``; two distinct bcasts of equal payloads are distinct
        messages, as the paper assumes).
    """

    mid: int
    origin: int
    payload: Any = None

    def __repr__(self) -> str:  # compact for traces
        return f"Msg(mid={self.mid}, origin={self.origin})"


class MessageRegistry:
    """Mints unique message ids across all nodes of one experiment.

    The id encodes the origin so per-node minting never collides:
    ``mid = origin * 2**24 + sequence``.
    """

    _SEQ_SPACE = 2**24

    def __init__(self) -> None:
        self._next_seq: dict[int, int] = {}
        self._by_mid: dict[int, BcastMessage] = {}

    def mint(self, origin: int, payload: Any = None) -> BcastMessage:
        """Create a new unique message originating at ``origin``."""
        seq = self._next_seq.get(origin, 0)
        if seq >= self._SEQ_SPACE:
            raise OverflowError(f"node {origin} exhausted its message ids")
        self._next_seq[origin] = seq + 1
        message = BcastMessage(origin * self._SEQ_SPACE + seq, origin, payload)
        self._by_mid[message.mid] = message
        return message

    def lookup(self, mid: int) -> BcastMessage:
        """Return the message with the given id."""
        return self._by_mid[mid]

    def __len__(self) -> int:
        return len(self._by_mid)
