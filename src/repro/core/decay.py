"""The Decay baseline (Bar-Yehuda–Goldreich–Itai [4]).

Decay is the classic local-broadcast primitive of graph-based radio
models and the building block of the original absMAC implementations of
Khabbazian et al. [37].  A broadcaster repeats *decay phases*: within a
phase of length L it transmits with probability ``2^{-j}`` in step j —
sweeping from aggressive to conservative so that, whatever the local
contention k ≤ 2^L, some step has probability ≈ 1/k.

The paper's Theorem 8.1 proves this strategy cannot give fast
approximate progress in the SINR model: with a dense far ball feeding
global interference, Decay needs ``Ω(Δ·log(1/ε_approg))`` slots where
Algorithm 9.1 needs polylog.  :mod:`repro.lowerbounds` and
``benchmarks/bench_thm81_decay_approg.py`` measure exactly that gap, and
``bench_table2_smb_comparison.py`` uses :class:`DecayMacLayer` as the
graph-model-style MAC baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage, MessageRegistry

__all__ = ["DecayConfig", "DecayEngine", "DecayMacLayer"]


@dataclass(frozen=True)
class DecayConfig:
    """Parameters of the Decay MAC.

    Attributes
    ----------
    contention_bound:
        Known bound Ñ on local contention; the phase length is
        ``ceil(log2(Ñ)) + 1`` so the probability sweep reaches ``1/Ñ``.
    eps_ack:
        Acknowledgment failure probability; the broadcaster acknowledges
        after ``ceil(ack_factor · Ñ · log2(Ñ/ε))`` slots, the classical
        O(Δ·log(n/ε)) budget of Decay-based MACs [37].
    ack_factor:
        Leading constant of the acknowledgment budget.
    """

    contention_bound: float
    eps_ack: float = 0.1
    ack_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.contention_bound < 2:
            raise ValueError("contention_bound must be >= 2")
        if not 0.0 < self.eps_ack < 1.0:
            raise ValueError("eps_ack must be in (0, 1)")
        if self.ack_factor <= 0:
            raise ValueError("ack_factor must be positive")

    @property
    def phase_length(self) -> int:
        """Steps per decay phase: ceil(log2 Ñ) + 1."""
        return math.ceil(math.log2(self.contention_bound)) + 1

    @property
    def ack_budget_slots(self) -> int:
        """Slots after which a broadcaster halts and acknowledges."""
        log_term = math.log2(
            max(self.contention_bound / self.eps_ack, 2.0)
        )
        budget = self.ack_factor * self.contention_bound * log_term
        # Round up to whole phases so every broadcast ends on a boundary.
        phases = max(1, math.ceil(budget / self.phase_length))
        return phases * self.phase_length


class DecayEngine:
    """Per-broadcast Decay state machine (one owned slot per step)."""

    def __init__(self, config: DecayConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.slots_run = 0
        self.transmissions = 0
        # Snapshot the log2-deriving config properties once; both are
        # read every owned slot of every broadcast.
        self._phase_length = config.phase_length
        self._ack_budget_slots = config.ack_budget_slots

    @property
    def halted(self) -> bool:
        """True once the acknowledgment budget is exhausted."""
        return self.slots_run >= self._ack_budget_slots

    def step(self) -> bool:
        """Run one owned slot; return True if the node transmits."""
        if self.halted:
            return False
        step_in_phase = self.slots_run % self._phase_length
        self.slots_run += 1
        probability = 2.0 ** (-(step_in_phase + 1))
        transmit = self.rng.random() < probability
        if transmit:
            self.transmissions += 1
        return transmit


class DecayMacLayer(MacLayerBase):
    """A MAC layer built on Decay — the Theorem 8.1 straw man.

    Acknowledgment-correct in the graph sense (every neighbor has many
    chances to receive), but its progress in the SINR model degrades
    linearly with Δ under far-field interference, which is exactly what
    the Theorem 8.1 benchmark demonstrates.
    """

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        config: DecayConfig,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id, registry, client)
        self.config = config
        self.engine: DecayEngine | None = None

    def _start_broadcast(self, message: BcastMessage) -> None:
        self.engine = None

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        self.engine = None

    def on_slot(self, slot: int) -> Any | None:
        if not self.busy:
            return None
        if self.engine is None:
            self.engine = DecayEngine(self.config, self.api.rng)
        transmit = self.engine.step()
        payload = self.current if transmit else None
        if self.engine.halted:
            self._acknowledge(slot)
        return payload

    def on_receive(self, slot: int, sender: int, payload: Any) -> None:
        if isinstance(payload, BcastMessage) and self._sender_in_range(
            sender
        ):
            self._deliver(slot, payload)
