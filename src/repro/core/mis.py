"""Distributed maximal independent set with temporary labels.

Algorithm 9.1 sparsifies its sender sets by computing an MIS of each
estimated reliability graph.  The paper modifies the Schneider–
Wattenhofer algorithm [47] in two ways (§9.3.2):

1. nodes use *random, possibly non-unique temporary labels* from
   ``[1, poly(Λ/ε_approg)]`` instead of unique ids, and
2. the algorithm stops at a *predetermined round budget* instead of
   waiting for every node to settle; only nodes that reached state
   ``dominator`` join the next sender set.

With these modifications the result is always an independent set and is
maximal with probability ≥ 1 − ε/3 around any fixed location
(Lemma 10.1).  We implement the same interface with the classic
label-minimum rule (a competitor whose label is strictly smaller than
every competing neighbor's becomes a dominator; competitors adjacent to a
dominator become dominated), which on the constant-degree growth-bounded
graphs involved settles in a logarithmic number of rounds with high
probability — see DESIGN.md §3 (substitution 2).  Independence holds
unconditionally: two adjacent competitors can never both win a round,
and equal labels (collisions) make neither win.

The per-round transition is exposed as a pure function
(:func:`next_state`) so :class:`~repro.core.approx_progress.
ApproxProgressEngine` can drive the identical logic from inside the
slot-level simulation, and :class:`DistributedMIS` runs it standalone on
an abstract graph for testing and analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = [
    "COMPETITOR",
    "DOMINATOR",
    "DOMINATED",
    "next_state",
    "DistributedMIS",
    "greedy_mis",
    "is_independent_set",
    "is_maximal_independent_set",
]

COMPETITOR = "competitor"
DOMINATOR = "dominator"
DOMINATED = "dominated"


def next_state(
    my_label: int,
    my_state: str,
    neighbor_views: list[tuple[int, str]],
) -> str:
    """One synchronous MIS round transition for a single node.

    ``neighbor_views`` holds the (label, state) pairs the node heard from
    its graph neighbors this round.  Neighbors it failed to hear from are
    simply absent (the caller decides separately whether missing a
    neighbor means dropping out, per §9.3.2's unsuccessful-communication
    rule).

    Rules (from the SW description in §9.3.2, collapsed to the
    three-state version):

    * settled states never change,
    * a competitor hearing a dominator becomes dominated,
    * a competitor with a label strictly smaller than every *competitor*
      neighbor's label becomes a dominator (no competitor neighbors ⇒
      vacuously smaller),
    * otherwise it stays a competitor.

    Adjacent competitors can never both satisfy the strict-minimum rule
    in the same round, so the dominator set stays independent even with
    label collisions.
    """
    if my_state != COMPETITOR:
        return my_state
    if any(state == DOMINATOR for _, state in neighbor_views):
        return DOMINATED
    competitor_labels = [
        label for label, state in neighbor_views if state == COMPETITOR
    ]
    if not competitor_labels or my_label < min(competitor_labels):
        return DOMINATOR
    return my_state


@dataclass
class DistributedMIS:
    """Standalone synchronous execution of the modified MIS algorithm.

    Runs :func:`next_state` for every node in lockstep on an abstract
    graph for a fixed ``round_budget``.  This is the model-level
    counterpart of the slot-level execution inside Algorithm 9.1 and the
    object Lemma 10.1 reasons about.
    """

    graph: nx.Graph
    labels: dict
    round_budget: int

    def __post_init__(self) -> None:
        if self.round_budget < 1:
            raise ValueError("round_budget must be >= 1")
        missing = [v for v in self.graph.nodes if v not in self.labels]
        if missing:
            raise ValueError(f"labels missing for nodes {missing[:5]}")
        self.states = {v: COMPETITOR for v in self.graph.nodes}
        self.rounds_run = 0

    def run(self) -> dict:
        """Execute the full round budget; return the final state map."""
        for _ in range(self.round_budget):
            self.step()
        return self.states

    def step(self) -> None:
        """One synchronous round over all nodes."""
        snapshot = dict(self.states)
        updated = {}
        for v in self.graph.nodes:
            views = [
                (self.labels[u], snapshot[u]) for u in self.graph.neighbors(v)
            ]
            updated[v] = next_state(self.labels[v], snapshot[v], views)
        self.states = updated
        self.rounds_run += 1

    def dominators(self) -> set:
        """The computed independent set (S_{φ+1} in Algorithm 9.1)."""
        return {v for v, s in self.states.items() if s == DOMINATOR}

    def unsettled(self) -> set:
        """Nodes still in competitor state when the budget ran out."""
        return {v for v, s in self.states.items() if s == COMPETITOR}

    @staticmethod
    def random_labels(
        nodes, label_space: int, rng: np.random.Generator
    ) -> dict:
        """Draw i.i.d. uniform temporary labels from [1, label_space]."""
        if label_space < 1:
            raise ValueError("label_space must be >= 1")
        return {v: int(rng.integers(1, label_space + 1)) for v in nodes}


def greedy_mis(graph: nx.Graph, order=None) -> set:
    """Sequential greedy MIS (reference implementation for tests)."""
    result: set = set()
    blocked: set = set()
    nodes = list(graph.nodes) if order is None else list(order)
    for v in nodes:
        if v in blocked or v in result:
            continue
        result.add(v)
        blocked.update(graph.neighbors(v))
    return result


def is_independent_set(graph: nx.Graph, candidate: set) -> bool:
    """True iff no two candidate nodes are adjacent."""
    nodes = list(candidate)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if graph.has_edge(u, v):
                return False
    return True


def is_maximal_independent_set(graph: nx.Graph, candidate: set) -> bool:
    """True iff candidate is independent and no node can be added."""
    if not is_independent_set(graph, candidate):
        return False
    for v in graph.nodes:
        if v in candidate:
            continue
        if not any(u in candidate for u in graph.neighbors(v)):
            return False
    return True
