"""Algorithm 9.1: fast approximate progress (Theorem 9.1).

The algorithm runs an endless sequence of *epochs*.  Each epoch performs
Φ = Θ(log Λ) *phases*; phase φ works on a sender set S_φ (S_1 = the
nodes with an ongoing broadcast) and consists of four slot blocks:

1. **est1** (T slots): every S_φ node transmits its random temporary
   label with probability p; everybody counts which labels they hear and
   how often.  A label heard at least ``(1-γ/2)·μ·T`` times marks a
   *potential* neighbor in the reliability graph H^μ_p[S_φ] (§9.3.1).
   Each node records its own send pattern — the schedule τ_φ.
2. **est2** (T slots): S_φ nodes transmit their potential-neighbor lists
   with probability p; mutual potentials become H̃̃^μ_p[S_φ] edges.
3. **mis** (R·T slots): R synchronous rounds of the temporary-label MIS
   of :mod:`repro.core.mis`, each round simulated by replaying the
   schedule τ_φ (re-sending in exactly the slots one sent in during
   est1, so the interference pattern — and hence every reliable link —
   reproduces; §9.3.2).  A node that fails to hear one of its H̃̃
   neighbors during a round declares its communication unsuccessful and
   drops out of the epoch.  Survivors in state *dominator* form S_{φ+1}.
4. **bcast** (B = Θ(Q·log(1/ε)) slots, Q = Θ(log^α Λ)): S_φ nodes
   transmit their actual bcast-message with probability p/Q
   (Lines 10–13).  Any node hearing a bcast-message records it; the
   first one of an epoch is delivered as the rcv output (Lines 17–18).

Sparsification intuition (§9.1): S_{φ+1} is an independent set of a
constant-degree reliability graph, so the minimum distance inside the
sender set doubles every phase (Lemma 10.15).  After ≤ Φ phases the set
around any receiver is so sparse that a G_{1-ε}-neighbor transmitting
with probability p/Q gets through — giving *approximate progress* with
respect to G̃ = G_{1-2ε} within one epoch, w.p. ≥ 1 − ε_approg.

All nodes derive the identical epoch schedule from public parameters
(the known bound on Λ, ε_approg, α), so slot-index arithmetic keeps them
aligned; a node waking mid-epoch listens until the next epoch boundary
(§9.3: nodes join at the beginning of the next epoch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage, MessageRegistry
from repro.core.mis import COMPETITOR, DOMINATOR, next_state
from repro.geometry.growth import growth_bound_function

__all__ = [
    "ApproxProgressConfig",
    "EpochSchedule",
    "ApproxProgressEngine",
    "ApproxProgressMacLayer",
]


def _log_star(x: float) -> int:
    """Iterated base-2 logarithm."""
    count = 0
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count


@dataclass(frozen=True)
class ApproxProgressConfig:
    """Parameters of Algorithm 9.1.

    The formulas for Φ, T, Q, R and the label space follow the paper
    exactly; the ``*_scale`` knobs set the leading constants (the proof
    constants are simulation-hostile; DESIGN.md §3, substitution 1).

    Attributes
    ----------
    lambda_bound:
        The known (polynomial) upper bound on Λ (§4.6 assumes one).
    eps_approg:
        Target failure probability ε_approg of approximate progress.
    alpha:
        Path-loss exponent; enters through Q = Θ(log^α Λ).
    p:
        Estimation/MIS transmission probability, p ∈ (0, 1/2].
    mu:
        Reliability threshold defining H^μ_p, μ ∈ (0, p).
    gamma:
        Approximation slack γ ∈ (0, 1) of the (1-γ)-approximation.
    """

    lambda_bound: float
    eps_approg: float = 0.1
    alpha: float = 3.0
    p: float = 0.5
    mu: float = 0.08
    gamma: float = 0.5
    phi_scale: float = 1.0
    t_scale: float = 0.6
    q_scale: float = 0.15
    bcast_scale: float = 6.0
    mis_round_budget: int | None = None
    label_space: int | None = None

    def __post_init__(self) -> None:
        if self.lambda_bound < 1:
            raise ValueError("lambda_bound must be >= 1")
        if not 0.0 < self.eps_approg < 1.0:
            raise ValueError("eps_approg must be in (0, 1)")
        if self.alpha <= 2:
            raise ValueError("alpha must exceed 2")
        if not 0.0 < self.p <= 0.5:
            raise ValueError("p must be in (0, 1/2]")
        if not 0.0 < self.mu < self.p:
            raise ValueError("mu must be in (0, p)")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")

    # -- derived parameters (paper formulas) ------------------------------

    @property
    def phi_count(self) -> int:
        """Φ = Θ(log Λ): phases per epoch."""
        return max(
            1, math.ceil(self.phi_scale * math.log2(max(self.lambda_bound, 2.0)))
        )

    @property
    def log_star_term(self) -> int:
        """log*(Λ/ε_approg), the MIS runtime factor."""
        return max(1, _log_star(self.lambda_bound / self.eps_approg))

    def h_values(self) -> tuple[list[int], list[int]]:
        """The locality radii of Definition 9.2.

        Returns ``(h, h_prime)`` as lists indexed by phase (0-based for
        phases 1..Φ): ``h_Φ = h'_Φ = 1``, and going downward
        ``h'_φ = 3·h_{φ+1}``, ``h_φ = h'_φ + c·log*(Λ/ε) + 1``.
        """
        phi = self.phi_count
        h = [0] * phi
        h_prime = [0] * phi
        h[phi - 1] = 1
        h_prime[phi - 1] = 1
        for idx in range(phi - 2, -1, -1):
            h_prime[idx] = 3 * h[idx + 1]
            h[idx] = h_prime[idx] + self.log_star_term + 1
        return h, h_prime

    @property
    def h1(self) -> int:
        """h_1, the largest locality radius (enters T through f(h_1))."""
        return self.h_values()[0][0]

    @property
    def repetitions(self) -> int:
        """T = Θ(log(f(h_1)/ε) / (γ²μ)): estimation/replay slots."""
        f_h1 = growth_bound_function(float(self.h1))
        raw = math.log2(max(f_h1 / self.eps_approg, 2.0)) / (
            self.gamma**2 * self.mu
        )
        return max(8, math.ceil(self.t_scale * raw))

    @property
    def q_factor(self) -> int:
        """Q = Θ(log^α Λ): bcast-block probability divisor (Line 11)."""
        raw = math.log2(max(self.lambda_bound, 2.0)) ** self.alpha
        return max(1, math.ceil(self.q_scale * raw))

    @property
    def bcast_block_slots(self) -> int:
        """B = Θ(Q·log(1/ε)): Lines 10–13 block length."""
        log_eps = math.log2(max(1.0 / self.eps_approg, 2.0))
        return max(4, math.ceil(self.bcast_scale * self.q_factor * log_eps))

    @property
    def mis_rounds(self) -> int:
        """R = c·log*(Λ/ε) + 2: the fixed MIS round budget (§9.3.2)."""
        if self.mis_round_budget is not None:
            return max(1, self.mis_round_budget)
        return self.log_star_term + 2

    @property
    def labels(self) -> int:
        """Temporary-label space size, poly(Λ/ε) (§9.3.2)."""
        if self.label_space is not None:
            return max(2, self.label_space)
        return max(64, math.ceil((self.lambda_bound / self.eps_approg) ** 2))

    @property
    def potential_threshold(self) -> float:
        """Reception-count threshold (1-γ/2)·μ·T marking potentials."""
        return (1.0 - self.gamma / 2.0) * self.mu * self.repetitions


class EpochSchedule:
    """Slot layout of one epoch, shared by all nodes.

    An epoch is Φ phases of ``(2 + R)·T + B`` slots each.  ``locate``
    maps a virtual slot index to its (epoch, phase, block, offset)
    coordinates; everything else in the engine is driven off that.
    """

    EST1 = "est1"
    EST2 = "est2"
    MIS = "mis"
    BCAST = "bcast"

    def __init__(self, config: ApproxProgressConfig) -> None:
        self.config = config
        self.t = config.repetitions
        self.rounds = config.mis_rounds
        self.bcast_slots = config.bcast_block_slots
        self.phase_slots = (2 + self.rounds) * self.t + self.bcast_slots
        self.phi = config.phi_count
        self.epoch_slots = self.phi * self.phase_slots

    def locate(self, virtual_slot: int) -> tuple[int, int, str, int]:
        """Map a virtual slot to (epoch, phase, block, offset).

        For the MIS block the offset is encoded as
        ``round * T + slot_in_round``.
        """
        if virtual_slot < 0:
            raise ValueError("virtual_slot must be >= 0")
        epoch, in_epoch = divmod(virtual_slot, self.epoch_slots)
        phase, off = divmod(in_epoch, self.phase_slots)
        if off < self.t:
            return epoch, phase, self.EST1, off
        off -= self.t
        if off < self.t:
            return epoch, phase, self.EST2, off
        off -= self.t
        if off < self.rounds * self.t:
            return epoch, phase, self.MIS, off
        off -= self.rounds * self.t
        return epoch, phase, self.BCAST, off

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"epoch={self.epoch_slots} slots (phi={self.phi}, T={self.t}, "
            f"R={self.rounds}, B={self.bcast_slots}, "
            f"Q={self.config.q_factor})"
        )


class ApproxProgressEngine:
    """Per-node state machine executing Algorithm 9.1.

    Fed one *virtual slot* at a time through :meth:`step` (the combined
    layer maps odd physical slots to consecutive virtual slots);
    receptions are routed in through :meth:`on_reception`.  The engine
    never acknowledges — Remark 10.19: Algorithm 9.1 only implements
    approximate progress; acknowledgments come from Algorithm B.1.
    """

    def __init__(
        self,
        schedule: EpochSchedule,
        rng: np.random.Generator,
        node_id: int,
    ) -> None:
        self.schedule = schedule
        self.config = schedule.config
        self.rng = rng
        self.node_id = node_id
        self.message: BcastMessage | None = None  # ongoing broadcast (m)
        self.first_bcast: BcastMessage | None = None  # m' of this epoch
        self.epochs_completed = 0
        # Per-epoch / per-phase state (reset by _begin_epoch/_begin_phase).
        self._joined_epoch = False  # in S_1 of the current epoch
        self._in_s = False  # member of the current S_phi
        self._alive = False  # not dropped out (unsuccessful communication)
        self._current_epoch = -1
        self._current_phase = -1
        self._label = 0
        self._send_pattern: list[bool] = []
        self._counts: dict[int, int] = {}
        self._potentials: frozenset[int] = frozenset()
        self._neighbors: set[int] = set()
        self._mis_state = COMPETITOR
        self._mis_round = -1
        self._heard_round: dict[int, str] = {}
        self.drops = 0  # dropout counter (observability)

    # -- block transitions ---------------------------------------------------

    def _begin_epoch(self, epoch: int) -> None:
        self._current_epoch = epoch
        self.first_bcast = None
        # Line 3-5: S_1 := nodes with an ongoing broadcast.
        self._joined_epoch = self.message is not None
        self._in_s = self._joined_epoch
        self._alive = True
        if epoch > 0:
            self.epochs_completed += 1

    def _observe_epoch(self, epoch: int) -> None:
        """Enter an epoch already in progress as a passive listener.

        §9.3: nodes that wake mid-epoch "join the algorithm at the
        beginning of the next epoch"; until then they only listen (and
        may still deliver bcast-messages they overhear).
        """
        self._current_epoch = epoch
        self.first_bcast = None
        self._joined_epoch = False
        self._in_s = False
        self._alive = True

    def _begin_phase(self, phase: int) -> None:
        self._current_phase = phase
        t = self.schedule.t
        self._label = int(self.rng.integers(1, self.config.labels + 1))
        self._send_pattern = [False] * t
        self._counts = {}
        self._potentials = frozenset()
        self._neighbors = set()
        self._mis_state = COMPETITOR
        self._mis_round = -1
        self._heard_round = {}

    def _finish_mis_round(self) -> None:
        """Apply one MIS round's results; drop out on missed neighbors."""
        if not (self._in_s and self._alive):
            return
        missing = self._neighbors - set(self._heard_round)
        if missing:
            # §9.3.2: communication unsuccessful -> leave this epoch.
            self._alive = False
            self.drops += 1
            return
        views = [
            (label, state) for label, state in self._heard_round.items()
        ]
        self._mis_state = next_state(self._label, self._mis_state, views)
        self._heard_round = {}

    def _finish_phase(self) -> None:
        """Membership transition: S_{φ+1} = surviving dominators."""
        if self._in_s:
            self._in_s = self._alive and self._mis_state == DOMINATOR

    # -- slot execution --------------------------------------------------------

    def step(self, virtual_slot: int) -> Any | None:
        """Advance one virtual slot; return a payload to transmit or None."""
        epoch, phase, block, off = self.schedule.locate(virtual_slot)
        if epoch != self._current_epoch:
            at_boundary = (
                phase == 0 and block == EpochSchedule.EST1 and off == 0
            )
            if at_boundary:
                self._begin_epoch(epoch)
            else:
                # Woken mid-epoch: listen only until the next boundary.
                self._observe_epoch(epoch)
            self._begin_phase(phase)
        elif phase != self._current_phase:
            self._finish_phase()
            self._begin_phase(phase)

        cfg = self.config
        active = self._joined_epoch and self._in_s and self._alive
        if block == EpochSchedule.EST1:
            if not active:
                return None
            send = self.rng.random() < cfg.p
            self._send_pattern[off] = send
            if send:
                return ("est1", phase, self._label)
            return None

        if block == EpochSchedule.EST2:
            if off == 0:
                self._freeze_potentials()
            if not active:
                return None
            if self.rng.random() < cfg.p:
                return ("est2", phase, self._label, self._potentials)
            return None

        if block == EpochSchedule.MIS:
            rnd, slot_in_round = divmod(off, self.schedule.t)
            if slot_in_round == 0:
                if rnd > 0:
                    self._finish_mis_round()
                self._mis_round = rnd
                self._heard_round = {}
            active = self._joined_epoch and self._in_s and self._alive
            if not active:
                return None
            if self._send_pattern[slot_in_round]:  # replay schedule tau
                return ("mis", phase, rnd, self._label, self._mis_state)
            return None

        # BCAST block.
        if off == 0:
            self._finish_mis_round()
        active = self._joined_epoch and self._in_s and self._alive
        if not active or self.message is None:
            return None
        if self.rng.random() < cfg.p / cfg.q_factor:
            return self.message
        return None

    def _freeze_potentials(self) -> None:
        """Convert est1 counts into the potential-neighbor label set."""
        if not (self._joined_epoch and self._in_s and self._alive):
            self._potentials = frozenset()
            return
        threshold = self.config.potential_threshold
        self._potentials = frozenset(
            label for label, count in self._counts.items() if count >= threshold
        )

    # -- receptions -------------------------------------------------------------

    def on_reception(self, virtual_slot: int, payload: Any) -> None:
        """Route a decoded payload into the current block's bookkeeping."""
        epoch, phase, block, off = self.schedule.locate(virtual_slot)
        if isinstance(payload, BcastMessage):
            if self.first_bcast is None and epoch == self._current_epoch:
                self.first_bcast = payload
            return
        if not isinstance(payload, tuple) or not payload:
            return
        kind = payload[0]
        if kind == "est1" and block == EpochSchedule.EST1:
            _, msg_phase, label = payload
            if msg_phase == self._current_phase:
                self._counts[label] = self._counts.get(label, 0) + 1
        elif kind == "est2" and block == EpochSchedule.EST2:
            _, msg_phase, label, their_potentials = payload
            if (
                msg_phase == self._current_phase
                and self._in_s
                and self._alive
                and label in self._potentials
                and self._label in their_potentials
            ):
                self._neighbors.add(label)
        elif kind == "mis" and block == EpochSchedule.MIS:
            _, msg_phase, rnd, label, state = payload
            if (
                msg_phase == self._current_phase
                and rnd == self._mis_round
                and label in self._neighbors
            ):
                self._heard_round[label] = state


class ApproxProgressMacLayer(MacLayerBase):
    """A MAC layer driven purely by Algorithm 9.1.

    Provides fast approximate progress (Theorem 9.1) but **no
    acknowledgments** (Remark 10.19): broadcasts stay active until
    explicitly aborted.  Used standalone by the f_approg experiments;
    production use goes through
    :class:`~repro.core.combined.CombinedMacLayer`.
    """

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        schedule: EpochSchedule,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id, registry, client)
        self.schedule = schedule
        self.engine: ApproxProgressEngine | None = None

    def _ensure_engine(self) -> ApproxProgressEngine:
        if self.engine is None:
            self.engine = ApproxProgressEngine(
                self.schedule, self.api.rng, self.node_id
            )
        return self.engine

    def _start_broadcast(self, message: BcastMessage) -> None:
        if self.engine is not None:
            self.engine.message = message

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        if self.engine is not None:
            self.engine.message = None

    def on_slot(self, slot: int) -> Any | None:
        engine = self._ensure_engine()
        engine.message = self.current
        return engine.step(slot)

    def on_receive(self, slot: int, sender: int, payload: Any) -> None:
        engine = self._ensure_engine()
        engine.on_reception(slot, payload)
        if isinstance(payload, BcastMessage) and self._sender_in_range(
            sender
        ):
            self._deliver(slot, payload)
