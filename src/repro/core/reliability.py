"""Reliability graphs H^μ_p[S] of Daum et al. (paper §9.2).

Given a sender set ``S`` where each node transmits independently with
probability ``p`` (and nobody outside ``S`` transmits), the edge
``(u, v)`` belongs to ``H^μ_p[S]`` iff *both* directions of the link
succeed with probability at least ``μ`` under that experiment.

``H^μ_p[S]`` has constant degree (each node has at most ``1/((1-γ/2)μ)``
potential neighbors — paper footnote 9) and contains all edges between
nodes within twice the minimum distance (Lemma 10.14), which is what
drives the exponential sparsification of Algorithm 9.1.

This module provides a *ground-truth* Monte-Carlo construction used by
tests and analysis.  The distributed, in-protocol estimation (the
H̃̃^μ_p[S] of §9.2) lives inside
:class:`~repro.core.approx_progress.ApproxProgressEngine`;
:func:`estimate_reliability_graph` reproduces that estimation procedure
outside the simulator so the two can be compared directly.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.sinr.params import SINRParameters
from repro.sinr.physics import received_power

__all__ = [
    "edge_reliability",
    "reliability_graph",
    "estimate_reliability_graph",
]


def _directional_success_counts(
    params: SINRParameters,
    distances: np.ndarray,
    senders: np.ndarray,
    p: float,
    samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Monte-Carlo success counts for every ordered sender pair.

    Returns an ``(|S|, |S|)`` array ``C`` where ``C[i, j]`` counts samples
    in which node ``senders[j]`` decoded node ``senders[i]`` (i sending,
    j listening) under the experiment "each node of S transmits
    independently with probability p".
    """
    s = senders.size
    # Power of sender i received at sender j.
    powers = received_power(params, distances[np.ix_(senders, senders)])
    np.fill_diagonal(powers, 0.0)
    counts = np.zeros((s, s), dtype=np.int64)
    for _ in range(samples):
        sending = rng.random(s) < p
        if not sending.any():
            continue
        tx_powers = powers[sending, :]  # (k, s)
        total = tx_powers.sum(axis=0)  # (s,)
        # For listener j and sender i: interference = total - powers[i, j].
        sending_idx = np.nonzero(sending)[0]
        for row, i in enumerate(sending_idx):
            signal = tx_powers[row]
            interference = total - signal
            sinr = signal / (interference + params.noise)
            ok = sinr >= params.beta
            ok &= ~sending  # listeners must not transmit
            ok[i] = False
            counts[i, ok] += 1
    return counts


def edge_reliability(
    params: SINRParameters,
    distances: np.ndarray,
    sender_set: list[int],
    p: float,
    u: int,
    v: int,
    samples: int = 400,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Monte-Carlo reliability of the (u→v) and (v→u) directions.

    Both ``u`` and ``v`` must be members of ``sender_set``.  Returns the
    pair ``(P[v decodes u], P[u decodes v])`` estimated over ``samples``
    independent slots.
    """
    senders = np.asarray(sorted(sender_set), dtype=np.intp)
    index = {int(node): k for k, node in enumerate(senders)}
    if u not in index or v not in index:
        raise ValueError("u and v must belong to sender_set")
    rng = rng or np.random.default_rng(0)
    counts = _directional_success_counts(
        params, distances, senders, p, samples, rng
    )
    iu, iv = index[u], index[v]
    return counts[iu, iv] / samples, counts[iv, iu] / samples


def reliability_graph(
    params: SINRParameters,
    distances: np.ndarray,
    sender_set: list[int],
    p: float,
    mu: float,
    samples: int = 400,
    rng: np.random.Generator | None = None,
) -> nx.Graph:
    """Monte-Carlo construction of ``H^μ_p[S]``.

    Edge (u, v) present iff the estimated success probability is at least
    ``μ`` in *both* directions.
    """
    if not 0.0 < p <= 0.5:
        raise ValueError("p must be in (0, 1/2] (paper §9.2)")
    if not 0.0 < mu < p:
        raise ValueError("mu must be in (0, p) (paper §9.2)")
    senders = np.asarray(sorted(set(sender_set)), dtype=np.intp)
    rng = rng or np.random.default_rng(0)
    counts = _directional_success_counts(
        params, distances, senders, p, samples, rng
    )
    need = mu * samples
    graph = nx.Graph()
    graph.add_nodes_from(int(x) for x in senders)
    mutual = (counts >= need) & (counts.T >= need)
    for i, j in zip(*np.nonzero(np.triu(mutual, k=1))):
        graph.add_edge(int(senders[i]), int(senders[j]))
    return graph


def estimate_reliability_graph(
    params: SINRParameters,
    distances: np.ndarray,
    sender_set: list[int],
    p: float,
    mu: float,
    gamma: float,
    repetitions: int,
    rng: np.random.Generator | None = None,
) -> nx.Graph:
    """The distributed estimation H̃̃^μ_p[S] replayed outside the simulator.

    Reproduces §9.3.1: every node of S transmits its identity for
    ``repetitions`` slots with probability ``p``; a counterpart heard at
    least ``(1 - γ/2)·μ·T`` times is a *potential* neighbor, and an edge
    is kept iff both endpoints consider each other potential.  (The
    second T-slot exchange of potential lists is information transfer
    only; the edge set it produces is exactly this mutual-threshold set,
    which is what we compute here.)
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if not 0.0 < gamma < 1.0:
        raise ValueError("gamma must be in (0, 1)")
    senders = np.asarray(sorted(set(sender_set)), dtype=np.intp)
    rng = rng or np.random.default_rng(0)
    counts = _directional_success_counts(
        params, distances, senders, p, repetitions, rng
    )
    threshold = (1.0 - gamma / 2.0) * mu * repetitions
    graph = nx.Graph()
    graph.add_nodes_from(int(x) for x in senders)
    mutual = (counts >= threshold) & (counts.T >= threshold)
    for i, j in zip(*np.nonzero(np.triu(mutual, k=1))):
        graph.add_edge(int(senders[i]), int(senders[j]))
    return graph
