"""Algorithm B.1: local broadcast with fast acknowledgments.

This is the Halldórsson–Mitra ``LocalBroadcast`` algorithm restated by the
paper in Appendix B with *local* parameters: the contention bound ``Ñ_x``
replaces the network size, which is what makes Theorem 5.1's bound

    f_ack = O(Δ·log(Λ/ε_ack) + log Λ · log(Λ/ε_ack))

depend only on local quantities (Theorem 5.1 instantiates ``Ñ_x = 4Λ²``).

The structure is exactly the paper's (nested loops, multiplicative
probability adaptation, fallback on overheard traffic, halting on spent
probability budget); the leading constants are configuration knobs
because the proof constants are far too conservative to simulate — see
DESIGN.md §3 (substitution 1).

Intuition (paper App. B): the "right" transmission probability is about
``1/Ñ_x``.  A broadcaster starts low and doubles every block; receiving
many messages from others signals that the neighborhood has reached the
productive probability regime, so the node falls back and lingers there.
The spent-probability budget ``tp`` caps total channel pressure and
doubles as the halting (acknowledgment) condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage, MessageRegistry

__all__ = ["AckConfig", "AckEngine", "AckMacLayer"]


@dataclass(frozen=True)
class AckConfig:
    """Parameters of Algorithm B.1.

    Attributes
    ----------
    contention_bound:
        Ñ_x, the known upper bound on local contention.  Theorem 5.1 uses
        the packing bound ``4Λ²``; tighter application knowledge may pass
        less.  Must be >= 1.
    eps_ack:
        Target failure probability ε_ack of the acknowledgment guarantee.
    delta:
        Inner-block length multiplier (paper constant δ): each inner block
        runs ``ceil(delta · log2(Ñ/ε))`` slots at a fixed probability.
    gamma_prime:
        Halting budget multiplier (paper constant γ′): the node halts — and
        acknowledges — once the accumulated transmission probability
        exceeds ``gamma_prime · log2(Ñ/ε)``.
    rc_factor:
        Fallback threshold multiplier (paper constant 8): overhearing more
        than ``rc_factor · log2(2Ñ/ε)`` messages since the last fallback
        triggers a probability fallback.
    fallback_divisor, floor_divisor, prob_cap:
        The paper's structural constants 32, 128, 1/16: on fallback the
        probability divides by ``fallback_divisor`` but never below
        ``1/(floor_divisor·Ñ)``, and it never exceeds ``prob_cap``.
    """

    contention_bound: float
    eps_ack: float = 0.1
    delta: float = 1.0
    gamma_prime: float = 4.0
    rc_factor: float = 2.0
    fallback_divisor: float = 32.0
    floor_divisor: float = 128.0
    prob_cap: float = 1.0 / 16.0

    def __post_init__(self) -> None:
        if self.contention_bound < 1:
            raise ValueError("contention_bound must be >= 1")
        if not 0.0 < self.eps_ack < 1.0:
            raise ValueError("eps_ack must be in (0, 1)")
        for name in ("delta", "gamma_prime", "rc_factor"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.prob_cap <= 0.5:
            raise ValueError("prob_cap must be in (0, 1/2]")

    @property
    def log_term(self) -> float:
        """log2(Ñ/ε), the recurring factor in every bound."""
        return math.log2(max(self.contention_bound / self.eps_ack, 2.0))

    @property
    def inner_block_slots(self) -> int:
        """Length of one fixed-probability inner block."""
        return max(1, math.ceil(self.delta * self.log_term))

    @property
    def halt_budget(self) -> float:
        """Total transmission probability at which the node halts."""
        return self.gamma_prime * self.log_term

    @property
    def rc_threshold(self) -> float:
        """Received-message count that triggers a fallback."""
        return self.rc_factor * math.log2(
            max(2.0 * self.contention_bound / self.eps_ack, 2.0)
        )

    @property
    def initial_probability(self) -> float:
        """Starting transmission probability 1/(4Ñ)."""
        return 1.0 / (4.0 * self.contention_bound)

    @property
    def floor_probability(self) -> float:
        """Lowest probability reachable by fallbacks, 1/(128Ñ)."""
        return 1.0 / (self.floor_divisor * self.contention_bound)

    def expected_slot_bound(self, contention: float | None = None) -> float:
        """The Theorem B.3 runtime shape for a given actual contention N_x:
        ``O(N_x·log(Ñ/ε) + log(Ñ)·log(Ñ/ε))`` in owned slots.

        Used by the benchmarks as the predicted curve to compare measured
        latencies against (shape, not constants).
        """
        n_x = self.contention_bound if contention is None else contention
        log_n = math.log2(max(self.contention_bound, 2.0))
        return n_x * self.log_term + log_n * self.log_term


class AckEngine:
    """Per-broadcast state machine of Algorithm B.1.

    Owns one slot at a time through :meth:`step`; the caller reports
    overheard messages through :meth:`notify_reception`.  The engine is
    independent of the MAC plumbing so it can be reused by the combined
    layer (Algorithm 11.1), which feeds it only the even slots.
    """

    def __init__(self, config: AckConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.tp = 0.0  # accumulated transmission probability
        self.rc = 0  # messages overheard since last fallback
        self.probability = config.initial_probability
        self.halted = False
        self.slots_run = 0
        self.transmissions = 0
        self.fallbacks = 0  # observability: Claim B.19 counts these
        self._fallback_pending = False
        self._block_remaining = 0
        # Config scalars read every owned slot; snapshotting them here
        # keeps the log2-deriving properties out of the hot loop (a
        # multi-trial sweep steps these engines hundreds of thousands of
        # times).
        self._halt_budget = config.halt_budget
        self._rc_threshold = config.rc_threshold
        self._inner_block_slots = config.inner_block_slots
        self._begin_outer()

    # -- paper loop structure ---------------------------------------------

    def _begin_outer(self) -> None:
        """Line 4-5: fallback the probability and reset the counter."""
        self.probability = max(
            self.config.floor_probability,
            self.probability / self.config.fallback_divisor,
        )
        self.rc = 0
        self._begin_inner()

    def _begin_inner(self) -> None:
        """Line 7-8: double the probability and start a fixed block."""
        self.probability = min(self.config.prob_cap, 2.0 * self.probability)
        self._block_remaining = self._inner_block_slots

    # -- public interface ---------------------------------------------------

    def step(self) -> bool:
        """Run one owned slot; return True if the node transmits.

        After the engine halts further steps are no-ops returning False.
        """
        if self.halted:
            return False
        if self._fallback_pending:
            self._fallback_pending = False
            self.fallbacks += 1
            self._begin_outer()
        self.slots_run += 1
        transmit = self.rng.random() < self.probability
        if transmit:
            self.transmissions += 1
        # Line 13-15: budget accounting and halting.
        self.tp += self.probability
        if self.tp > self._halt_budget:
            self.halted = True
        self._block_remaining -= 1
        if self._block_remaining <= 0 and not self.halted:
            self._begin_inner()
        return transmit

    def notify_reception(self) -> None:
        """Line 17-21: count overheard messages; arm fallback on overflow."""
        if self.halted:
            return
        self.rc += 1
        if self.rc > self._rc_threshold:
            self._fallback_pending = True


class AckMacLayer(MacLayerBase):
    """A MAC layer driven purely by Algorithm B.1.

    Provides the acknowledgment guarantee of Theorem 5.1; its progress
    behaviour is the one Theorem 6.1 proves cannot be improved past Δ.
    Used standalone by the f_ack experiments and as the even-slot engine
    of the combined layer.
    """

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        config: AckConfig,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id, registry, client)
        self.config = config
        self.engine: AckEngine | None = None

    def _start_broadcast(self, message: BcastMessage) -> None:
        # Engine creation is deferred to the first slot if the node has
        # not been bound yet (bcast() may arrive before Runtime.bind).
        self.engine = None

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        self.engine = None

    def on_slot(self, slot: int) -> Any | None:
        if not self.busy:
            return None
        if self.engine is None:
            self.engine = AckEngine(self.config, self.api.rng)
        transmit = self.engine.step()
        payload = self.current if transmit else None
        if self.engine.halted:
            self._acknowledge(slot)
        return payload

    def on_receive(self, slot: int, sender: int, payload: Any) -> None:
        if not isinstance(payload, BcastMessage):
            return
        if self._sender_in_range(sender):
            self._deliver(slot, payload)
        # The fallback counter tracks raw channel pressure, so even
        # filtered messages count (Remark 4.6 only constrains rcv).
        if self.engine is not None:
            self.engine.notify_reception()
