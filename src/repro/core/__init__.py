"""The paper's primary contribution: an absMAC layer for the SINR model.

Contents map to the paper as follows:

* :mod:`repro.core.events` — bcast/rcv/ack/abort event vocabulary (§4.4),
* :mod:`repro.core.spec` — the probabilistic absMAC specification with
  the new *approximate progress* contract (Definition 7.1) and a trace
  conformance checker,
* :mod:`repro.core.ack_protocol` — Algorithm B.1: local broadcast with
  fast acknowledgments (Theorem 5.1),
* :mod:`repro.core.reliability` — the reliability graphs H^μ_p[S] of
  Daum et al. and their locally-estimated approximations (§9.2),
* :mod:`repro.core.mis` — distributed MIS with random temporary labels
  and a fixed round budget (§9.3.2, Lemma 10.1),
* :mod:`repro.core.approx_progress` — Algorithm 9.1: fast approximate
  progress (Theorem 9.1),
* :mod:`repro.core.combined` — Algorithm 11.1: the full absMAC
  implementation interleaving the two engines (Theorem 11.1),
* :mod:`repro.core.decay` — the Decay baseline of Bar-Yehuda et al.,
  which Theorem 8.1 proves cannot give fast approximate progress.
"""

from repro.core.events import BcastMessage, MessageRegistry
from repro.core.spec import (
    AbsMacContract,
    AckReport,
    ProgressReport,
    measure_acknowledgments,
    measure_progress,
    measure_approximate_progress,
    check_contract,
)
from repro.core.ack_protocol import AckConfig, AckEngine, AckMacLayer
from repro.core.reliability import (
    reliability_graph,
    estimate_reliability_graph,
    edge_reliability,
)
from repro.core.mis import (
    DistributedMIS,
    greedy_mis,
    is_independent_set,
    is_maximal_independent_set,
)
from repro.core.approx_progress import (
    ApproxProgressConfig,
    EpochSchedule,
    ApproxProgressEngine,
    ApproxProgressMacLayer,
)
from repro.core.combined import CombinedMacLayer
from repro.core.decay import DecayConfig, DecayMacLayer

__all__ = [
    "BcastMessage",
    "MessageRegistry",
    "AbsMacContract",
    "AckReport",
    "ProgressReport",
    "measure_acknowledgments",
    "measure_progress",
    "measure_approximate_progress",
    "check_contract",
    "AckConfig",
    "AckEngine",
    "AckMacLayer",
    "reliability_graph",
    "estimate_reliability_graph",
    "edge_reliability",
    "DistributedMIS",
    "greedy_mis",
    "is_independent_set",
    "is_maximal_independent_set",
    "ApproxProgressConfig",
    "EpochSchedule",
    "ApproxProgressEngine",
    "ApproxProgressMacLayer",
    "CombinedMacLayer",
    "DecayConfig",
    "DecayMacLayer",
]
