"""Higher-level algorithms running over the absMAC interface.

These are the consumers that §5.1 and §12 plug the paper's absMAC
implementation into:

* :mod:`repro.protocols.bsmb` — Basic Single-Message Broadcast of
  Khabbazian et al. [37] (Theorem 12.1),
* :mod:`repro.protocols.bmmb` — Basic Multi-Message Broadcast of [37]
  (Theorem 12.5),
* :mod:`repro.protocols.consensus` — network-wide consensus in
  O(D · f_ack) in the style of Newport [44] (Corollary 5.5).

All three are written purely against
:class:`~repro.absmac.layer.MacLayerBase` /
:class:`~repro.absmac.layer.MacClient`, so they run unchanged over the
ideal layer, the Decay layer, or the paper's SINR implementation — the
plug-and-play property the paper demonstrates.
"""

from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast
from repro.protocols.consensus import (
    ConsensusClient,
    ConsensusResult,
    run_consensus,
)

__all__ = [
    "BsmbClient",
    "run_single_message_broadcast",
    "BmmbClient",
    "run_multi_message_broadcast",
    "ConsensusClient",
    "ConsensusResult",
    "run_consensus",
]
