"""Basic Multi-Message Broadcast (BMMB) of Khabbazian et al. [37].

Protocol (restated in the paper's proof of Theorem 12.6): every node
keeps a FIFO queue ``bcastq`` and a set ``rcvd``.  On ``arrive(m)``
(environment input) or on a first ``rcv(m)``: deliver m, add it to
``rcvd``, and append it to ``bcastq``.  Whenever the MAC is idle and
``bcastq`` is non-empty, broadcast the head; on its ack, pop it.
Messages are black boxes (no combining, §4.5).

Theorem 12.5 + 12.6 bound completion by

    t0 + ((c3+c2)·D_G̃ + (c3+2c2)·⌈ln(2n³k/γ')⌉·k')·f_approg
       + (k'-1)·f_ack

— the paper's headline improvement over per-hop Decay pipelines is that
``D`` and ``k`` enter *additively* (D·polylog + k·(Δ + polylog)) instead
of multiplicatively (D·k·Δ); the Table 1 MMB benchmark measures exactly
that additivity.

The protocol code is MAC-agnostic: it sees only bcast/rcv/ack events.
:class:`~repro.vectorized.protocols.BmmbClients` is this client's
columnar twin (the FIFO queue as padded index arrays); the equivalence
suite pins them decode-for-decode identical.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage
from repro.simulation.runtime import Runtime

__all__ = ["BmmbClient", "run_multi_message_broadcast"]


class BmmbClient(MacClient):
    """Per-node BMMB state machine (FIFO relay with dedup)."""

    def __init__(self) -> None:
        self.mac: MacLayerBase | None = None
        self.bcastq: deque[Any] = deque()
        self.rcvd: set[Any] = set()
        self.delivered: dict[Any, int] = {}  # token -> delivery slot
        self._arrivals: list[Any] = []

    # -- environment input -------------------------------------------------

    def arrive(self, token: Any, slot: int = 0) -> None:
        """arrive(m): the environment injects message ``token`` here."""
        if token in self.rcvd:
            return
        self.rcvd.add(token)
        self.delivered.setdefault(token, slot)
        self.bcastq.append(token)
        self._pump()

    # -- MAC callbacks ---------------------------------------------------------

    def on_mac_start(self, mac: MacLayerBase) -> None:
        self.mac = mac
        self._pump()

    def on_rcv(self, slot: int, message: BcastMessage) -> None:
        token = message.payload
        if token in self.rcvd:
            return  # discard duplicates ([37])
        self.rcvd.add(token)
        self.delivered[token] = slot
        self.bcastq.append(token)
        self._pump()

    def on_ack(self, slot: int, message: BcastMessage) -> None:
        self._pump()

    def _pump(self) -> None:
        """Broadcast the queue head whenever the MAC is idle."""
        if self.mac is None or self.mac.busy or not self.bcastq:
            return
        token = self.bcastq.popleft()
        self.mac.bcast(token)

    def has_all(self, tokens) -> bool:
        """True iff this node has delivered every token."""
        return all(t in self.delivered for t in tokens)


def run_multi_message_broadcast(
    runtime: Runtime,
    macs: Sequence[MacLayerBase],
    clients: Sequence[BmmbClient],
    arrivals: dict[int, list[Any]],
    progress_callback: Callable[[int, int], None] | None = None,
) -> int:
    """Execute BMMB to completion; return the completion slot.

    ``arrivals`` maps node id → list of message tokens the environment
    injects there at time 0 (the one-shot k-message problem of §4.5).
    Tokens must be globally unique.  Completion means every node
    delivered every token.
    """
    if len(macs) != len(clients):
        raise ValueError("macs and clients must align")
    all_tokens: list[Any] = []
    for node, tokens in arrivals.items():
        for token in tokens:
            if token in all_tokens:
                raise ValueError(f"duplicate message token {token!r}")
            all_tokens.append(token)
    if not all_tokens:
        return runtime.slot
    for node, tokens in arrivals.items():
        macs[node].wake()
        for token in tokens:
            clients[node].arrive(token, slot=runtime.slot)

    def finished(rt: Runtime) -> bool:
        count = sum(1 for c in clients if c.has_all(all_tokens))
        if progress_callback is not None:
            progress_callback(rt.slot, count)
        return count == len(clients)

    return runtime.run_until(finished, check_every=32)
