"""Network-wide consensus over an absMAC (Corollary 5.5, after [44]).

Newport [44] showed consensus is solvable over an absMAC in
O(D·f_ack) time given unique ids, knowledge of n, and a connected
communication graph; Corollary 5.5 plugs Theorem 5.1's f_ack in to get
the first efficient consensus algorithm for the SINR model:

    f_CONS = O(D_{G_{1-ε}}·(Δ_{G_{1-ε}} + log Λ)·log(nΛ/ε_CONS)).

We implement a flood-based algorithm with the same interface and the
same O(D·f_ack) envelope (see DESIGN.md §3, substitution 3 — Newport's
wPAXOS machinery exists to tolerate unknown diameter, which our model
setting does not require):

* every node repeatedly performs *acknowledged broadcasts* of the
  largest (id, value) pair it has seen — each completed bcast+ack is one
  flooding wave;
* a value propagates at least one hop per two completed waves (a node
  finishing wave w incorporates everything it heard before wave w
  started, and its next wave carries it);
* after ``2·D_bound + 2`` completed waves a node decides the value of
  the maximum id — by then the global maximum has flooded everywhere.

Properties (whenever the absMAC honors its ack guarantee, i.e. with
probability ≥ 1 − ε_CONS after the union bound of Theorem 5.4):
**validity** — the decided value is the max-id node's input;
**agreement** — every node sees the same global maximum;
**termination** — a fixed number of acked broadcasts.

The protocol code is MAC-agnostic: it sees only bcast/rcv/ack events.
:class:`~repro.vectorized.protocols.ConsensusClients` is this client's
columnar twin (flood-wave max-(id, value) columns); the equivalence
suite pins them decode-for-decode identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage
from repro.simulation.runtime import Runtime

__all__ = ["ConsensusClient", "ConsensusResult", "run_consensus"]


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of one consensus execution."""

    decisions: dict[int, int]  # node -> decided value
    decision_slots: dict[int, int]  # node -> slot of the decide event
    completion_slot: int

    @property
    def agreed(self) -> bool:
        """True iff all nodes decided the same value."""
        return len(set(self.decisions.values())) <= 1

    def decided_value(self) -> int:
        """The common decision (requires agreement)."""
        values = set(self.decisions.values())
        if len(values) != 1:
            raise ValueError(f"no agreement: {sorted(values)}")
        return values.pop()


class ConsensusClient(MacClient):
    """Per-node flooding-consensus state machine.

    Parameters
    ----------
    node_id:
        This node's unique id (doubles as the flood priority).
    initial_value:
        The node's binary input (paper §4.5: values from {0, 1}).
    waves:
        Number of acknowledged broadcasts to perform before deciding;
        callers use ``2·D_bound + 2``.
    """

    def __init__(self, node_id: int, initial_value: int, waves: int) -> None:
        if initial_value not in (0, 1):
            raise ValueError("initial values are binary (paper §4.5)")
        if waves < 1:
            raise ValueError("waves must be >= 1")
        self.node_id = node_id
        self.initial_value = initial_value
        self.waves = waves
        self.best: tuple[int, int] = (node_id, initial_value)  # (id, value)
        self.waves_done = 0
        self.decision: int | None = None
        self.decision_slot: int | None = None
        self.mac: MacLayerBase | None = None

    # -- MAC callbacks --------------------------------------------------------

    def on_mac_start(self, mac: MacLayerBase) -> None:
        self.mac = mac
        self._next_wave()

    def on_rcv(self, slot: int, message: BcastMessage) -> None:
        payload = message.payload
        if isinstance(payload, tuple) and len(payload) == 2:
            candidate = (int(payload[0]), int(payload[1]))
            if candidate[0] > self.best[0]:
                self.best = candidate

    def on_ack(self, slot: int, message: BcastMessage) -> None:
        self.waves_done += 1
        if self.waves_done >= self.waves:
            self._decide(slot)
        else:
            self._next_wave()

    # -- internals ----------------------------------------------------------------

    def _next_wave(self) -> None:
        if self.mac is not None and not self.mac.busy:
            self.mac.bcast(self.best)

    def _decide(self, slot: int) -> None:
        if self.decision is None:
            self.decision = self.best[1]
            self.decision_slot = slot
            if self.mac is not None and self.mac.api is not None:
                self.mac.api.emit("decide", self.decision)

    @property
    def decided(self) -> bool:
        """True once the irrevocable decide action happened."""
        return self.decision is not None


def run_consensus(
    runtime: Runtime,
    macs: Sequence[MacLayerBase],
    clients: Sequence[ConsensusClient],
    progress_callback: Callable[[int, int], None] | None = None,
) -> ConsensusResult:
    """Execute consensus to completion (all nodes decided)."""
    if len(macs) != len(clients):
        raise ValueError("macs and clients must align")
    for mac in macs:
        mac.wake()  # consensus starts with every node participating

    def finished(rt: Runtime) -> bool:
        count = sum(1 for c in clients if c.decided)
        if progress_callback is not None:
            progress_callback(rt.slot, count)
        return count == len(clients)

    completion = runtime.run_until(finished, check_every=32)
    return ConsensusResult(
        decisions={c.node_id: c.decision for c in clients},
        decision_slots={c.node_id: c.decision_slot for c in clients},
        completion_slot=completion,
    )
