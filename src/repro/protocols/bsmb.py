"""Basic Single-Message Broadcast (BSMB) of Khabbazian et al. [37].

Protocol (§12, proof of Theorem 12.6): the designated initial node i0
broadcasts the message; every other node, on its first rcv of the
message, immediately delivers it upward and re-broadcasts it exactly
once.  Over an absMAC with approximate progress the completion time is

    (c3·D_G̃ + c2·ln(n/γ'))·f_approg        (Theorem 12.1 + 12.6)

because the message front advances one G̃-hop per (approximate) progress
bound; Theorem 12.7 instantiates this with the paper's implementation to
get global SMB in O((D_{G_{1-2ε}} + log(n/ε))·log^{α+1} Λ).

The protocol code is MAC-agnostic: it sees only bcast/rcv/ack events.
:class:`~repro.vectorized.protocols.BsmbClients` is this client's
columnar twin (same transitions as whole-population column updates);
the equivalence suite pins them decode-for-decode identical.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage
from repro.simulation.runtime import Runtime

__all__ = ["BsmbClient", "run_single_message_broadcast"]


class BsmbClient(MacClient):
    """Per-node BSMB state machine.

    ``delivered_slot`` records when the node first held the message —
    the quantity global-broadcast completion is measured by.
    """

    def __init__(self, payload_tag: str = "smb") -> None:
        self.payload_tag = payload_tag
        self.mac: MacLayerBase | None = None
        self.delivered_slot: int | None = None
        self.relayed = False
        self._pending_relay: Any | None = None

    def on_mac_start(self, mac: MacLayerBase) -> None:
        self.mac = mac
        self._try_relay()

    def start_as_source(self, mac: MacLayerBase, payload: Any) -> None:
        """Make this node i0: it holds and broadcasts the message."""
        self.mac = mac
        self.delivered_slot = 0
        self.relayed = True
        mac.bcast(payload)

    def on_rcv(self, slot: int, message: BcastMessage) -> None:
        if self.delivered_slot is None:
            self.delivered_slot = slot  # deliver event of [37]
            self._pending_relay = message.payload
            self._try_relay()

    def _try_relay(self) -> None:
        if (
            self._pending_relay is not None
            and not self.relayed
            and self.mac is not None
            and not self.mac.busy
        ):
            self.relayed = True
            self.mac.bcast(self._pending_relay)
            self._pending_relay = None

    @property
    def done(self) -> bool:
        """True once this node has delivered the message."""
        return self.delivered_slot is not None


def run_single_message_broadcast(
    runtime: Runtime,
    macs: Sequence[MacLayerBase],
    clients: Sequence[BsmbClient],
    source: int,
    payload: Any = "smb-message",
    progress_callback: Callable[[int, int], None] | None = None,
) -> int:
    """Execute BSMB to completion; return the completion slot.

    ``macs[i].client`` must be ``clients[i]``.  Completion means every
    node delivered the message.  ``progress_callback(slot, count)`` is
    invoked periodically with the current delivery count (used by the
    benchmarks for early termination diagnostics).
    """
    if len(macs) != len(clients):
        raise ValueError("macs and clients must align")
    for mac, client in zip(macs, clients):
        if mac.client is not client:
            raise ValueError("each mac must be wired to its client")
    clients[source].start_as_source(macs[source], payload)

    def finished(rt: Runtime) -> bool:
        count = sum(1 for c in clients if c.done)
        if progress_callback is not None:
            progress_callback(rt.slot, count)
        return count == len(clients)

    return runtime.run_until(finished, check_every=32)
