"""repro — a local broadcast layer for the SINR network model.

A from-scratch reproduction of Halldórsson, Holzer & Lynch,
*A Local Broadcast Layer for the SINR Network Model* (PODC 2015,
arXiv:1505.04514): a probabilistic abstract MAC layer — with the
paper's new *approximate progress* guarantee — implemented over a
slot-synchronous SINR wireless simulator, plus the higher-level
broadcast and consensus algorithms it unlocks.

Quick start::

    from repro import (
        SINRParameters, uniform_disk, build_combined_stack,
        run_local_broadcast_experiment,
    )

    points = uniform_disk(50, radius=20.0, seed=1)
    params = SINRParameters(epsilon=0.1)
    stack = build_combined_stack(points, params)
    acks, progress = run_local_broadcast_experiment(stack, [0, 10, 20])
    print(acks.mean_latency(), progress.mean_latency())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.geometry` — deployments and growth-bounded metrics,
* :mod:`repro.sinr` — the physical model and its induced graphs,
* :mod:`repro.topology` — dynamic topology (mobility & churn) advancing
  at epoch boundaries, identical on every executor,
* :mod:`repro.simulation` — the slotted distributed-protocol runtime,
* :mod:`repro.core` — the paper's algorithms (B.1, 9.1, 11.1, Decay)
  and the absMAC spec checker,
* :mod:`repro.absmac` — the MAC service interface + ideal layer,
* :mod:`repro.protocols` — BSMB / BMMB / consensus over any MAC,
* :mod:`repro.lowerbounds` — the Theorem 6.1 and 8.1 constructions,
* :mod:`repro.analysis` — bound formulas, metrics, experiment harness,
* :mod:`repro.experiments` — the batched multi-trial experiment engine
  (declarative :class:`~repro.experiments.TrialPlan` sweeps over a keyed
  artifact cache, lockstep SINR batching, process-pool execution).
"""

from repro.geometry import (
    PointSet,
    uniform_disk,
    uniform_square,
    grid_deployment,
    line_deployment,
    cluster_deployment,
    two_parallel_lines,
    two_balls,
)
from repro.sinr import (
    SINRParameters,
    Channel,
    GrayZoneAdversary,
    JammingAdversary,
    strong_connectivity_graph,
    weak_connectivity_graph,
    link_length_ratio,
    graph_degree,
    graph_diameter,
)
from repro.sinr.graphs import approx_connectivity_graph
from repro.simulation import Runtime, RuntimeConfig, ProtocolNode
from repro.core import (
    BcastMessage,
    MessageRegistry,
    AbsMacContract,
    AckConfig,
    AckMacLayer,
    ApproxProgressConfig,
    EpochSchedule,
    ApproxProgressMacLayer,
    CombinedMacLayer,
    DecayConfig,
    DecayMacLayer,
    measure_acknowledgments,
    measure_progress,
    measure_approximate_progress,
    check_contract,
)
from repro.absmac import MacClient, MacLayerBase, IdealMacConfig, IdealMacLayer
from repro.protocols import (
    BsmbClient,
    run_single_message_broadcast,
    BmmbClient,
    run_multi_message_broadcast,
    ConsensusClient,
    ConsensusResult,
    run_consensus,
)
from repro.analysis import (
    NetworkMetrics,
    compute_metrics,
    build_combined_stack,
    build_decay_stack,
    build_approg_stack,
    run_local_broadcast_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "PointSet",
    "uniform_disk",
    "uniform_square",
    "grid_deployment",
    "line_deployment",
    "cluster_deployment",
    "two_parallel_lines",
    "two_balls",
    "SINRParameters",
    "Channel",
    "GrayZoneAdversary",
    "JammingAdversary",
    "strong_connectivity_graph",
    "weak_connectivity_graph",
    "approx_connectivity_graph",
    "link_length_ratio",
    "graph_degree",
    "graph_diameter",
    "Runtime",
    "RuntimeConfig",
    "ProtocolNode",
    "BcastMessage",
    "MessageRegistry",
    "AbsMacContract",
    "AckConfig",
    "AckMacLayer",
    "ApproxProgressConfig",
    "EpochSchedule",
    "ApproxProgressMacLayer",
    "CombinedMacLayer",
    "DecayConfig",
    "DecayMacLayer",
    "measure_acknowledgments",
    "measure_progress",
    "measure_approximate_progress",
    "check_contract",
    "MacClient",
    "MacLayerBase",
    "IdealMacConfig",
    "IdealMacLayer",
    "BsmbClient",
    "run_single_message_broadcast",
    "BmmbClient",
    "run_multi_message_broadcast",
    "ConsensusClient",
    "ConsensusResult",
    "run_consensus",
    "NetworkMetrics",
    "compute_metrics",
    "build_combined_stack",
    "build_decay_stack",
    "build_approg_stack",
    "run_local_broadcast_experiment",
    "__version__",
]
