"""The batched multi-trial experiment engine.

Three execution modes, one contract — a
:class:`~repro.experiments.plans.TrialPlan` yields the *same*
:class:`~repro.experiments.plans.TrialResult` (dataclass-equal, i.e.
bit-identical metrics) whichever way it runs:

``sequential``
    One trial at a time through the legacy harness path
    (:func:`run_trial` builds the stack with the harness builders and
    drives ``Runtime.run_until`` exactly as the old benchmarks did).

``batched``
    Plans with equal node count and physical parameters advance in
    lockstep: each slot, every live trial's transmitter set is
    collected, the whole batch's SINR physics is resolved as one
    ``(trials, n, n)`` tensor reduction
    (:func:`~repro.sinr.physics.successful_receptions_batch`), and each
    trial's outcome is delivered through its own channel (own adversary
    RNG, own trace).  Per-trial protocol state machines are untouched —
    only the physics hot loop is fused.

``workers > 1``
    Plan shards are shipped to the scheduler's worker pool
    (:mod:`repro.service.scheduler` — the same sharding machinery the
    :mod:`repro.service` job server runs); each worker executes its
    contiguous shard through :func:`execute_plans` below.  Determinism
    is unconditional because every trial's randomness comes from its
    plan's seed alone (see :func:`repro.simulation.rng.spawn_trial_seeds`
    for deriving per-trial seeds from one master seed).

All execution knobs travel as one frozen
:class:`~repro.experiments.policy.ExecutionPolicy`; the legacy
``run_trials(mode=, workers=, vectorize=, native=)`` kwargs keep
working through a deprecation shim
(:func:`~repro.experiments.policy.resolve_policy`).
:func:`run_trials` itself is a thin client of the scheduler path:
:func:`execute_plans` is the one in-process funnel through which all
four executors (sequential / batched object / columnar / native) are
reached, whether the caller is this module, a pool worker, or the job
server.

Deployment-derived artifacts (distances, gains, graphs, metrics) come
from the keyed cache in :mod:`repro.experiments.cache`, so a
many-seed sweep over one deployment derives them once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.analysis.harness import (
    StackBundle,
    build_ack_stack,
    build_approg_stack,
    build_combined_stack,
    build_decay_stack,
)
from repro.core.spec import broadcast_intervals
from repro.experiments.cache import (
    ArtifactCache,
    deployment_artifacts,
    resolve_deployment,
)
from repro.experiments.plans import TrialPlan, TrialResult
from repro.experiments.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.experiments.workloads import Workload, get_workload
from repro.sinr.physics import batch_tensor, successful_receptions_batch
from repro.vectorized.engine import run_vector_group, vector_eligible

__all__ = [
    "build_stack",
    "execute_plans",
    "run_trial",
    "run_trials",
]


def build_stack(
    plan: TrialPlan, cache: ArtifactCache | None = None
) -> StackBundle:
    """Materialize a plan's deployment + MAC stack (harness builders)."""
    points = resolve_deployment(plan.deployment, cache)
    workload = get_workload(plan.workload)
    adversary = None
    if plan.adversary is not None:
        graph = deployment_artifacts(points, plan.params, cache).graph
        adversary = plan.adversary.build(graph, plan.seed)
    common = dict(
        client_factory=workload.client_factory(plan),
        seed=plan.seed,
        max_slots=plan.max_slots,
        record_physical=plan.record_physical,
        adversary=adversary,
        topology=plan.topology,
    )
    if plan.stack == "combined":
        return build_combined_stack(
            points,
            plan.params,
            eps_ack=plan.eps_ack,
            eps_approg=plan.eps_approg,
            ack_config=plan.ack_config,
            approg_config=plan.approg_config,
            **common,
        )
    if plan.stack == "ack":
        return build_ack_stack(
            points,
            plan.params,
            eps_ack=plan.eps_ack,
            ack_config=plan.ack_config,
            **common,
        )
    if plan.stack == "approg":
        return build_approg_stack(
            points,
            plan.params,
            eps_approg=plan.eps_approg,
            approg_config=plan.approg_config,
            **common,
        )
    if plan.stack == "decay":
        return build_decay_stack(
            points,
            plan.params,
            eps_ack=plan.eps_ack,
            decay_config=plan.decay_config,
            **common,
        )
    raise ValueError(f"unknown stack {plan.stack!r}")  # guarded by TrialPlan


def _result(
    stack: StackBundle,
    plan: TrialPlan,
    workload: Workload,
    completion: int,
) -> TrialResult:
    # One broadcast-interval scan serves both measurements; traces of
    # big all-broadcast trials run to millions of events.
    intervals = broadcast_intervals(stack.runtime.trace)
    ack = stack.ack_report(intervals)
    approg = stack.approg_report(intervals)
    metrics = stack.metrics
    channel = stack.runtime.channel
    return TrialResult(
        label=plan.display_label,
        seed=plan.seed,
        n=metrics.n,
        degree=metrics.degree,
        degree_tilde=metrics.degree_tilde,
        diameter=metrics.diameter,
        diameter_tilde=metrics.diameter_tilde,
        lam=metrics.lam,
        slots=stack.runtime.slot,
        broadcasts=len(ack.records),
        ack_latencies=tuple(ack.latencies()),
        ack_completeness=ack.completeness_fraction(),
        approg_latencies=tuple(approg.latencies()),
        approg_episodes=len(approg.records),
        transmissions=channel.total_transmissions,
        receptions=channel.total_receptions,
        extra=tuple(
            sorted(workload.finalize(stack, plan, completion).items())
        ),
    )


def run_trial(
    plan: TrialPlan, cache: ArtifactCache | None = None
) -> TrialResult:
    """Run one plan sequentially — the legacy single-trial path.

    Builds the stack with the harness builders and drives the runtime
    with ``run_until``/``run`` exactly as the pre-engine benchmarks did;
    the batched executor is verified bit-identical against this.
    """
    stack = build_stack(plan, cache)
    workload = get_workload(plan.workload)
    workload.start(stack, plan)
    target = workload.target_slots(stack, plan)
    if target is not None:
        stack.runtime.run(target)
        completion = stack.runtime.slot
    else:
        completion = stack.runtime.run_until(
            lambda _rt: workload.done(stack, plan),
            check_every=workload.check_every,
        )
    if plan.extra_slots:
        stack.runtime.run(plan.extra_slots)
    return _result(stack, plan, workload, completion)


@dataclass
class _TrialState:
    """Bookkeeping for one trial inside a lockstep batch."""

    index: int  # position in the caller's plan list
    row: int  # position in the stacked distance/gain tensors
    plan: TrialPlan
    workload: Workload
    stack: StackBundle
    target: int | None  # fixed slot budget, or None for predicate polling
    phase: str = "run"  # run -> extra -> done
    steps: int = 0  # slots advanced since workload start
    extra_left: int = 0
    completion: int | None = None
    result: TrialResult | None = field(default=None, repr=False)

    def advance_phase(self) -> None:
        """Run the phase transitions due at the top of a slot."""
        if self.phase == "run":
            finished = (
                self.steps >= self.target
                if self.target is not None
                else (
                    self.steps % self.workload.check_every == 0
                    and self.workload.done(self.stack, self.plan)
                )
            )
            if finished:
                self.completion = self.stack.runtime.slot
                self.extra_left = self.plan.extra_slots
                self.phase = "extra"
        if self.phase == "extra" and self.extra_left <= 0:
            self.phase = "done"
            self.result = _result(
                self.stack, self.plan, self.workload, self.completion
            )


def _run_lockstep(
    group: Sequence[tuple[int, TrialPlan]],
    cache: ArtifactCache | None = None,
) -> dict[int, TrialResult]:
    """Advance one (n, params)-compatible group of trials in lockstep."""
    states: list[_TrialState] = []
    for row, (index, plan) in enumerate(group):
        workload = get_workload(plan.workload)
        stack = build_stack(plan, cache)
        workload.start(stack, plan)
        states.append(
            _TrialState(
                index=index,
                row=row,
                plan=plan,
                workload=workload,
                stack=stack,
                target=workload.target_slots(stack, plan),
            )
        )
    params = group[0][1].params
    # Sparse resolution (params.sparse; shared across the group via the
    # batch key) replaces the batched tensor reduction with per-trial
    # grid resolution — no (trials, n, n) stack is ever built, which is
    # the point: the O(n²) matrices are what sparse mode avoids.  The
    # channel is the arbiter, not the spec: below the spec's ``min_n``
    # crossover no resolver exists and the group stays on the batched
    # dense reduction (BENCH_sparse.json shows sparse losing at n=1000).
    sparse = states[0].stack.runtime.channel.sparse_active
    if sparse:
        dist_stack = gain_stack = None
    else:
        # One (trials, n, n) tensor each: a zero-stride view for the
        # common shared-deployment sweep, a byte-budget-guarded stack
        # for genuinely distinct deployments (see physics.batch_tensor).
        dist_stack = batch_tensor(
            [st.stack.runtime.channel.distances for st in states]
        )
        gain_stack = batch_tensor(
            [st.stack.runtime.channel.gains for st in states]
        )

    # One group shares one SINRParameters (the batch key), so either
    # every trial's channel carries an active stochastic model or none
    # does; each stochastic trial folds its own multipliers/fading into
    # its ragged block of the batched kernel's link_powers.
    stochastic = states[0].stack.runtime.channel.stochastic
    # Dynamic topology (mobility/churn) may differ per trial: each
    # channel advances its own provider at the top of its slot, and the
    # batch restacks its tensors whenever any trial's geometry moved.
    dynamic = any(
        st.stack.runtime.channel.dynamic_topology for st in states
    )

    results: dict[int, TrialResult] = {}
    empty_tx: dict[int, Any] = {}
    while True:
        live = []
        for st in states:
            if st.phase != "done":
                st.advance_phase()
                if st.phase == "done":
                    results[st.index] = st.result
                    continue
                live.append(st)
        if not live:
            return results
        # Phase 1 everywhere, then one batched physics reduction, then
        # phase 2 everywhere — per-trial adversaries, traces and
        # counters all run in their own channel's finalize.
        transmissions = [empty_tx] * len(states)
        tx_ids = [np.empty(0, dtype=np.intp)] * len(states)
        geometry_moved = False
        for st in live:
            st.stack.runtime._check_budget()
            if dynamic:
                # Epoch contract: topology changes land before this
                # slot's transmit decisions, exactly as in Runtime.step.
                geometry_moved |= st.stack.runtime.channel.advance_topology(
                    st.stack.runtime.slot
                )
            tx = st.stack.runtime.collect_transmissions()
            transmissions[st.row] = tx
            tx_ids[st.row] = st.stack.runtime.channel.validated_transmitters(
                tx
            )
        if geometry_moved and not sparse:
            dist_stack = batch_tensor(
                [st.stack.runtime.channel.distances for st in states]
            )
            gain_stack = batch_tensor(
                [st.stack.runtime.channel.gains for st in states]
            )
        if sparse:
            # Per-trial grid resolution in row order: each channel's
            # resolve_raw consumes its own fading stream exactly like
            # the dense block loop below, and empty rows resolve to {}.
            raws = [
                st.stack.runtime.channel.resolve_raw(tx_ids[st.row])
                for st in states
            ]
        else:
            link_powers = None
            if stochastic:
                blocks = [
                    st.stack.runtime.channel.slot_link_powers(
                        tx_ids[st.row]
                    )
                    for st in states
                    if tx_ids[st.row].size
                ]
                if blocks:
                    link_powers = np.concatenate(blocks)
            raws = successful_receptions_batch(
                params,
                dist_stack,
                tx_ids,
                gains=gain_stack,
                link_powers=link_powers,
            )
        for st in live:
            outcome = st.stack.runtime.channel.finalize_slot(
                transmissions[st.row], tx_ids[st.row], raws[st.row]
            )
            st.stack.runtime.deliver_outcome(outcome)
            st.steps += 1
            if st.phase == "extra":
                st.extra_left -= 1


def _batch_key(plan: TrialPlan, cache: ArtifactCache | None):
    points = resolve_deployment(plan.deployment, cache)
    return (len(points), plan.params)


def validate_plans(
    plans: Sequence[TrialPlan], policy: ExecutionPolicy
) -> None:
    """Raise early when a policy demand cannot be met by these plans.

    Policy-only constraints live in ``ExecutionPolicy.__post_init__``;
    this adds the plan-dependent one — ``vectorize=True`` demands every
    plan be columnar-eligible.  Called by :func:`run_trials` before any
    dispatch (so the caller gets the error synchronously, not as a pool
    failure) and again by :func:`execute_plans` inside workers.
    """
    if policy.vectorize is True:
        bad = [p.display_label for p in plans if not vector_eligible(p)]
        if bad:
            raise ValueError(
                "vectorize=True but these plans are not columnar-"
                f"eligible: {bad}"
            )


def execute_plans(
    plans: Sequence[TrialPlan],
    policy: ExecutionPolicy,
    cache: ArtifactCache | None = None,
    on_result: Callable[[int, TrialResult], None] | None = None,
) -> list[TrialResult]:
    """Execute a plan list in-process under a policy — the one funnel.

    Every entry point reaches the four executors through this function:
    :func:`run_trials` calls it directly for ``workers == 1``, the
    scheduler's pool workers call it for their shards, and the
    :mod:`repro.service` job server's workers call it for job shards.
    ``policy.workers`` is ignored here (sharding is the caller's job —
    see :func:`repro.service.scheduler.run_sharded`).

    ``on_result`` is invoked as ``on_result(index, result)`` once per
    plan, in plan-index order within each lockstep group, as groups
    complete — the streaming hook the service's per-trial progress
    rides.  Results are also returned as a list in plan order.
    """
    plan_list = list(plans)
    validate_plans(plan_list, policy)
    if not plan_list:
        return []
    if not policy.share_cache:
        # A private cold cache for this execution only: nothing read
        # from, nothing published to, the shared process-wide cache.
        cache = ArtifactCache()
    if policy.mode == "sequential":
        out = []
        for index, plan in enumerate(plan_list):
            result = run_trial(plan, cache)
            out.append(result)
            if on_result is not None:
                on_result(index, result)
        return out

    groups: dict[Any, list[tuple[int, TrialPlan]]] = {}
    for index, plan in enumerate(plan_list):
        # The columnar executor needs one MAC kernel and one client
        # population per batch, so eligible plans additionally group by
        # stack kind and workload; ineligible plans keep the pure
        # (n, params) key and run on the object executor.
        key = _batch_key(plan, cache)
        if policy.vectorize is not False and vector_eligible(plan):
            key = (
                *key,
                "vector",
                plan.stack,
                plan.workload,
                plan.record_physical,
            )
        groups.setdefault(key, []).append((index, plan))
    out: list[TrialResult | None] = [None] * len(plan_list)
    for key, group in groups.items():
        if "vector" in key:
            results = run_vector_group(
                group,
                cache,
                native=policy.native,
                native_threads=policy.native_threads,
            )
        else:
            results = _run_lockstep(group, cache)
        for index in sorted(results):
            out[index] = results[index]
            if on_result is not None:
                on_result(index, results[index])
    return out  # type: ignore[return-value]


def run_trials(
    plans: Iterable[TrialPlan],
    policy: ExecutionPolicy | None = None,
    *,
    cache: ArtifactCache | None = None,
    mode: object = UNSET,
    workers: object = UNSET,
    vectorize: object = UNSET,
    native: object = UNSET,
) -> list[TrialResult]:
    """Run many plans; results come back in plan order.

    ``policy`` (an :class:`~repro.experiments.policy.ExecutionPolicy`)
    says *how*: execution mode, process-level sharding, columnar
    fast-path and native-backend selection, artifact-cache sharing.
    ``None`` is the default policy (batched, one process, auto-selected
    fast paths).  A policy never changes results — all four executors
    are bit-identical by contract, so equal plans yield dataclass-equal
    results under every policy.

    ``run_trials`` is a thin client of the scheduler path: a
    single-worker policy executes in-process through
    :func:`execute_plans`, and ``policy.workers > 1`` shards the plan
    list into contiguous trial batches over the same worker-pool
    machinery the :mod:`repro.service` job server runs
    (:func:`repro.service.scheduler.run_sharded`), so both entry
    points reach the executors identically.

    The legacy ``mode=`` / ``workers=`` / ``vectorize=`` / ``native=``
    keyword arguments keep working through a deprecation shim that
    warns once per process and builds the equivalent policy; see
    :class:`~repro.experiments.policy.ExecutionPolicy` for each field's
    semantics.
    """
    policy = resolve_policy(
        policy, mode=mode, workers=workers, vectorize=vectorize, native=native
    )
    plan_list = list(plans)
    validate_plans(plan_list, policy)
    if not plan_list:
        return []
    if policy.workers > 1 and len(plan_list) > 1:
        # Lazy import: repro.service.scheduler imports this module for
        # execute_plans, so importing it eagerly would close a cycle.
        from repro.service.scheduler import run_sharded

        return run_sharded(plan_list, policy)
    return execute_plans(plan_list, policy, cache)
