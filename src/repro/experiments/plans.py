"""Trial plans and results: the experiment engine's declarative API.

A :class:`TrialPlan` is a frozen, hashable, picklable description of one
simulation trial — which deployment, which MAC stack, which workload,
which seed.  Declarative plans are what make the engine's three
superpowers possible:

* **memoization** — two plans over the same deployment share every
  deployment-derived artifact (distance/gain matrices, connectivity
  graphs, metrics) through the keyed cache in
  :mod:`repro.experiments.cache`;
* **batching** — plans with the same node count and physical parameters
  run in lockstep, their per-slot SINR physics resolved as one
  ``(trials, n, n)`` tensor reduction;
* **distribution** — plans pickle cleanly, so independent batches can be
  shipped to a process pool with bit-reproducible results.

A :class:`TrialResult` is the frozen record of one finished trial; equal
seeds must yield equal results whatever execution mode produced them,
and the dataclass equality of :class:`TrialResult` is exactly that
bit-identity check.
"""

from __future__ import annotations

import inspect
import statistics
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

import numpy as np

import repro.geometry.deployment as deployment_mod
from repro.core.ack_protocol import AckConfig
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.decay import DecayConfig
from repro.geometry.points import PointSet
from repro.sinr.channel import GrayZoneAdversary, JammingAdversary
from repro.sinr.params import SINRParameters
from repro.topology import TopologyProvider

__all__ = [
    "AdversarySpec",
    "DeploymentSpec",
    "TrialPlan",
    "TrialResult",
    "seeded_plans",
]

_EXPLICIT = "__explicit__"

STACKS = ("combined", "ack", "approg", "decay")


def _pack(kwargs: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class DeploymentSpec:
    """A reproducible, hashable recipe for a :class:`PointSet`.

    ``kind`` names a generator in :mod:`repro.geometry.deployment`
    (e.g. ``"uniform_disk"``) and ``options`` carries its keyword
    arguments as a sorted tuple of pairs; or ``kind`` is the sentinel
    ``"__explicit__"`` and ``options`` embeds raw coordinates (built via
    :meth:`explicit`).  The ``(kind, options)`` pair is the spec's cache
    key: identical specs resolve to one shared, memoized PointSet.
    """

    kind: str
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, kind: str, **kwargs: Any) -> "DeploymentSpec":
        """Spec for a named generator, e.g. ``of("uniform_disk", n=16, ...)``.

        Stochastic generators (those taking a ``seed``) must be given an
        explicit integer seed: a spec is a *reproducible* recipe and its
        ``(kind, options)`` pair is a cache key, so an OS-entropy draw
        would be silently shared by every plan naming the spec (and
        differ across pool workers), breaking the engine's
        seed-is-the-only-randomness contract.
        """
        generator = getattr(deployment_mod, kind, None)
        if generator is None or not callable(generator):
            raise ValueError(f"unknown deployment generator {kind!r}")
        if "seed" in inspect.signature(generator).parameters and not isinstance(
            kwargs.get("seed"), int
        ):
            raise ValueError(
                f"deployment generator {kind!r} is stochastic; pass an "
                "explicit integer seed so the spec is reproducible"
            )
        return cls(kind=kind, options=_pack(kwargs))

    @classmethod
    def explicit(cls, points: PointSet) -> "DeploymentSpec":
        """Spec wrapping concrete coordinates (keyed by their exact bytes)."""
        return cls(
            kind=_EXPLICIT,
            options=(
                ("coords", points.coords.tobytes()),
                ("n", len(points)),
                ("name", points.name),
            ),
        )

    def build(self) -> PointSet:
        """Materialize the PointSet (uncached; see cache.resolve_deployment)."""
        opts = dict(self.options)
        if self.kind == _EXPLICIT:
            coords = np.frombuffer(
                opts["coords"], dtype=np.float64
            ).reshape(opts["n"], 2)
            return PointSet(coords.copy(), name=opts["name"])
        generator = getattr(deployment_mod, self.kind, None)
        if generator is None or not callable(generator):
            raise ValueError(f"unknown deployment generator {self.kind!r}")
        return generator(**opts)


_ADVERSARY_KINDS = ("jamming", "gray_zone")


@dataclass(frozen=True)
class AdversarySpec:
    """A reproducible, hashable recipe for a failure injector.

    Adversaries used to be constructed imperatively and handed to the
    harness builders; a spec makes them *plan-level* configuration, so
    failure-injection sweeps batch, pickle to pool workers, and ride
    the columnar fast path (whose adversary delivery goes through the
    same :meth:`~repro.sinr.channel.Channel.finalize_slot`) with
    dataclass-equal results.

    Attributes
    ----------
    kind:
        ``"jamming"`` (:class:`~repro.sinr.channel.JammingAdversary`:
        i.i.d. erasures + jammed slots) or ``"gray_zone"``
        (:class:`~repro.sinr.channel.GrayZoneAdversary`: dual-graph
        unreliability outside G_{1-ε}, built on the deployment's cached
        strong graph).
    drop_probability / jam_slots:
        Jamming parameters (ignored for gray_zone).
    gray_drop:
        Gray-zone erasure probability (ignored for jamming).
    seed:
        Adversary stream seed; each trial's injector draws from
        ``SeedSequence([seed, trial seed])``, so per-trial streams are
        independent yet a pure function of the plan.
    """

    kind: str = "jamming"
    drop_probability: float = 0.0
    jam_slots: tuple[int, ...] = ()
    gray_drop: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _ADVERSARY_KINDS:
            raise ValueError(
                f"unknown adversary kind {self.kind!r}; "
                f"expected one of {_ADVERSARY_KINDS}"
            )
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 <= self.gray_drop <= 1.0:
            raise ValueError("gray_drop must be in [0, 1]")

    def build(
        self, graph, trial_seed: int
    ) -> JammingAdversary | GrayZoneAdversary:
        """Fresh per-trial injector (``graph`` is the deployment's
        G_{1-ε}, only read by the gray-zone kind)."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(trial_seed)])
        )
        if self.kind == "jamming":
            return JammingAdversary(
                drop_probability=self.drop_probability,
                jam_slots=set(self.jam_slots),
                rng=rng,
            )
        return GrayZoneAdversary(graph, gray_drop=self.gray_drop, rng=rng)


@dataclass(frozen=True)
class TrialPlan:
    """One trial, fully described.

    Attributes
    ----------
    deployment:
        Where the nodes are.
    stack:
        Which MAC population runs: ``"combined"`` (Algorithm 11.1),
        ``"ack"`` (B.1), ``"approg"`` (9.1) or ``"decay"``.
    workload:
        Name of a registered workload (see
        :mod:`repro.experiments.workloads`): what the nodes do and when
        the trial is finished.
    seed:
        Master seed for all node randomness — the *only* source of
        nondeterminism, so equal plans yield equal results in any
        execution mode.  This includes the stochastic channel (below):
        fading draws derive from the same master seed through a
        dedicated channel stream.
    params:
        The physical constants (:class:`SINRParameters`).  Plans batch
        by ``(node count, params)``, so attaching a stochastic
        :class:`~repro.sinr.params.ChannelModel` — Rayleigh fading,
        log-normal shadowing, heterogeneous transmit power — groups
        fading trials into their own lockstep batches automatically
        (and keeps them off deterministic ones); columnar-eligible
        stacks ride the fast path with the model active, bit-identical
        to the object runtime.
    broadcasters:
        Which nodes inject broadcasts (None = all), for workloads that
        read it.
    record_physical:
        When True (default), every physical transmit/receive lands in
        the trace (needed by the progress measurements and the spec
        checker).  False is the production-throughput mode: only
        MAC-level events (bcast/rcv/ack) are traced, so
        ``approg_latencies`` comes back empty while acknowledgment
        metrics and channel counters stay exact.  Either way both
        engine executors produce bit-identical results.
    options:
        Workload-specific knobs as a sorted tuple of pairs (build with
        :meth:`pack_options`): ``source``/``payload`` for smb,
        ``arrivals`` for mmb, ``waves`` for consensus,
        ``slots``/``epochs`` for fixed_slots.
    topology:
        Optional dynamic-topology provider (:mod:`repro.topology`):
        mobility and/or churn advancing at epoch boundaries, identical
        on all three executors.  None (or any provider whose
        ``is_dynamic`` is False) is the frozen-geometry default,
        byte-identical to pre-topology runs.  The artifact cache keys
        ignore it — graphs/metrics stay defined by the initial
        deployment, and per-epoch geometry has its own keyed memo — so
        a topology sweep shares the static artifacts with every other
        plan over the same deployment.
    adversary:
        Optional failure-injection recipe (:class:`AdversarySpec`);
        None is the reliable channel.
    ack_config / approg_config / decay_config:
        Explicit protocol configs; None derives the paper-formula
        defaults from the deployment's measured Λ (exactly like the
        harness builders).
    """

    deployment: DeploymentSpec
    stack: str = "combined"
    workload: str = "local_broadcast"
    seed: int = 0
    params: SINRParameters = field(default_factory=SINRParameters)
    broadcasters: tuple[int, ...] | None = None
    eps_ack: float = 0.1
    eps_approg: float = 0.1
    max_slots: int = 2_000_000
    extra_slots: int = 0
    record_physical: bool = True
    options: tuple[tuple[str, Any], ...] = ()
    topology: TopologyProvider | None = None
    adversary: AdversarySpec | None = None
    ack_config: AckConfig | None = None
    approg_config: ApproxProgressConfig | None = None
    decay_config: DecayConfig | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.stack not in STACKS:
            raise ValueError(
                f"unknown stack {self.stack!r}; expected one of {STACKS}"
            )
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if self.extra_slots < 0:
            raise ValueError("extra_slots must be >= 0")
        if self.topology is not None and not isinstance(
            self.topology, TopologyProvider
        ):
            raise TypeError(
                f"topology must be a TopologyProvider; got {self.topology!r}"
            )
        if self.adversary is not None and not isinstance(
            self.adversary, AdversarySpec
        ):
            raise TypeError(
                f"adversary must be an AdversarySpec; got {self.adversary!r}"
            )

    @staticmethod
    def pack_options(**kwargs: Any) -> tuple[tuple[str, Any], ...]:
        """Normalize workload knobs into the hashable ``options`` form."""
        return _pack(kwargs)

    def option(self, name: str, default: Any = None) -> Any:
        """Read one workload knob (``default`` when absent)."""
        for key, value in self.options:
            if key == name:
                return value
        return default

    @property
    def display_label(self) -> str:
        """The plan's label, or a compact synthesized one."""
        if self.label:
            return self.label
        return f"{self.stack}/{self.workload}/seed={self.seed}"


def seeded_plans(plan: TrialPlan, seeds: Sequence[int]) -> list[TrialPlan]:
    """Replicate one plan across many seeds (the multi-trial axis).

    Pair with :func:`repro.simulation.rng.spawn_trial_seeds` to derive
    the seed list deterministically from one master seed.
    """
    stem = plan.label or f"{plan.stack}/{plan.workload}"
    return [
        replace(plan, seed=int(seed), label=f"{stem}#t{index}")
        for index, seed in enumerate(seeds)
    ]


@dataclass(frozen=True)
class TrialResult:
    """The frozen record of one finished trial.

    Dataclass equality is the engine's bit-identity contract: a plan run
    sequentially, in a lockstep batch, or on a pool worker must produce
    an ``==`` result.  All fields are plain hashable values so results
    pickle cleanly and compare exactly.

    ``extra`` holds workload-specific metrics (e.g. ``completion`` for
    global broadcast, ``agreed``/``decided_value`` for consensus) as a
    sorted tuple of pairs; read them with :meth:`extra_value`.
    """

    label: str
    seed: int
    n: int
    degree: int
    degree_tilde: int
    diameter: int | None
    diameter_tilde: int | None
    lam: float
    slots: int
    broadcasts: int
    ack_latencies: tuple[int, ...]
    ack_completeness: float
    approg_latencies: tuple[int, ...]
    approg_episodes: int
    transmissions: int
    receptions: int
    extra: tuple[tuple[str, Any], ...] = ()

    def extra_value(self, name: str, default: Any = None) -> Any:
        """Read one workload metric (``default`` when absent)."""
        for key, value in self.extra:
            if key == name:
                return value
        return default

    @property
    def completion(self) -> int | None:
        """Slot at which the workload's finish condition was observed."""
        return self.extra_value("completion")

    @property
    def ack_mean_latency(self) -> float | None:
        """Mean acknowledgment latency (None when nothing was acked)."""
        if not self.ack_latencies:
            return None
        return sum(self.ack_latencies) / len(self.ack_latencies)

    @property
    def ack_max_latency(self) -> int | None:
        """Worst acknowledgment latency (None when nothing was acked)."""
        return max(self.ack_latencies) if self.ack_latencies else None

    @property
    def approg_median_latency(self) -> float | int | None:
        """Median approximate-progress latency (None without episodes).

        ``statistics.median`` semantics (an int for odd counts), so
        report tables match the pre-engine benchmark output exactly.
        """
        if not self.approg_latencies:
            return None
        return statistics.median(self.approg_latencies)

    @property
    def approg_satisfied(self) -> int:
        """Episodes that reached approximate progress within the run."""
        return len(self.approg_latencies)
