"""Keyed memoization of deployment-derived artifacts.

Every trial over a deployment re-derives the same expensive objects: the
pairwise-distance matrix, the uniform-power gain matrix ``P / d^α``, the
connectivity graphs G_{1-ε} / G_{1-2ε}, and the network metrics (Δ, D,
Λ) that parameterize every bound.  A multi-trial sweep (dozens of seeds
over one deployment) used to pay that cost per trial; the
:class:`ArtifactCache` pays it once and shares the artifacts across
trials, execution modes, and the sequential harness builders.

Cache keys
----------
* A :class:`~repro.experiments.plans.DeploymentSpec` is keyed by its
  ``(kind, options)`` pair — two specs with equal generator name and
  arguments resolve to one shared PointSet.
* Artifacts are keyed by ``(coords.tobytes(), SINRParameters)`` — the
  *exact bytes* of the coordinate array plus the physical parameters.
  Mutating a deployment (any coordinate change, however produced) gives
  a different key, so stale artifacts can never be served; the cached
  numpy arrays are additionally frozen read-only so accidental in-place
  mutation of a shared artifact raises instead of corrupting the cache.

The cache is bounded LRU on both maps; the module-level
:data:`GLOBAL_CACHE` serves the harness and engine defaults, and
worker processes each grow their own (artifact arrays are cheaper to
recompute in the worker than to pickle across the fork for every task).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

import networkx as nx
import numpy as np

from repro.analysis.metrics import NetworkMetrics, metrics_from_graphs
from repro.experiments.plans import DeploymentSpec
from repro.geometry.points import PointSet, pairwise_distances
from repro.sinr.graphs import (
    approx_connectivity_graph,
    strong_connectivity_graph,
)
from repro.sinr.params import SINRParameters
from repro.sinr.physics import gain_matrix
from repro.sinr.sparse import SparseResolver

__all__ = [
    "DeploymentArtifacts",
    "ArtifactCache",
    "GLOBAL_CACHE",
    "deployment_artifacts",
    "geometry_artifacts",
    "sparse_resolver",
    "resolve_deployment",
]


def _dense_params(params: SINRParameters) -> SINRParameters:
    """Strip the per-trial/per-resolver configuration from a cache key.

    Every dense artifact — distances, base gains, graphs, metrics — is
    defined by the deterministic constants alone: a fading sweep or a
    sparse-resolution sweep over one deployment shares one entry
    (per-trial multipliers live on the per-trial Channel; the sparse
    grids have their own keyed memo below).
    """
    if params.channel_model is None and params.sparse is None:
        return params
    return replace(params, channel_model=None, sparse=None)


@dataclass(frozen=True)
class DeploymentArtifacts:
    """Everything derivable from (deployment, params) alone.

    Attributes
    ----------
    distances:
        ``(n, n)`` pairwise-distance matrix (read-only).
    gains:
        ``(n, n)`` uniform-power link gains ``P / d^α`` (read-only) —
        the per-slot SINR kernels take these instead of re-evaluating
        the power law every slot.
    graph / approx_graph:
        G_{1-ε} and G_{1-2ε} = G̃.
    metrics:
        The paper's parameters (n, Δ, D, Λ) for this deployment.
    """

    points: PointSet
    params: SINRParameters
    distances: np.ndarray
    gains: np.ndarray
    graph: nx.Graph
    approx_graph: nx.Graph
    metrics: NetworkMetrics


class ArtifactCache:
    """Bounded LRU cache for deployments and their derived artifacts."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._points: OrderedDict[tuple, PointSet] = OrderedDict()
        self._artifacts: OrderedDict[tuple, DeploymentArtifacts] = (
            OrderedDict()
        )
        self._geometry: OrderedDict[
            tuple, tuple[np.ndarray, np.ndarray]
        ] = OrderedDict()
        self._sparse: OrderedDict[tuple, SparseResolver] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- deployments -----------------------------------------------------

    def resolve(self, spec: DeploymentSpec) -> PointSet:
        """Materialize a spec, memoized on its ``(kind, options)`` key."""
        key = (spec.kind, spec.options)
        cached = self._points.get(key)
        if cached is not None:
            self._points.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        points = spec.build()
        self._points[key] = points
        while len(self._points) > self.maxsize:
            self._points.popitem(last=False)
        return points

    # -- derived artifacts -----------------------------------------------

    def artifacts(
        self, points: PointSet, params: SINRParameters
    ) -> DeploymentArtifacts:
        """Distances, gains, graphs and metrics for one deployment.

        Keyed by the exact coordinate bytes + params, so any mutation of
        the deployment produces a fresh entry rather than a stale hit.
        A stochastic ``channel_model`` and a ``sparse`` resolution spec
        are stripped from the key (and the stored params): every
        artifact here — distances, base gains, graphs, metrics — is
        defined by the deterministic constants alone, so a fading or
        sparse-resolution sweep over one deployment shares one entry
        (per-trial multipliers live on the per-trial
        :class:`~repro.sinr.channel.Channel`, sparse grids in the
        :meth:`sparse_resolver` memo).
        """
        params = _dense_params(params)
        key = (points.coords.tobytes(), params)
        cached = self._artifacts.get(key)
        if cached is not None:
            self._artifacts.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        distances = pairwise_distances(points.coords)
        gains = gain_matrix(params, distances)
        distances.setflags(write=False)
        gains.setflags(write=False)
        strong = strong_connectivity_graph(points, params)
        approx = approx_connectivity_graph(points, params)
        built = DeploymentArtifacts(
            points=points,
            params=params,
            distances=distances,
            gains=gains,
            graph=strong,
            approx_graph=approx,
            metrics=metrics_from_graphs(len(points), strong, approx),
        )
        self._artifacts[key] = built
        while len(self._artifacts) > self.maxsize:
            self._artifacts.popitem(last=False)
        return built

    # -- per-epoch geometry ----------------------------------------------

    def geometry(
        self, points: PointSet, params: SINRParameters
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances and gains alone — the epoch-refresh artifact.

        Dynamic-topology runs (:mod:`repro.topology`) re-derive the
        distance and gain matrices at every mobility epoch; the graphs
        and metrics of the full :meth:`artifacts` entry stay defined by
        the *initial* deployment (the measurement contract), so epochs
        need only this cheap pair.  Keyed exactly like :meth:`artifacts`
        — coordinate bytes + deterministic params — which gives two
        kinds of sharing for free: epochs whose coordinates equal the
        initial deployment (static segments, zero-speed pauses) are
        served from the full-artifact entry itself, and trials sharing
        one provider trajectory (the default: providers carry their own
        seed) share each epoch's matrices across the whole sweep, so
        the batched executors' tensor stacks collapse to zero-stride
        views again.
        """
        params = _dense_params(params)
        key = (points.coords.tobytes(), params)
        full = self._artifacts.get(key)
        if full is not None:
            self.hits += 1
            return full.distances, full.gains
        cached = self._geometry.get(key)
        if cached is not None:
            self._geometry.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        distances = pairwise_distances(points.coords)
        gains = gain_matrix(params, distances)
        distances.setflags(write=False)
        gains.setflags(write=False)
        self._geometry[key] = (distances, gains)
        while len(self._geometry) > self.maxsize:
            self._geometry.popitem(last=False)
        return distances, gains

    # -- sparse resolvers ------------------------------------------------

    def sparse_resolver(
        self, points: PointSet, params: SINRParameters
    ) -> SparseResolver:
        """Memoized :class:`~repro.sinr.sparse.SparseResolver`.

        Keyed by coordinate bytes + params with the channel model
        stripped but the ``sparse`` spec *kept* — the grid and its
        thresholds depend on mode/ε/cell size, so differing specs get
        their own resolver while a fading sweep over one spec shares
        it.  Dynamic-topology epochs call this per geometry change;
        trials sharing a provider trajectory share each epoch's grid
        exactly like the dense :meth:`geometry` pairs.
        """
        if params.sparse is None:
            raise ValueError(
                "params.sparse must be set to resolve a sparse grid"
            )
        key_params = (
            params
            if params.channel_model is None
            else replace(params, channel_model=None)
        )
        key = (points.coords.tobytes(), key_params)
        cached = self._sparse.get(key)
        if cached is not None:
            self._sparse.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        built = SparseResolver(points, params)
        self._sparse[key] = built
        while len(self._sparse) > self.maxsize:
            self._sparse.popitem(last=False)
        return built

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._points.clear()
        self._artifacts.clear()
        self._geometry.clear()
        self._sparse.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for tests and benchmark reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "points_entries": len(self._points),
            "artifact_entries": len(self._artifacts),
            "geometry_entries": len(self._geometry),
            "sparse_entries": len(self._sparse),
        }


GLOBAL_CACHE = ArtifactCache()


def deployment_artifacts(
    points: PointSet,
    params: SINRParameters,
    cache: ArtifactCache | None = None,
) -> DeploymentArtifacts:
    """Memoized artifacts from the given (or global) cache."""
    return (cache or GLOBAL_CACHE).artifacts(points, params)


def geometry_artifacts(
    points: PointSet,
    params: SINRParameters,
    cache: ArtifactCache | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized (distances, gains) for one epoch's coordinates."""
    return (cache or GLOBAL_CACHE).geometry(points, params)


def sparse_resolver(
    points: PointSet,
    params: SINRParameters,
    cache: ArtifactCache | None = None,
) -> SparseResolver:
    """Memoized sparse-grid resolver for one (deployment, params)."""
    return (cache or GLOBAL_CACHE).sparse_resolver(points, params)


def resolve_deployment(
    spec: DeploymentSpec, cache: ArtifactCache | None = None
) -> PointSet:
    """Memoized PointSet for a spec from the given (or global) cache."""
    return (cache or GLOBAL_CACHE).resolve(spec)
