"""Workload definitions: what a trial's nodes do, and when it is done.

A :class:`Workload` is the engine-schedulable form of an experiment
script.  The legacy harness drove each experiment imperatively
(``bcast(...)`` then ``runtime.run_until(pred)``); a workload factors
that same script into hooks the engine can drive one slot at a time, so
many trials can advance in lockstep while each keeps its own stopping
rule:

* :meth:`client_factory` — optional per-node MAC clients (protocol
  state machines such as BSMB relays);
* :meth:`start` — inject the initial broadcasts / wakeups;
* :meth:`done` — the finish predicate, evaluated every ``check_every``
  slots *exactly like the legacy ``run_until`` cadence*, so completion
  slots match the sequential harness bit-for-bit;
* :meth:`target_slots` — alternatively, a fixed slot budget (epoch
  sweeps), in which case :meth:`done` is never consulted;
* :meth:`finalize` — workload-specific metrics for the
  :class:`~repro.experiments.plans.TrialResult`.

Workload instances are stateless singletons in a name registry —
:class:`~repro.experiments.plans.TrialPlan` refers to them by name so
plans stay picklable for the process-pool executor; per-trial state
lives in the stack's clients, never on the workload.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.absmac.layer import MacClient
from repro.protocols.bmmb import BmmbClient
from repro.protocols.bsmb import BsmbClient
from repro.protocols.consensus import ConsensusClient

__all__ = [
    "Workload",
    "LocalBroadcastWorkload",
    "FixedSlotsWorkload",
    "SmbWorkload",
    "MmbWorkload",
    "ConsensusWorkload",
    "consensus_outcome",
    "register",
    "get_workload",
    "workload_names",
]


def consensus_outcome(
    decisions: tuple[tuple[int, int | None], ...], completion: int
) -> dict[str, Any]:
    """The consensus workload's result metrics from (node, decision)
    pairs — single source of truth for the object path and the
    columnar client population
    (:class:`~repro.vectorized.protocols.ConsensusClients`), whose
    ``extra`` tuples must stay dataclass-equal."""
    values = {decision for _, decision in decisions}
    return {
        "completion": completion,
        "decisions": decisions,
        "agreed": len(values) <= 1,
        "decided_value": values.pop() if len(values) == 1 else None,
    }


class Workload:
    """Base workload: hooks the engine drives, documented above.

    A workload may additionally opt into the columnar fast path
    (:mod:`repro.vectorized`) by implementing the ``vector_*`` hooks —
    array-state counterparts of ``start``/``done``/``target_slots``/
    ``finalize`` that read a :class:`~repro.vectorized.VectorRuntime`
    instead of a stack of MAC objects.  :meth:`vector_ready` gates the
    opt-in per plan; the default is False, which routes the plan to the
    object runtime.  Workloads whose clients are protocol state
    machines (BSMB relays, BMMB queues, consensus voters) return their
    columnar client population from :meth:`vector_clients`
    (:mod:`repro.vectorized.protocols`), which the engine installs on
    the batch's :class:`~repro.vectorized.protocols.VectorMacAdapter`.
    """

    name = "abstract"
    check_every = 16

    def client_factory(
        self, plan
    ) -> Callable[[int], MacClient] | None:
        """Optional per-node client factory (None = bare MacClient)."""
        return None

    def start(self, stack, plan) -> None:
        """Inject the workload's initial broadcasts / wakeups."""

    def done(self, stack, plan) -> bool:
        """Finish predicate, polled every ``check_every`` slots."""
        return True

    def target_slots(self, stack, plan) -> int | None:
        """Fixed slot budget, or None to poll :meth:`done` instead."""
        return None

    def finalize(self, stack, plan, completion: int) -> dict[str, Any]:
        """Workload-specific result metrics (must be hashable values)."""
        return {"completion": completion}

    # -- columnar fast-path hooks -----------------------------------------

    def vector_ready(self, plan) -> bool:
        """May this plan's workload phase run on the columnar runtime?"""
        return False

    def vector_clients(self, adapter, plans) -> Any | None:
        """Columnar client population for one batch (None = bare
        listeners).  ``plans`` lists the batch's plans in row order;
        ``adapter`` is the batch's MAC adapter, handed to the client
        kernel as its broadcast interface."""
        return None

    def vector_start(self, runtime, trial: int, plan) -> None:
        """Array-state :meth:`start`: inject broadcasts into one trial."""
        raise NotImplementedError(f"workload {self.name!r} is not columnar")

    def vector_done(self, runtime, trial: int, plan) -> bool:
        """Array-state :meth:`done` for one trial of the batch."""
        raise NotImplementedError(f"workload {self.name!r} is not columnar")

    def vector_target_slots(self, plan) -> int | None:
        """Array-state :meth:`target_slots` (stack-independent)."""
        return None

    def vector_finalize(
        self, runtime, trial: int, plan, completion: int
    ) -> dict[str, Any]:
        """Array-state :meth:`finalize`; must match the object path's
        metrics for every vector-eligible stack."""
        return {"completion": completion}

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def broadcasters(stack, plan) -> Iterable[int]:
        """The plan's broadcaster set (default: every node)."""
        if plan.broadcasters is None:
            return range(len(stack.macs))
        return plan.broadcasters

    @staticmethod
    def vector_broadcasters(runtime, plan) -> Iterable[int]:
        """:meth:`broadcasters` for the columnar runtime (same
        None-means-every-node rule, read off the lattice width)."""
        if plan.broadcasters is None:
            return range(runtime.n)
        return plan.broadcasters


class LocalBroadcastWorkload(Workload):
    """Every broadcaster bcasts once; done when all are acknowledged.

    The engine form of
    :func:`repro.analysis.harness.run_local_broadcast_experiment`
    (same payloads, same check cadence).  Pair with ``plan.extra_slots``
    to keep observing progress after the last ack.
    """

    name = "local_broadcast"
    check_every = 16

    def start(self, stack, plan) -> None:
        for node in self.broadcasters(stack, plan):
            stack.macs[node].bcast(payload=f"payload-{node}")

    def done(self, stack, plan) -> bool:
        return all(
            not stack.macs[node].busy
            for node in self.broadcasters(stack, plan)
        )

    def vector_ready(self, plan) -> bool:
        return True

    def vector_start(self, runtime, trial: int, plan) -> None:
        for node in self.vector_broadcasters(runtime, plan):
            runtime.bcast(trial, node, payload=f"payload-{node}")

    def vector_done(self, runtime, trial: int, plan) -> bool:
        broadcasters = (
            None if plan.broadcasters is None else plan.broadcasters
        )
        return not runtime.any_busy(trial, broadcasters)


class FixedSlotsWorkload(Workload):
    """Saturate with broadcasts and run a fixed slot budget.

    For layers that never acknowledge (the standalone Algorithm 9.1
    stack): every broadcaster bcasts once and the trial runs exactly
    ``slots`` slots (option), or ``epochs`` epochs of the stack's
    schedule when the MAC exposes one (option, default 1 epoch).
    """

    name = "fixed_slots"
    check_every = 1

    def start(self, stack, plan) -> None:
        for node in self.broadcasters(stack, plan):
            stack.macs[node].bcast(payload=f"m{node}")

    def target_slots(self, stack, plan) -> int:
        slots = plan.option("slots")
        if slots is not None:
            return int(slots)
        schedule = getattr(stack.macs[0], "schedule", None)
        if schedule is None:
            raise ValueError(
                "fixed_slots needs a 'slots' option for stacks without "
                "an epoch schedule"
            )
        return int(plan.option("epochs", 1)) * schedule.epoch_slots

    def finalize(self, stack, plan, completion: int) -> dict[str, Any]:
        out = {"completion": completion}
        schedule = getattr(stack.macs[0], "schedule", None)
        if schedule is not None:
            out["epoch_slots"] = schedule.epoch_slots
        return out

    def vector_ready(self, plan) -> bool:
        # Epoch-schedule budgets need a materialized MAC stack; only
        # explicit slot budgets are columnar (the Decay/Ack case — the
        # vector-eligible stacks have no epoch schedule, so the object
        # path's finalize adds no epoch_slots either).
        return plan.option("slots") is not None

    def vector_start(self, runtime, trial: int, plan) -> None:
        for node in self.vector_broadcasters(runtime, plan):
            runtime.bcast(trial, node, payload=f"m{node}")

    def vector_done(self, runtime, trial: int, plan) -> bool:
        return True  # unreachable: the fixed target drives completion

    def vector_target_slots(self, plan) -> int | None:
        return int(plan.option("slots"))

    def vector_finalize(
        self, runtime, trial: int, plan, completion: int
    ) -> dict[str, Any]:
        # The object path adds epoch_slots only for stacks exposing an
        # epoch schedule, and vector_ready admits only explicit slot
        # budgets — whose stacks have none.  So the columnar metrics
        # are exactly the completion, matching finalize() bit-for-bit
        # on every vector-eligible plan.
        return {"completion": completion}


class SmbWorkload(Workload):
    """Single-message broadcast (BSMB of [37], Theorem 12.7).

    Options: ``source`` (default 0), ``payload``.  Done when every node
    delivered the message; the completion slot matches
    :func:`repro.protocols.bsmb.run_single_message_broadcast`.
    """

    name = "smb"
    check_every = 32

    def client_factory(self, plan):
        return lambda i: BsmbClient()

    def start(self, stack, plan) -> None:
        source = int(plan.option("source", 0))
        payload = plan.option("payload", "smb-message")
        stack.clients[source].start_as_source(stack.macs[source], payload)

    def done(self, stack, plan) -> bool:
        return all(client.done for client in stack.clients)

    def vector_ready(self, plan) -> bool:
        return True

    def vector_clients(self, adapter, plans):
        from repro.vectorized.protocols import BsmbClients

        return BsmbClients(adapter)

    def vector_start(self, runtime, trial: int, plan) -> None:
        source = int(plan.option("source", 0))
        payload = plan.option("payload", "smb-message")
        runtime.adapter.client.start_as_source(trial, source, payload)

    def vector_done(self, runtime, trial: int, plan) -> bool:
        return runtime.adapter.client.done(trial)


class MmbWorkload(Workload):
    """Multi-message broadcast (BMMB of [37], Theorem 12.7).

    Option ``arrivals``: tuple of ``(node, (token, ...))`` pairs — the
    one-shot k-message arrival pattern of §4.5.  Done when every node
    delivered every token; matches
    :func:`repro.protocols.bmmb.run_multi_message_broadcast`.
    """

    name = "mmb"
    check_every = 32

    def client_factory(self, plan):
        return lambda i: BmmbClient()

    @staticmethod
    def _arrivals(plan) -> tuple[tuple[int, tuple[Any, ...]], ...]:
        arrivals = plan.option("arrivals")
        if not arrivals:
            raise ValueError("mmb workload needs an 'arrivals' option")
        return arrivals

    @staticmethod
    def _tokens(arrivals) -> list[Any]:
        tokens: list[Any] = []
        for _node, batch in arrivals:
            for token in batch:
                if token in tokens:
                    raise ValueError(f"duplicate message token {token!r}")
                tokens.append(token)
        return tokens

    def start(self, stack, plan) -> None:
        arrivals = self._arrivals(plan)
        self._tokens(arrivals)  # validate uniqueness up front
        for node, batch in arrivals:
            stack.macs[node].wake()
            for token in batch:
                stack.clients[node].arrive(token, slot=stack.runtime.slot)

    def done(self, stack, plan) -> bool:
        tokens = self._tokens(self._arrivals(plan))
        return all(client.has_all(tokens) for client in stack.clients)

    def vector_ready(self, plan) -> bool:
        return True

    def vector_clients(self, adapter, plans):
        from repro.vectorized.protocols import BmmbClients

        return BmmbClients(
            adapter,
            [self._tokens(self._arrivals(plan)) for plan in plans],
        )

    def vector_start(self, runtime, trial: int, plan) -> None:
        client = runtime.adapter.client
        for node, batch in self._arrivals(plan):
            runtime.wake_node(trial, node)
            for token in batch:
                client.arrive(trial, node, token)

    def vector_done(self, runtime, trial: int, plan) -> bool:
        return runtime.adapter.client.done(trial)


class ConsensusWorkload(Workload):
    """Flood-based consensus (Corollary 5.5 after [44]).

    Options: ``waves`` (required; callers use ``2·D_bound + 2``) and
    ``values`` (per-node binary inputs as a tuple; default parity
    ``i % 2``).  Done when every node decided; matches
    :func:`repro.protocols.consensus.run_consensus`.
    """

    name = "consensus"
    check_every = 32

    def client_factory(self, plan):
        waves = plan.option("waves")
        if waves is None:
            raise ValueError("consensus workload needs a 'waves' option")
        values = plan.option("values")

        def factory(i: int) -> ConsensusClient:
            value = (i % 2) if values is None else int(values[i])
            return ConsensusClient(i, value, waves=int(waves))

        return factory

    def start(self, stack, plan) -> None:
        for mac in stack.macs:
            mac.wake()  # consensus starts with every node participating

    def done(self, stack, plan) -> bool:
        return all(client.decided for client in stack.clients)

    def finalize(self, stack, plan, completion: int) -> dict[str, Any]:
        decisions = tuple(
            (client.node_id, client.decision) for client in stack.clients
        )
        return consensus_outcome(decisions, completion)

    @staticmethod
    def _trial_inputs(plan, n: int) -> tuple[int, list[int]]:
        waves = plan.option("waves")
        if waves is None:
            raise ValueError("consensus workload needs a 'waves' option")
        values = plan.option("values")
        inputs = [
            (i % 2) if values is None else int(values[i]) for i in range(n)
        ]
        return int(waves), inputs

    def vector_ready(self, plan) -> bool:
        return True

    def vector_clients(self, adapter, plans):
        from repro.vectorized.protocols import ConsensusClients

        n = adapter.runtime.n
        per_trial = [self._trial_inputs(plan, n) for plan in plans]
        return ConsensusClients(
            adapter,
            waves=[waves for waves, _ in per_trial],
            values=[inputs for _, inputs in per_trial],
        )

    def vector_start(self, runtime, trial: int, plan) -> None:
        runtime.adapter.client.start(trial)

    def vector_done(self, runtime, trial: int, plan) -> bool:
        return runtime.adapter.client.done(trial)

    def vector_finalize(
        self, runtime, trial: int, plan, completion: int
    ) -> dict[str, Any]:
        return runtime.adapter.client.finalize(trial, completion)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the name registry (last registration wins)."""
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look a workload up by name (ValueError lists the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; registered: {workload_names()}"
        ) from None


def workload_names() -> tuple[str, ...]:
    """The registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


for _workload in (
    LocalBroadcastWorkload(),
    FixedSlotsWorkload(),
    SmbWorkload(),
    MmbWorkload(),
    ConsensusWorkload(),
):
    register(_workload)
