"""repro.experiments — the batched multi-trial experiment engine.

Declarative :class:`TrialPlan`\\ s run through :func:`run_trials`, which
memoizes deployment-derived artifacts in a keyed cache, fuses the
per-slot SINR physics of same-shape trials into one ``(trials, n, n)``
tensor reduction, and optionally distributes plan chunks over a process
pool — all three modes bit-identical to the legacy sequential harness.

Typical sweep::

    from repro.experiments import DeploymentSpec, TrialPlan, run_trials, seeded_plans
    from repro.simulation.rng import spawn_trial_seeds

    base = TrialPlan(
        deployment=DeploymentSpec.of("uniform_disk", n=16, radius=9.0, seed=1),
        stack="ack",
        workload="local_broadcast",
    )
    results = run_trials(seeded_plans(base, spawn_trial_seeds(32, seed=7)))
    print(sum(r.ack_mean_latency for r in results) / len(results))

See ``docs/architecture.md`` (section "The experiment engine") for the
execution model and cache-key design.
"""

from __future__ import annotations

from repro.experiments.cache import (
    GLOBAL_CACHE,
    ArtifactCache,
    DeploymentArtifacts,
    deployment_artifacts,
    geometry_artifacts,
    resolve_deployment,
)
from repro.experiments.plans import (
    AdversarySpec,
    DeploymentSpec,
    TrialPlan,
    TrialResult,
    seeded_plans,
)
from repro.experiments.policy import ExecutionPolicy, resolve_policy

__all__ = [
    "ArtifactCache",
    "DeploymentArtifacts",
    "GLOBAL_CACHE",
    "deployment_artifacts",
    "geometry_artifacts",
    "resolve_deployment",
    "AdversarySpec",
    "DeploymentSpec",
    "TrialPlan",
    "TrialResult",
    "seeded_plans",
    "ExecutionPolicy",
    "resolve_policy",
    "build_stack",
    "execute_plans",
    "run_trial",
    "run_trials",
    "Workload",
    "get_workload",
    "register",
    "workload_names",
]

# The engine and workload modules depend on repro.analysis.harness,
# which itself imports this package's cache — importing them eagerly
# here would close an import cycle.  PEP 562 lazy attributes keep
# ``from repro.experiments import run_trials`` working while leaving
# the cycle open.
_LAZY = {
    "build_stack": "repro.experiments.engine",
    "execute_plans": "repro.experiments.engine",
    "run_trial": "repro.experiments.engine",
    "run_trials": "repro.experiments.engine",
    "Workload": "repro.experiments.workloads",
    "get_workload": "repro.experiments.workloads",
    "register": "repro.experiments.workloads",
    "workload_names": "repro.experiments.workloads",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
