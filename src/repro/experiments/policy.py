"""Execution policy: *how* a plan sweep runs, as one frozen value.

:func:`~repro.experiments.engine.run_trials` grew its execution knobs
one PR at a time — ``mode`` (PR 1), ``workers`` (PR 1), ``vectorize``
(PR 2), ``native`` (PR 7) — and every new entry point (benchmarks,
examples, now the :mod:`repro.service` job server) had to thread the
whole sprawl through again.  :class:`ExecutionPolicy` collapses them
into a single frozen, hashable, picklable dataclass with exactly the
same semantics, so

* the in-process call (``run_trials(plans, policy)``), the pool-worker
  entry point, and the service wire format all carry *one* object —
  library and service can never drift;
* policies batch, pickle, and serialize like
  :class:`~repro.experiments.plans.TrialPlan` does (they ride the same
  JSON wire codec, :mod:`repro.service.wire`);
* a policy never changes results — every field selects an executor or
  a resource bound, and all executors are bit-identical by contract.

The legacy keyword arguments keep working through a deprecation shim
(:func:`resolve_policy`): ``run_trials(plans, mode=..., workers=...,
vectorize=..., native=...)`` warns once per process and builds the
equivalent policy, pinned dataclass-equal by
``tests/test_execution_policy.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

__all__ = ["ExecutionPolicy", "resolve_policy", "UNSET"]


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<unset>"


UNSET = _Unset()

_MODES = ("batched", "sequential")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How to execute a batch of :class:`TrialPlan`\\ s.

    Attributes
    ----------
    mode:
        ``"batched"`` (default: lockstep groups keyed by ``(node count,
        SINRParameters)``) or ``"sequential"`` (the legacy one-at-a-time
        path).
    workers:
        Process-level parallelism.  ``1`` runs in-process; ``> 1``
        shards the plan list into contiguous trial batches over the
        scheduler's worker pool (:mod:`repro.service.scheduler` — the
        same path the job server uses).
    vectorize:
        Columnar fast-path selection (:mod:`repro.vectorized`) inside
        batched mode: ``None`` auto-selects it for eligible plans,
        ``False`` pins the object lockstep executor, ``True`` demands
        the columnar executor and raises when a plan is ineligible.
    native:
        Backend selection *inside* the columnar executor
        (:mod:`repro.native`): ``None`` defers to ``REPRO_NATIVE`` and
        auto-detects the compiled kernel, ``False`` pins the pure-numpy
        reference, ``True`` demands the compiled kernel.
    native_threads:
        Kernel threads partitioning the trials axis inside the fused C
        slot loop.  ``None`` (default) defers to the
        ``REPRO_NATIVE_THREADS`` environment variable (itself defaulting
        to 1); an explicit count must be >= 1.  Like every other field
        this never changes results — threads share nothing but
        read-only gains and the equivalence suite pins bit-identity
        across counts — it only shapes wall-clock.
    share_cache:
        When True (default), execution uses the shared artifact cache
        (the caller-supplied one, or the process-wide
        :data:`~repro.experiments.cache.GLOBAL_CACHE`; service workers
        each keep a persistent per-process cache across shards and
        jobs).  ``False`` gives every execution a fresh private cache —
        cold-cache benchmarking and memory isolation for huge one-off
        deployments.

    None of these fields ever changes results: all four executors
    (sequential / batched object / columnar / native) are bit-identical
    by contract, so a policy is pure *execution* configuration and two
    runs of equal plans under different policies compare dataclass-equal.
    """

    mode: str = "batched"
    workers: int = 1
    vectorize: bool | None = None
    native: bool | None = None
    native_threads: int | None = None
    share_cache: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.native_threads is not None and self.native_threads < 1:
            raise ValueError("native_threads must be >= 1")
        if self.vectorize is True and self.mode == "sequential":
            raise ValueError(
                "vectorize=True demands the columnar executor, which "
                "only batched mode runs; drop vectorize or use "
                'mode="batched"'
            )

    def for_worker(self) -> "ExecutionPolicy":
        """The policy a single pool worker runs its shard under.

        Identical except ``workers=1`` — sharding happens once, at the
        scheduler; a worker must never recursively spawn its own pool.
        """
        if self.workers == 1:
            return self
        return replace(self, workers=1)

    def describe(self) -> str:
        """Compact one-line summary for logs and experiment reports."""
        parts = [self.mode]
        if self.workers != 1:
            parts.append(f"workers={self.workers}")
        if self.vectorize is not None:
            parts.append(f"vectorize={self.vectorize}")
        if self.native is not None:
            parts.append(f"native={self.native}")
        if self.native_threads is not None:
            parts.append(f"native-threads={self.native_threads}")
        if not self.share_cache:
            parts.append("private-cache")
        return "+".join(parts)


_LEGACY_WARNED = False


def _warn_legacy(names: list[str]) -> None:
    """Warn about legacy execution kwargs, once per process.

    One warning is enough to flag a codebase for migration; per-call
    warnings would swamp sweep scripts that call ``run_trials`` in a
    loop.  Tests reset the latch via
    ``monkeypatch.setattr(policy_module, "_LEGACY_WARNED", False)``.
    """
    global _LEGACY_WARNED
    if _LEGACY_WARNED:
        return
    _LEGACY_WARNED = True
    warnings.warn(
        f"run_trials({', '.join(f'{n}=' for n in names)}...) is "
        "deprecated; pass an ExecutionPolicy instead: "
        "run_trials(plans, ExecutionPolicy("
        + ", ".join(f"{n}=..." for n in names)
        + "))",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_policy(
    policy: ExecutionPolicy | None,
    *,
    mode: object = UNSET,
    workers: object = UNSET,
    vectorize: object = UNSET,
    native: object = UNSET,
) -> ExecutionPolicy:
    """Fold the legacy kwarg sprawl and the new ``policy=`` argument
    into one :class:`ExecutionPolicy`.

    Exactly one spelling may be used per call: passing any legacy kwarg
    *and* a policy raises ``TypeError`` (silently preferring one would
    mask bugs in half-migrated call sites).  Legacy kwargs emit one
    process-wide ``DeprecationWarning`` and build the equivalent
    policy, so both spellings funnel into the same execution path.
    """
    legacy = {
        name: value
        for name, value in (
            ("mode", mode),
            ("workers", workers),
            ("vectorize", vectorize),
            ("native", native),
        )
        if not isinstance(value, _Unset)
    }
    if legacy:
        if policy is not None:
            raise TypeError(
                "pass either policy= or the legacy execution kwargs "
                f"({', '.join(sorted(legacy))}), not both"
            )
        _warn_legacy(sorted(legacy))
        return ExecutionPolicy(**legacy)
    if policy is None:
        return ExecutionPolicy()
    if not isinstance(policy, ExecutionPolicy):
        raise TypeError(
            f"policy must be an ExecutionPolicy; got {policy!r}"
        )
    return policy
