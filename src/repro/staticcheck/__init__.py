"""reprolint — the repository's invariant analyzer.

Every claim this reproduction makes rests on invariants that no
off-the-shelf linter checks: four executors stay bit-identical only
while the RNG-stream contract holds (node streams ``0..n-1``, channel
stream child ``n``, provider-owned topology seeds — never an OS-entropy
or wall-clock draw); plans stay distributable only while every
dataclass reachable from :class:`~repro.experiments.plans.TrialPlan` is
frozen and registered on the service wire; the job server survives
worker crashes only while its lock discipline holds.  Runtime tests
catch violations after the fact — ``reprolint`` catches them at lint
time, before a single trial runs.

Five rule families (IDs catalogued in ``docs/invariants.md``):

* **determinism** (``D1xx``) — no ``np.random`` module-level functions,
  no stdlib ``random`` in ``src/``, no unseeded generator construction
  outside :mod:`repro.simulation.rng`, no wall-clock-derived seeds;
* **plan purity** (``P1xx``) — every dataclass reachable from
  ``TrialPlan`` / ``TrialResult`` / ``ExecutionPolicy`` field types is
  ``frozen=True`` and registered in
  :data:`repro.service.wire.WIRE_TYPES`;
* **concurrency** (``C1xx``) — no blocking calls inside ``with lock:``
  bodies in :mod:`repro.service`, no untimed queue gets, no mutable
  class-level state on service classes;
* **executor parity** (``X1xx``) — a workload overriding an object-path
  hook must override the matching ``vector_*`` hook (or carry an
  explicit ineligibility marker), so fast-path fallback is never
  silent;
* **registry exhaustiveness** (``R1xx``) — every benchmark script has a
  ``scripts/bench_smoke.py`` entry and every example a
  ``tests/test_examples.py`` entry, statically.

Findings are suppressed per line with a justified marker::

    task_q.get()  # reprolint: ignore[C102] — idle worker blocks by design

A bare suppression without justification is itself a finding (``S100``),
and so is a suppression that no longer matches anything (``S101``) —
suppressions stay load-bearing or they fail the build.

Run via ``python -m repro.staticcheck`` (see ``--help``), or
``make staticcheck``; the engine is importable for tests::

    from repro.staticcheck import run_analysis
    report = run_analysis(repo_root)
    assert report.exit_code == 0

The analyzer is pure stdlib (``ast`` + ``tokenize``): it never imports
the code under analysis, so it runs in containers with no third-party
packages installed and cannot be fooled by import-time side effects.
"""

from repro.staticcheck.engine import (
    Finding,
    Report,
    Rule,
    RULES,
    iter_rules,
    run_analysis,
)

# Importing the rule modules registers every rule family; keep these
# imports after the engine so the registry exists.
from repro.staticcheck import (  # noqa: E402  (registration imports)
    rules_concurrency,
    rules_determinism,
    rules_parity,
    rules_purity,
    rules_registry,
)

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "RULES",
    "iter_rules",
    "run_analysis",
    "rules_concurrency",
    "rules_determinism",
    "rules_parity",
    "rules_purity",
    "rules_registry",
]
