"""Plan-purity rules (P1xx): frozen plans, closed wire vocabulary.

The experiment engine's caching, hashing, deduplication and
process-pool distribution all assume a :class:`TrialPlan` is a frozen
value object, and the job service assumes every dataclass a plan can
carry is registered in :data:`repro.service.wire.WIRE_TYPES` — an
unregistered type serializes fine locally and explodes only when the
first remote job ships it.  These rules walk the *static* type graph:
every dataclass reachable from the purity roots (``TrialPlan``,
``TrialResult``, ``ExecutionPolicy``) through field annotations must be
``frozen=True`` (P101) and wire-registered (P102); abstract bases that
only exist to be subclassed (``TopologyProvider``) are exempt from
registration but their subclasses are traversed.  P100 fires when the
analysis itself cannot run — a missing root class or an unrecognizable
``WIRE_TYPES`` shape must fail loudly, not pass vacuously.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.staticcheck.engine import Finding, Project, rule

__all__ = [
    "dataclass_index",
    "wire_registry_names",
    "check_plan_purity",
]

_WIRE_MODULE = "src/repro/service/wire.py"
_PURITY_ROOTS = ("TrialPlan", "TrialResult", "ExecutionPolicy")


@dataclass
class _Dataclass:
    """One ``@dataclass`` definition found under ``src/``."""

    name: str
    rel: str
    line: int
    frozen: bool
    bases: tuple[str, ...]
    field_type_names: tuple[str, ...]
    subclasses: list[str] = field(default_factory=list)


def _decorator_dataclass_frozen(node: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, frozen) from a class's decorator list."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "frozen":
                    frozen = (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    )
        return True, frozen
    return False, False


def _annotation_names(annotation: ast.AST) -> Iterator[str]:
    """Every identifier mentioned in a field annotation, including
    inside subscripts (``tuple[TopologyProvider, ...]``), unions, and
    string annotations (best-effort parse)."""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _class_fields(node: ast.ClassDef) -> Iterator[str]:
    """Type names referenced by the class's dataclass fields
    (annotated assignments in the class body, ClassVar excluded)."""
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        names = list(_annotation_names(stmt.annotation))
        if "ClassVar" in names:
            continue
        yield from names


def dataclass_index(project: Project) -> dict[str, _Dataclass]:
    """Every ``@dataclass`` under ``src/``, by class name, with its
    subclass lists filled in.  Name collisions keep the first
    definition (the traversal only needs plan-schema classes, whose
    names are unique by construction of the wire registry)."""
    index: dict[str, _Dataclass] = {}
    for rel, source in sorted(project.files.items()):
        if not rel.startswith("src/") or source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dc, frozen = _decorator_dataclass_frozen(node)
            if not is_dc or node.name in index:
                continue
            bases = tuple(
                base.id
                for base in node.bases
                if isinstance(base, ast.Name)
            ) + tuple(
                base.attr
                for base in node.bases
                if isinstance(base, ast.Attribute)
            )
            index[node.name] = _Dataclass(
                name=node.name,
                rel=rel,
                line=node.lineno,
                frozen=frozen,
                bases=bases,
                field_type_names=tuple(_class_fields(node)),
            )
    for entry in index.values():
        for base in entry.bases:
            if base in index:
                index[base].subclasses.append(entry.name)
    return index


def wire_registry_names(project: Project) -> tuple[set[str] | None, str]:
    """The class names registered in ``WIRE_TYPES``, read statically.

    Returns ``(names, problem)``; ``names`` is None when the registry
    could not be located or its shape is not the dict-comprehension-
    over-a-tuple-of-names idiom the module documents."""
    source = project.file(_WIRE_MODULE)
    if source is None or source.tree is None:
        return None, f"{_WIRE_MODULE} is missing or unparseable"
    for node in ast.walk(source.tree):
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == "WIRE_TYPES"):
            continue
        if (
            isinstance(value, ast.DictComp)
            and len(value.generators) == 1
            and isinstance(value.generators[0].iter, ast.Tuple)
            and all(
                isinstance(elt, ast.Name)
                for elt in value.generators[0].iter.elts
            )
        ):
            return {
                elt.id for elt in value.generators[0].iter.elts
            }, ""
        return None, (
            "WIRE_TYPES is not the documented dict-comprehension over a "
            "tuple of class names; the static registry check cannot "
            "read it"
        )
    return None, f"no WIRE_TYPES assignment found in {_WIRE_MODULE}"


@rule(
    rule_id="P100",
    family="purity",
    summary=(
        "the plan-purity analysis could not run (missing root class or "
        "unreadable WIRE_TYPES registry)"
    ),
    project=True,
)
def check_purity_analysis_runs(project: Project) -> Iterator[Finding]:
    index = dataclass_index(project)
    for root in _PURITY_ROOTS:
        if root not in index:
            yield Finding(
                rule="P100",
                file=_WIRE_MODULE,
                line=1,
                message=(
                    f"purity root {root} not found as a dataclass under "
                    "src/; the frozen/registered checks are vacuous "
                    "without it"
                ),
            )
    names, problem = wire_registry_names(project)
    if names is None:
        yield Finding(
            rule="P100", file=_WIRE_MODULE, line=1, message=problem
        )


def _reachable(index: dict[str, _Dataclass]) -> list[_Dataclass]:
    """Dataclasses reachable from the purity roots through field
    annotations, plus subclasses of every reachable base (what actually
    crosses the wire); cycle-safe (CompositeTopology -> TopologyProvider
    -> CompositeTopology)."""
    queue = [root for root in _PURITY_ROOTS if root in index]
    seen: set[str] = set()
    out: list[_Dataclass] = []
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        entry = index[name]
        out.append(entry)
        for referenced in entry.field_type_names:
            if referenced in index and referenced not in seen:
                queue.append(referenced)
        for subclass in entry.subclasses:
            if subclass not in seen:
                queue.append(subclass)
    return sorted(out, key=lambda e: (e.rel, e.line))


@rule(
    rule_id="P101",
    family="purity",
    summary=(
        "dataclass reachable from TrialPlan field types must be "
        "frozen=True (plans are hashed, cached, and shipped)"
    ),
    project=True,
)
def check_reachable_frozen(project: Project) -> Iterator[Finding]:
    index = dataclass_index(project)
    for entry in _reachable(index):
        if not entry.frozen:
            yield Finding(
                rule="P101",
                file=entry.rel,
                line=entry.line,
                message=(
                    f"{entry.name} is reachable from the plan schema but "
                    "not frozen=True; plans must stay hashable value "
                    "objects"
                ),
            )


@rule(
    rule_id="P102",
    family="purity",
    summary=(
        "dataclass reachable from TrialPlan field types must be "
        "registered in service/wire.py WIRE_TYPES"
    ),
    project=True,
)
def check_reachable_registered(project: Project) -> Iterator[Finding]:
    index = dataclass_index(project)
    registered, _problem = wire_registry_names(project)
    if registered is None:
        return  # P100 already reports the broken registry
    for entry in _reachable(index):
        if entry.name in registered:
            continue
        if entry.subclasses:
            # An abstract base is never instantiated on the wire; its
            # concrete subclasses are traversed and must register.
            continue
        yield Finding(
            rule="P102",
            file=entry.rel,
            line=entry.line,
            message=(
                f"{entry.name} is reachable from the plan schema but not "
                "registered in WIRE_TYPES; remote jobs cannot carry it "
                "(add it to the registry tuple in service/wire.py)"
            ),
        )
