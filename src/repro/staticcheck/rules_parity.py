"""Executor-parity rules (X1xx): no silent fast-path divergence.

The columnar runtime re-implements every workload hook in array form,
and the equivalence tests pin the two paths bit-identical — but only
for hooks that *exist*.  A workload that overrides ``finalize`` on the
object path and forgets ``vector_finalize`` doesn't fail: the vector
path silently inherits the base implementation and the two executors
return different metrics for the same plan.  X101 turns that hole into
a lint error by requiring every overridden object hook to come with its
vector twin (or an explicit ``vector_ineligible = True`` marker on
workloads that opt out of the fast path entirely).  X102 catches the
inverse half-opt-in: vector hooks with no ``vector_ready`` gate are
dead code, because the base gate returns False.

X103 guards the *backend selection* boundary the same way: every
predicate of ``VectorRuntime._native_ok`` — the probe deciding whether
a stride runs through the fused C kernel — must have a matching row in
the ``NATIVE_ELIGIBILITY_CASES`` decision table of
``tests/test_native_equivalence.py``.  A new eligibility knob without a
table row would ship untested selection logic: the knob could route
work to the wrong backend and no test would notice.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, Project, SourceFile, rule

__all__ = [
    "workload_classes",
    "check_vector_twins",
    "check_vector_gate",
    "check_native_eligibility_table",
]

#: object-path hook -> required columnar twin.
_HOOK_TWINS = {
    "client_factory": "vector_clients",
    "start": "vector_start",
    "done": "vector_done",
    "target_slots": "vector_target_slots",
    "finalize": "vector_finalize",
}

_VECTOR_HOOKS = frozenset(_HOOK_TWINS.values())

_INELIGIBLE_MARKER = "vector_ineligible"


def _is_workload_class(node: ast.ClassDef) -> bool:
    """A workload: inherits from a ``*Workload`` base (the root
    ``Workload`` class itself has no such base and defines both hook
    sets anyway)."""
    for base in node.bases:
        name = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name is not None and name.endswith("Workload"):
            return True
    return False


def _defined_methods(node: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _has_ineligible_marker(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: list[ast.AST] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == _INELIGIBLE_MARKER
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


def workload_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_workload_class(node):
            yield node


@rule(
    rule_id="X101",
    family="parity",
    summary=(
        "workload overrides an object-path hook without its vector_* "
        "twin; the fast path silently inherits different behavior"
    ),
    scope=("src",),
)
def check_vector_twins(source: SourceFile) -> Iterator[Finding]:
    for node in workload_classes(source.tree):
        if _has_ineligible_marker(node):
            continue
        methods = _defined_methods(node)
        for hook, twin in _HOOK_TWINS.items():
            if hook in methods and twin not in methods:
                yield Finding(
                    rule="X101",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        f"{node.name} overrides {hook}() without "
                        f"{twin}(); the columnar path would silently use "
                        "the inherited implementation — add the twin or "
                        f"mark the class {_INELIGIBLE_MARKER} = True"
                    ),
                )


@rule(
    rule_id="X102",
    family="parity",
    summary=(
        "workload defines vector_* hooks but no vector_ready gate; the "
        "hooks are dead code behind the default False gate"
    ),
    scope=("src",),
)
def check_vector_gate(source: SourceFile) -> Iterator[Finding]:
    for node in workload_classes(source.tree):
        if _has_ineligible_marker(node):
            continue
        # Only direct subclasses of the root Workload inherit the
        # default False gate; deeper subclasses may inherit a concrete
        # workload's True gate, which is a deliberate opt-in.
        if not any(
            isinstance(base, ast.Name) and base.id == "Workload"
            for base in node.bases
        ):
            continue
        methods = _defined_methods(node)
        if methods & _VECTOR_HOOKS and "vector_ready" not in methods:
            yield Finding(
                rule="X102",
                file=source.rel,
                line=node.lineno,
                message=(
                    f"{node.name} defines columnar hooks but no "
                    "vector_ready(); the base gate returns False, so the "
                    "hooks never run — define the gate (or "
                    f"{_INELIGIBLE_MARKER} = True if opting out)"
                ),
            )


_NATIVE_PREDICATE_FILE = "src/repro/vectorized/runtime.py"
_NATIVE_PREDICATE_NAME = "_native_ok"
_NATIVE_TABLE_FILE = "tests/test_native_equivalence.py"
_NATIVE_TABLE_NAME = "NATIVE_ELIGIBILITY_CASES"


def _native_ok_predicates(
    tree: ast.Module,
) -> tuple[set[str], int] | None:
    """The ``self.<attr>`` names ``_native_ok`` tests, plus its line."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == _NATIVE_PREDICATE_NAME
        ):
            names = {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            }
            return names, node.lineno
    return None


def _table_row_names(tree: ast.Module) -> tuple[set[str], int] | None:
    """First-element string of every NATIVE_ELIGIBILITY_CASES row."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == _NATIVE_TABLE_NAME
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                names = set()
                for row in node.value.elts:
                    if (
                        isinstance(row, ast.Tuple)
                        and row.elts
                        and isinstance(row.elts[0], ast.Constant)
                        and isinstance(row.elts[0].value, str)
                    ):
                        names.add(row.elts[0].value)
                return names, node.lineno
    return None


@rule(
    rule_id="X103",
    family="parity",
    summary=(
        "every VectorRuntime._native_ok backend-eligibility predicate "
        "needs a row in the NATIVE_ELIGIBILITY_CASES decision table of "
        "tests/test_native_equivalence.py (and no stale rows)"
    ),
    project=True,
)
def check_native_eligibility_table(project: Project) -> Iterator[Finding]:
    """A new eligibility knob in the native-backend probe must land with
    a selection test; a removed knob must not leave a stale table row.

    The rule is silent when the runtime module itself is absent (unit
    fixtures scan synthetic trees) but strict once it exists: a missing
    probe, a missing table, or any one-sided name is an error.
    """
    source = project.file(_NATIVE_PREDICATE_FILE)
    if source is None:
        return
    if source.tree is None:  # parse failure is E100's finding
        return
    probe = _native_ok_predicates(source.tree)
    if probe is None:
        yield Finding(
            rule="X103",
            file=_NATIVE_PREDICATE_FILE,
            line=1,
            message=(
                f"{_NATIVE_PREDICATE_NAME}() not found; the native "
                "backend-eligibility probe moved — update X103's anchor"
            ),
        )
        return
    predicates, line = probe
    # tests/ is outside the scanned roots by design (fixtures trip
    # rules); the decision table is loaded as an extra.
    table_source = project.read_extra(_NATIVE_TABLE_FILE)
    table = (
        None
        if table_source is None or table_source.tree is None
        else _table_row_names(table_source.tree)
    )
    if table is None:
        yield Finding(
            rule="X103",
            file=_NATIVE_PREDICATE_FILE,
            line=line,
            message=(
                f"{_NATIVE_TABLE_NAME} not found in {_NATIVE_TABLE_FILE}; "
                "the backend-selection decision table must exist"
            ),
        )
        return
    rows, table_line = table
    for name in sorted(predicates - rows):
        yield Finding(
            rule="X103",
            file=_NATIVE_PREDICATE_FILE,
            line=line,
            message=(
                f"{_NATIVE_PREDICATE_NAME}() tests self.{name} but "
                f"{_NATIVE_TABLE_NAME} has no {name!r} row — add a "
                "selection test for the new eligibility knob"
            ),
        )
    for name in sorted(rows - predicates):
        yield Finding(
            rule="X103",
            file=_NATIVE_PREDICATE_FILE,
            line=line,
            message=(
                f"{_NATIVE_TABLE_NAME} (line {table_line} of "
                f"{_NATIVE_TABLE_FILE}) has a {name!r} row but "
                f"{_NATIVE_PREDICATE_NAME}() no longer tests it — drop "
                "the stale row"
            ),
        )
