"""Executor-parity rules (X1xx): no silent fast-path divergence.

The columnar runtime re-implements every workload hook in array form,
and the equivalence tests pin the two paths bit-identical — but only
for hooks that *exist*.  A workload that overrides ``finalize`` on the
object path and forgets ``vector_finalize`` doesn't fail: the vector
path silently inherits the base implementation and the two executors
return different metrics for the same plan.  X101 turns that hole into
a lint error by requiring every overridden object hook to come with its
vector twin (or an explicit ``vector_ineligible = True`` marker on
workloads that opt out of the fast path entirely).  X102 catches the
inverse half-opt-in: vector hooks with no ``vector_ready`` gate are
dead code, because the base gate returns False.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, SourceFile, rule

__all__ = ["workload_classes", "check_vector_twins", "check_vector_gate"]

#: object-path hook -> required columnar twin.
_HOOK_TWINS = {
    "client_factory": "vector_clients",
    "start": "vector_start",
    "done": "vector_done",
    "target_slots": "vector_target_slots",
    "finalize": "vector_finalize",
}

_VECTOR_HOOKS = frozenset(_HOOK_TWINS.values())

_INELIGIBLE_MARKER = "vector_ineligible"


def _is_workload_class(node: ast.ClassDef) -> bool:
    """A workload: inherits from a ``*Workload`` base (the root
    ``Workload`` class itself has no such base and defines both hook
    sets anyway)."""
    for base in node.bases:
        name = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name is not None and name.endswith("Workload"):
            return True
    return False


def _defined_methods(node: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _has_ineligible_marker(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: list[ast.AST] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == _INELIGIBLE_MARKER
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


def workload_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_workload_class(node):
            yield node


@rule(
    rule_id="X101",
    family="parity",
    summary=(
        "workload overrides an object-path hook without its vector_* "
        "twin; the fast path silently inherits different behavior"
    ),
    scope=("src",),
)
def check_vector_twins(source: SourceFile) -> Iterator[Finding]:
    for node in workload_classes(source.tree):
        if _has_ineligible_marker(node):
            continue
        methods = _defined_methods(node)
        for hook, twin in _HOOK_TWINS.items():
            if hook in methods and twin not in methods:
                yield Finding(
                    rule="X101",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        f"{node.name} overrides {hook}() without "
                        f"{twin}(); the columnar path would silently use "
                        "the inherited implementation — add the twin or "
                        f"mark the class {_INELIGIBLE_MARKER} = True"
                    ),
                )


@rule(
    rule_id="X102",
    family="parity",
    summary=(
        "workload defines vector_* hooks but no vector_ready gate; the "
        "hooks are dead code behind the default False gate"
    ),
    scope=("src",),
)
def check_vector_gate(source: SourceFile) -> Iterator[Finding]:
    for node in workload_classes(source.tree):
        if _has_ineligible_marker(node):
            continue
        # Only direct subclasses of the root Workload inherit the
        # default False gate; deeper subclasses may inherit a concrete
        # workload's True gate, which is a deliberate opt-in.
        if not any(
            isinstance(base, ast.Name) and base.id == "Workload"
            for base in node.bases
        ):
            continue
        methods = _defined_methods(node)
        if methods & _VECTOR_HOOKS and "vector_ready" not in methods:
            yield Finding(
                rule="X102",
                file=source.rel,
                line=node.lineno,
                message=(
                    f"{node.name} defines columnar hooks but no "
                    "vector_ready(); the base gate returns False, so the "
                    "hooks never run — define the gate (or "
                    f"{_INELIGIBLE_MARKER} = True if opting out)"
                ),
            )
