"""``python -m repro.staticcheck`` — run reprolint from the shell.

Exit status is the report's: 0 when no error-severity findings remain,
1 otherwise (warnings, from ``--baseline``, never fail the run).
``--format json`` emits the machine-readable report consumed by the CI
artifact upload; ``--list-rules`` prints the registry for docs and
humans.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.staticcheck.engine import iter_rules, run_analysis


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "reprolint: the repository's determinism / plan-purity / "
            "concurrency invariant analyzer (pure stdlib, never imports "
            "the code it checks)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "repository-relative files to check (default: every .py "
            "under src/ scripts/ benchmarks/ examples/; project-wide "
            "rules only run on a full scan)"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file (same format)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "JSON baseline {'warn': [rule ids]} downgrading listed "
            "rules to warnings (land new rules warn-only, promote by "
            "shrinking the baseline)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for entry in iter_rules():
            kind = "project" if entry.project else (
                "builtin" if entry.check is None else "file"
            )
            scope = ",".join(entry.scope) or "-"
            print(f"{entry.rule_id}  {entry.family:<12} {kind:<8} "
                  f"[{scope}]  {entry.summary}")
        return 0
    report = run_analysis(
        args.root,
        paths=args.paths or None,
        baseline=args.baseline,
    )
    if args.format == "json":
        rendered = json.dumps(report.to_json(), indent=2, sort_keys=True)
    else:
        rendered = report.to_text()
    print(rendered)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
