"""The reprolint engine: rule registry, file model, suppressions, runner.

Rules come in two shapes:

* **file rules** — ``check(source: SourceFile) -> Iterable[Finding]``,
  run once per parsed file whose repository-relative path starts with
  one of the rule's ``scope`` prefixes;
* **project rules** — ``check(project: Project) -> Iterable[Finding]``,
  run once per analysis with the whole parsed tree available (cross-file
  contracts: wire-registry coverage, workload parity, smoke registries).

Both register through :func:`rule`; the engine itself owns three
*builtin* rule IDs it emits directly:

* ``E100`` — a checked file failed to read or parse.  Parse failures
  are findings, never silent skips: an unparseable file fails the run
  like any other violation (and unlike a crash, the rest of the tree
  still gets checked).
* ``S100`` — a suppression comment without a justification.  The
  acceptance contract for suppressions is *rule ID plus reason*;
  ``# reprolint: ignore[C102]`` alone is rejected.
* ``S101`` — a suppression that matched no finding.  Stale suppressions
  would otherwise silently disable future findings on their line;
  forcing their removal keeps every suppression load-bearing (deleting
  a live one re-exposes its finding, deleting a dead one is mandatory).

Suppression syntax (same line as the finding)::

    something_flagged()  # reprolint: ignore[C102] — why this is safe
    other_thing()  # reprolint: ignore[D101,D104]: shared justification

Severity and the baseline: every finding is an ``error`` unless its
rule ID is listed in the baseline file's ``warn`` array (JSON:
``{"warn": ["X102"]}``), which downgrades it to ``warning`` — new rules
can land warn-only and be promoted later by shrinking the baseline.
Only errors affect the exit code.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "RULES",
    "SourceFile",
    "Project",
    "Suppression",
    "iter_rules",
    "builtin_rule",
    "rule",
    "run_analysis",
]

#: Directories scanned by a default (whole-repository) analysis, as
#: repository-relative prefixes.  ``tests/`` is deliberately absent:
#: tests exercise forbidden constructs on purpose (including this
#: analyzer's own fixtures); project rules that need a specific test
#: file (the example smoke registry) load it explicitly.
DEFAULT_ROOTS = ("src", "scripts", "benchmarks", "examples")

JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    file: str  # repository-relative posix path
    line: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        tag = "" if self.severity == "error" else f" ({self.severity})"
        return f"{self.file}:{self.line}: {self.rule}{tag} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered rule: identity, documentation hook, and checker."""

    rule_id: str
    family: str
    summary: str
    scope: tuple[str, ...] = ()
    check: Callable | None = None
    project: bool = False


RULES: dict[str, Rule] = {}

_RULE_ID_RE = re.compile(r"^[A-Z]\d{3}$")


def _register(entry: Rule) -> None:
    if not _RULE_ID_RE.match(entry.rule_id):
        raise ValueError(f"malformed rule id {entry.rule_id!r}")
    if entry.rule_id in RULES:
        raise ValueError(f"duplicate rule id {entry.rule_id!r}")
    RULES[entry.rule_id] = entry


def rule(
    *,
    rule_id: str,
    family: str,
    summary: str,
    scope: tuple[str, ...] = ("src",),
    project: bool = False,
):
    """Register a checker under ``rule_id``; decorator for rule modules."""

    def register(fn: Callable) -> Callable:
        _register(
            Rule(
                rule_id=rule_id,
                family=family,
                summary=summary,
                scope=tuple(scope),
                check=fn,
                project=project,
            )
        )
        return fn

    return register


def builtin_rule(*, rule_id: str, family: str, summary: str) -> None:
    """Register an engine-emitted rule (no checker function)."""
    _register(Rule(rule_id=rule_id, family=family, summary=summary))


builtin_rule(
    rule_id="E100",
    family="analysis",
    summary="checked file failed to read or parse",
)
builtin_rule(
    rule_id="S100",
    family="analysis",
    summary="suppression comment carries no justification",
)
builtin_rule(
    rule_id="S101",
    family="analysis",
    summary="suppression matches no finding (stale)",
)


def iter_rules() -> Iterator[Rule]:
    """All registered rules in rule-ID order."""
    for rule_id in sorted(RULES):
        yield RULES[rule_id]


# -- the file model ----------------------------------------------------


_SUPPRESS_RE = re.compile(
    r"reprolint:\s*ignore\[([A-Za-z0-9_,\s]*)\]\s*(?:[-—–:]\s*)?(.*)"
)


@dataclass
class Suppression:
    """One ``# reprolint: ignore[...]`` marker and its usage state."""

    file: str
    line: int
    rules: tuple[str, ...]
    justification: str
    used: set[str] = field(default_factory=set)


@dataclass
class SourceFile:
    """One parsed source file (tree is None when parsing failed)."""

    rel: str
    text: str
    tree: ast.Module | None
    parse_error: str | None
    parse_error_line: int
    suppressions: list[Suppression]
    _parents: dict[ast.AST, ast.AST] | None = None

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent over the whole tree (computed lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents


def _find_suppressions(rel: str, text: str) -> list[Suppression]:
    """Extract suppression markers with accurate line numbers.

    ``tokenize`` keeps a ``#`` inside a string literal from being read
    as a comment; files it cannot tokenize (syntax errors) fall back to
    a per-line regex, so a suppression on a broken file still parses.
    """
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(text.splitlines(), 1):
            if "#" in line:
                comments.append((lineno, line[line.index("#") :]))
    found: list[Suppression] = []
    for lineno, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        found.append(
            Suppression(
                file=rel,
                line=lineno,
                rules=rules,
                justification=match.group(2).strip(),
            )
        )
    return found


def load_source(root: Path, rel: str) -> SourceFile:
    """Read and parse one file; failures become E100 material, not
    exceptions (an unreadable file must fail the run, not crash it)."""
    text = ""
    tree = None
    error = None
    error_line = 1
    try:
        text = (root / rel).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        error = f"unreadable: {exc}"
    else:
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            error = f"syntax error: {exc.msg}"
            error_line = exc.lineno or 1
        except ValueError as exc:  # e.g. null bytes on older CPython
            error = f"unparseable: {exc}"
    return SourceFile(
        rel=rel,
        text=text,
        tree=tree,
        parse_error=error,
        parse_error_line=error_line,
        suppressions=_find_suppressions(rel, text),
    )


@dataclass
class Project:
    """The parsed analysis tree plus on-demand extras."""

    root: Path
    files: dict[str, SourceFile]
    _extras: dict[str, SourceFile | None] = field(default_factory=dict)

    def file(self, rel: str) -> SourceFile | None:
        """A file from the scanned roots, by relative posix path."""
        return self.files.get(rel)

    def read_extra(self, rel: str) -> SourceFile | None:
        """Parse a file outside the scanned roots (None if absent).

        Used by project rules whose contract spans into ``tests/``
        (the example smoke registry); extras are parsed once and do not
        participate in file rules or suppression accounting.
        """
        if rel not in self._extras:
            if (self.root / rel).is_file():
                self._extras[rel] = load_source(self.root, rel)
            else:
                self._extras[rel] = None
        return self._extras[rel]

    def glob(self, pattern: str) -> list[str]:
        """Repository-relative posix paths matching ``pattern``."""
        return sorted(
            p.relative_to(self.root).as_posix()
            for p in self.root.glob(pattern)
            if p.is_file()
        )


# -- the runner --------------------------------------------------------


def _discover(root: Path, paths: Iterable[str] | None) -> list[str]:
    if paths is not None:
        return sorted(dict.fromkeys(paths))
    found: list[str] = []
    for prefix in DEFAULT_ROOTS:
        base = root / prefix
        if not base.is_dir():
            continue
        found.extend(
            p.relative_to(root).as_posix()
            for p in sorted(base.glob("**/*.py"))
        )
    return found


def _load_baseline(baseline: Path | None) -> set[str]:
    if baseline is None:
        return set()
    data = json.loads(baseline.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not isinstance(data.get("warn"), list):
        raise ValueError(
            f"baseline {baseline} must be a JSON object with a 'warn' "
            "array of rule IDs"
        )
    unknown = [r for r in data["warn"] if r not in RULES]
    if unknown:
        raise ValueError(f"baseline names unknown rules: {unknown}")
    return set(data["warn"])


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding]
    checked_files: int
    rules_run: tuple[str, ...]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_json(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "checked_files": self.checked_files,
            "rules": list(self.rules_run),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [
                {
                    "rule": f.rule,
                    "file": f.file,
                    "line": f.line,
                    "message": f.message,
                    "severity": f.severity,
                }
                for f in self.findings
            ],
        }

    def to_text(self) -> str:
        lines = [f.format() for f in self.findings]
        if self.errors:
            lines.append(
                f"reprolint: FAILED ({len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{self.checked_files} files)"
            )
        else:
            lines.append(
                f"reprolint: OK ({self.checked_files} files, "
                f"{len(self.rules_run)} rules"
                + (
                    f", {len(self.warnings)} warning(s)"
                    if self.warnings
                    else ""
                )
                + ")"
            )
        return "\n".join(lines)


def _scoped(entry: Rule, rel: str) -> bool:
    return any(
        rel == prefix or rel.startswith(prefix.rstrip("/") + "/")
        for prefix in entry.scope
    )


def run_analysis(
    root: Path,
    paths: Iterable[str] | None = None,
    baseline: Path | None = None,
    run_project_rules: bool | None = None,
) -> Report:
    """Analyze ``root`` and return a :class:`Report`.

    ``paths`` restricts file rules (and suppression accounting) to the
    given repository-relative files; project rules then default to off
    because their cross-file contracts need the whole tree.  With
    ``paths=None`` every file under :data:`DEFAULT_ROOTS` is scanned
    and all rules run.
    """
    root = Path(root).resolve()
    if run_project_rules is None:
        run_project_rules = paths is None
    rels = _discover(root, paths)
    warn_rules = _load_baseline(baseline)

    project = Project(
        root=root, files={rel: load_source(root, rel) for rel in rels}
    )

    raw: list[Finding] = []
    for rel, source in project.files.items():
        if source.parse_error is not None:
            raw.append(
                Finding(
                    rule="E100",
                    file=rel,
                    line=source.parse_error_line,
                    message=source.parse_error,
                )
            )
    rules_run: list[str] = ["E100", "S100", "S101"]
    for entry in iter_rules():
        if entry.check is None:
            continue
        rules_run.append(entry.rule_id)
        if entry.project:
            if run_project_rules:
                raw.extend(entry.check(project))
            continue
        for rel, source in project.files.items():
            if source.tree is None or not _scoped(entry, rel):
                continue
            raw.extend(entry.check(source))

    # Suppression pass: a finding on a suppressed (file, line, rule)
    # is dropped and marks its suppression used.
    by_line: dict[tuple[str, int], list[Suppression]] = {}
    for source in project.files.values():
        for suppression in source.suppressions:
            by_line.setdefault(
                (suppression.file, suppression.line), []
            ).append(suppression)

    kept: list[Finding] = []
    for finding in raw:
        suppressed = False
        for suppression in by_line.get((finding.file, finding.line), []):
            if finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                suppressed = True
        if not suppressed:
            kept.append(finding)

    for source in project.files.values():
        for suppression in source.suppressions:
            if not suppression.justification:
                kept.append(
                    Finding(
                        rule="S100",
                        file=suppression.file,
                        line=suppression.line,
                        message=(
                            "suppression needs a justification: "
                            "# reprolint: ignore[RULE] — why it is safe"
                        ),
                    )
                )
            stale = [r for r in suppression.rules if r not in suppression.used]
            if stale or not suppression.rules:
                kept.append(
                    Finding(
                        rule="S101",
                        file=suppression.file,
                        line=suppression.line,
                        message=(
                            "suppression matches no finding "
                            f"(stale rule id(s): {', '.join(stale) or '<none>'}); "
                            "remove it"
                        ),
                    )
                )

    findings = sorted(
        (
            Finding(
                rule=f.rule,
                file=f.file,
                line=f.line,
                message=f.message,
                severity="warning" if f.rule in warn_rules else "error",
            )
            for f in kept
        ),
        key=lambda f: (f.file, f.line, f.rule, f.message),
    )
    return Report(
        findings=findings,
        checked_files=len(rels),
        rules_run=tuple(rules_run),
    )
