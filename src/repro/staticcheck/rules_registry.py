"""Registry-exhaustiveness rules (R1xx): no orphan benchmarks/examples.

``scripts/bench_smoke.py`` and ``tests/test_examples.py`` each keep a
``SMOKE`` dict mapping script stems to smoke callables; the runtime
tests assert the dict matches the directory.  Those assertions only run
when their suites run — a benchmark added in a docs-only PR that skips
``make bench-smoke`` ships unexercised.  These rules do the same
two-way comparison statically (AST dict keys vs. on-disk stems), so the
mismatch is a lint error in every CI job.  If a registry file loses its
``SMOKE`` literal the rule reports *that* rather than passing
vacuously.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, Project, SourceFile, rule

__all__ = ["smoke_registry_keys", "check_bench_registry", "check_example_registry"]

_BENCH_REGISTRY = "scripts/bench_smoke.py"
_EXAMPLE_REGISTRY = "tests/test_examples.py"


def smoke_registry_keys(
    source: SourceFile | None, rel: str
) -> tuple[set[str] | None, Finding | None]:
    """String keys of the module-level ``SMOKE = {...}`` literal, or a
    finding describing why they could not be read."""
    if source is None or source.tree is None:
        return None, Finding(
            rule="R101" if rel == _BENCH_REGISTRY else "R102",
            file=rel,
            line=1,
            message=f"{rel} is missing or unparseable; the smoke "
            "registry cannot be checked",
        )
    for node in source.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "SMOKE"):
            continue
        if isinstance(node.value, ast.Dict) and all(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in node.value.keys
        ):
            return {key.value for key in node.value.keys}, None
        return None, Finding(
            rule="R101" if rel == _BENCH_REGISTRY else "R102",
            file=rel,
            line=node.lineno,
            message="SMOKE must be a dict literal with string keys for "
            "the static registry check to read it",
        )
    return None, Finding(
        rule="R101" if rel == _BENCH_REGISTRY else "R102",
        file=rel,
        line=1,
        message=f"no module-level SMOKE dict found in {rel}",
    )


def _compare(
    rule_id: str,
    registry_rel: str,
    keys: set[str],
    stems: list[str],
    what: str,
) -> Iterator[Finding]:
    for stem in stems:
        if stem not in keys:
            yield Finding(
                rule=rule_id,
                file=registry_rel,
                line=1,
                message=(
                    f"{what} {stem!r} has no SMOKE entry in "
                    f"{registry_rel}; every {what} must be smoke-covered"
                ),
            )
    for key in sorted(keys):
        if key not in stems:
            yield Finding(
                rule=rule_id,
                file=registry_rel,
                line=1,
                message=(
                    f"SMOKE entry {key!r} has no matching {what} on "
                    "disk; remove the stale entry"
                ),
            )


@rule(
    rule_id="R101",
    family="registry",
    summary=(
        "benchmarks/bench_*.py and the scripts/bench_smoke.py SMOKE "
        "registry must match exactly, both directions"
    ),
    project=True,
)
def check_bench_registry(project: Project) -> Iterator[Finding]:
    source = project.file(_BENCH_REGISTRY)
    keys, problem = smoke_registry_keys(source, _BENCH_REGISTRY)
    if problem is not None:
        yield problem
        return
    stems = [
        rel.split("/")[-1][: -len(".py")]
        for rel in project.glob("benchmarks/bench_*.py")
    ]
    yield from _compare("R101", _BENCH_REGISTRY, keys, stems, "benchmark")


@rule(
    rule_id="R102",
    family="registry",
    summary=(
        "examples/*.py and the tests/test_examples.py SMOKE registry "
        "must match exactly, both directions"
    ),
    project=True,
)
def check_example_registry(project: Project) -> Iterator[Finding]:
    # tests/ is outside the scanned roots by design (fixtures trip
    # rules); the registry file is loaded as an extra.
    source = project.read_extra(_EXAMPLE_REGISTRY)
    keys, problem = smoke_registry_keys(source, _EXAMPLE_REGISTRY)
    if problem is not None:
        yield problem
        return
    stems = [
        rel.split("/")[-1][: -len(".py")]
        for rel in project.glob("examples/*.py")
    ]
    yield from _compare("R102", _EXAMPLE_REGISTRY, keys, stems, "example")
