"""Concurrency rules (C1xx): the service layer's lock discipline.

The job service stays responsive under worker crashes because of two
structural properties: no thread ever blocks while holding a scheduler
or queue lock (C101), and every queue read that is not an intentional
idle wait carries a timeout so crash watchdogs and cancellation can run
(C102).  Both properties are invisible to the type checker and only
show up at runtime as a *hang*, the worst kind of CI failure — so they
are enforced here as lint errors over :mod:`repro.service`.  C103 adds
the classic shared-state footgun: a mutable object in a class body is
one instance shared by every worker, not per-instance state.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.staticcheck.engine import Finding, SourceFile, rule

__all__ = [
    "check_blocking_under_lock",
    "check_untimed_queue_get",
    "check_mutable_class_state",
]

_SERVICE_SCOPE = ("src/repro/service",)

#: Receivers that statically look like queues: ``task_q``,
#: ``_result_q``, ``queue``, ``events`` — the naming convention the
#: service layer actually uses.
_QUEUEISH = re.compile(r"(^|_)(q|queue|events)$")

#: Call names that block indefinitely (or for unbounded wall time).
_BLOCKING_SIMPLE = frozenset({"sleep", "wait", "join", "accept", "recv"})
_BLOCKING_MODULES = frozenset({"socket", "subprocess"})


def _receiver_name(attr: ast.Attribute) -> str | None:
    """The terminal name of an attribute chain's receiver:
    ``job.events.get`` -> ``events``, ``task_q.get`` -> ``task_q``."""
    value = attr.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _is_untimed_get_call(call: ast.Call) -> bool:
    """``q.get()`` with neither a positional arg nor a timeout/block
    keyword blocks forever; any argument at all makes it bounded or an
    explicit choice we leave to C101's lock check."""
    if call.args:
        return False
    return not any(kw.arg in ("timeout", "block") for kw in call.keywords)


def _looks_like_lock(expr: ast.AST) -> bool:
    """Heuristic: the ``with`` context manager is a lock if any name in
    its expression mentions ``lock`` (``self._lock``, ``job_lock``,
    ``self.lock``, ``Lock()``...)."""
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def _blocking_reason(call: ast.Call) -> str | None:
    """Why ``call`` blocks, or None if it does not (statically)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = _receiver_name(func)
        if func.attr == "get":
            if (
                receiver is not None
                and _QUEUEISH.search(receiver)
                and _is_untimed_get_call(call)
            ):
                return f"untimed {receiver}.get()"
            return None
        if func.attr in _BLOCKING_SIMPLE:
            return f"{receiver or '<expr>'}.{func.attr}()"
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in _BLOCKING_MODULES
        ):
            return f"{func.value.id}.{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in _BLOCKING_SIMPLE:
        return f"{func.id}()"
    return None


def _walk_same_frame(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function or lambda
    bodies — code defined under a lock runs later, off the lock."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


@rule(
    rule_id="C101",
    family="concurrency",
    summary=(
        "blocking call inside a `with <lock>:` body stalls every thread "
        "contending for that lock"
    ),
    scope=_SERVICE_SCOPE,
)
def check_blocking_under_lock(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(
            _looks_like_lock(item.context_expr) for item in node.items
        ):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in [stmt, *_walk_same_frame(stmt)]:
                if not isinstance(sub, ast.Call):
                    continue
                reason = _blocking_reason(sub)
                if reason is not None:
                    yield Finding(
                        rule="C101",
                        file=source.rel,
                        line=sub.lineno,
                        message=(
                            f"{reason} blocks while holding a lock; "
                            "release the lock first or bound the wait"
                        ),
                    )


@rule(
    rule_id="C102",
    family="concurrency",
    summary=(
        "untimed queue get blocks its thread forever if the producer "
        "dies; pass a timeout (or suppress for intentional idle waits)"
    ),
    scope=_SERVICE_SCOPE,
)
def check_untimed_queue_get(source: SourceFile) -> Iterator[Finding]:
    parents = source.parent_map()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Attribute) or node.attr != "get":
            continue
        receiver = _receiver_name(node)
        if receiver is None or not _QUEUEISH.search(receiver):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and parent.func is node:
            if _is_untimed_get_call(parent):
                yield Finding(
                    rule="C102",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        f"{receiver}.get() without a timeout never "
                        "observes producer death or cancellation; use "
                        "get(timeout=...) in a poll loop"
                    ),
                )
        else:
            # The bound method handed around as a value (e.g. to
            # run_in_executor) will be invoked with no arguments —
            # an untimed blocking get by construction.
            yield Finding(
                rule="C102",
                file=source.rel,
                line=node.lineno,
                message=(
                    f"{receiver}.get passed as a callable is an untimed "
                    "blocking get at its call site; wrap it in a "
                    "timeout-bounded poll"
                ),
            )


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter",
     "OrderedDict", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue"}
)


def _is_mutable_literal(value: ast.AST) -> str | None:
    if isinstance(value, ast.List):
        return "list"
    if isinstance(value, ast.Dict):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.ListComp, ast.DictComp)):
        return "comprehension"
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _MUTABLE_CTORS:
            return f"{name}()"
    return None


@rule(
    rule_id="C103",
    family="concurrency",
    summary=(
        "mutable class-level attribute on a service class is shared by "
        "every instance and thread; initialize it in __init__"
    ),
    scope=_SERVICE_SCOPE,
)
def check_mutable_class_state(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                # dataclass `x: list = field(default_factory=list)` is
                # per-instance; a bare mutable default is not (and
                # @dataclass itself rejects it at class-creation time,
                # but only if the module is ever imported).
                annotation = ast.dump(stmt.annotation)
                if "ClassVar" in annotation:
                    target, value = stmt.target, stmt.value
                else:
                    candidate = _is_mutable_literal(stmt.value)
                    if candidate is not None and not (
                        isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Name)
                        and stmt.value.func.id == "field"
                    ):
                        target, value = stmt.target, stmt.value
            if target is None or value is None:
                continue
            if not isinstance(target, ast.Name):
                continue
            kind = _is_mutable_literal(value)
            if kind is not None:
                yield Finding(
                    rule="C103",
                    file=source.rel,
                    line=stmt.lineno,
                    message=(
                        f"class-level {kind} on {node.name}.{target.id} "
                        "is one object shared across instances and "
                        "threads; create it in __init__"
                    ),
                )
