"""Determinism rules (D1xx): the RNG-stream contract, statically.

The engine's bit-identity claim — equal plans yield equal results on
every executor, and the seed is the only randomness — survives exactly
as long as every random draw flows from an explicit seed through the
stream allocation in :mod:`repro.simulation.rng` (node streams
``0..n-1``, channel stream child ``n``, provider-owned topology seeds).
One stray ``np.random.rand`` (hidden global stream), one unseeded
``default_rng()`` (OS entropy), or one ``time.time()``-derived seed
breaks the contract silently: results still *look* plausible, they are
just no longer reproducible or executor-identical.  These rules make
each of those spellings a lint error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, SourceFile, rule

__all__ = [
    "numpy_aliases",
    "check_np_random_module_functions",
    "check_stdlib_random",
    "check_unseeded_generators",
    "check_time_derived_seeds",
]

_CODE_ROOTS = ("src", "scripts", "benchmarks", "examples")

#: numpy.random names that are part of the *seeded* generator API; every
#: other attribute of the module is either a legacy global-stream
#: function (``rand``, ``seed``, ``randint``, ...) or the legacy
#: ``RandomState`` machinery, both banned.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Bit-generator constructors: unseeded construction draws OS entropy,
#: exactly like ``default_rng()``.
_BIT_GENERATORS = frozenset(
    {"PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

#: The one module allowed to own generator-construction policy.
_RNG_MODULE = "src/repro/simulation/rng.py"

#: Wall-clock sources that must never feed a seed.
_CLOCK_CALLS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "now", "utcnow"}
)


def numpy_aliases(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """Names bound to numpy, numpy.random, and from-imported members.

    Returns ``(numpy_names, numpy_random_names, member_names)`` where
    ``member_names`` are local bindings of ``numpy.random`` attributes
    (``from numpy.random import default_rng [as X]``), mapped back to
    their original member name via the returned set of ``local->orig``
    pairs encoded as ``"local:orig"`` strings kept flat for cheap
    membership checks by callers that only need the locals.
    """
    numpy_names: set[str] = set()
    random_names: set[str] = set()
    members: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    # `import numpy.random` binds `numpy`; an asname
                    # binds the submodule directly.
                    if alias.asname:
                        random_names.add(alias.asname)
                    else:
                        numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    members.add(f"{alias.asname or alias.name}:{alias.name}")
    return numpy_names, random_names, members


def _np_random_attr(
    node: ast.AST, numpy_names: set[str], random_names: set[str]
) -> str | None:
    """The member name when ``node`` is ``<numpy>.random.X`` or
    ``<numpy.random alias>.X``; None otherwise."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name) and value.id in random_names:
        return node.attr
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_names
    ):
        return node.attr
    return None


@rule(
    rule_id="D101",
    family="determinism",
    summary=(
        "np.random module-level functions draw from the hidden global "
        "stream; use an explicitly seeded Generator"
    ),
    scope=_CODE_ROOTS,
)
def check_np_random_module_functions(source: SourceFile) -> Iterator[Finding]:
    numpy_names, random_names, members = numpy_aliases(source.tree)
    for node in ast.walk(source.tree):
        member = _np_random_attr(node, numpy_names, random_names)
        if member is not None and member not in _NP_RANDOM_ALLOWED:
            yield Finding(
                rule="D101",
                file=source.rel,
                line=node.lineno,
                message=(
                    f"np.random.{member} uses numpy's hidden global "
                    "stream; draw from an explicitly seeded "
                    "np.random.Generator (see repro.simulation.rng)"
                ),
            )
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_ALLOWED:
                    yield Finding(
                        rule="D101",
                        file=source.rel,
                        line=node.lineno,
                        message=(
                            f"from numpy.random import {alias.name} binds "
                            "a hidden-global-stream function; use the "
                            "seeded Generator API"
                        ),
                    )
    del members  # from-imports of allowed members are fine as-is


@rule(
    rule_id="D102",
    family="determinism",
    summary=(
        "stdlib random is process-global and unseeded; library code "
        "must draw from the trial's numpy streams"
    ),
    scope=("src",),
)
def check_stdlib_random(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    yield Finding(
                        rule="D102",
                        file=source.rel,
                        line=node.lineno,
                        message=(
                            "stdlib random is a process-global stream the "
                            "RNG contract cannot account for; use the "
                            "trial's numpy generators "
                            "(repro.simulation.rng)"
                        ),
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and (
                node.module == "random" or node.module.startswith("random.")
            ):
                yield Finding(
                    rule="D102",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        "stdlib random is a process-global stream the RNG "
                        "contract cannot account for; use the trial's "
                        "numpy generators (repro.simulation.rng)"
                    ),
                )


def _is_unseeded_call(call: ast.Call) -> bool:
    """No positional seed and no seed-carrying keyword: OS entropy."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    seedish = {"seed", "entropy", "spawn_key", "bit_generator"}
    return not any(
        kw.arg in seedish for kw in call.keywords if kw.arg is not None
    )


@rule(
    rule_id="D103",
    family="determinism",
    summary=(
        "unseeded generator construction draws OS entropy; only "
        "repro/simulation/rng.py owns construction policy"
    ),
    scope=_CODE_ROOTS,
)
def check_unseeded_generators(source: SourceFile) -> Iterator[Finding]:
    if source.rel == _RNG_MODULE:
        return
    numpy_names, random_names, members = numpy_aliases(source.tree)
    local_ctors = {
        pair.split(":")[0]: pair.split(":")[1]
        for pair in members
        if pair.split(":")[1]
        in (_BIT_GENERATORS | {"default_rng", "SeedSequence"})
    }
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        member = _np_random_attr(func, numpy_names, random_names)
        if member is None and isinstance(func, ast.Name):
            member = local_ctors.get(func.id)
        if member is None:
            continue
        if member in (_BIT_GENERATORS | {"default_rng", "SeedSequence"}):
            if _is_unseeded_call(node):
                yield Finding(
                    rule="D103",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        f"{member}() without a seed draws OS entropy — "
                        "irreproducible by construction; pass an explicit "
                        "seed (stream allocation lives in "
                        "repro.simulation.rng)"
                    ),
                )


def _mentions_clock(node: ast.AST) -> str | None:
    """The clock call inside ``node``'s subtree, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _CLOCK_CALLS:
            return name
    return None


@rule(
    rule_id="D104",
    family="determinism",
    summary=(
        "wall-clock-derived seeds make results a function of when the "
        "run happened; seeds must be explicit plan inputs"
    ),
    scope=_CODE_ROOTS,
)
def check_time_derived_seeds(source: SourceFile) -> Iterator[Finding]:
    numpy_names, random_names, members = numpy_aliases(source.tree)
    local_ctors = {pair.split(":")[0] for pair in members}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_rng_call = _np_random_attr(
            func, numpy_names, random_names
        ) is not None or (
            isinstance(func, ast.Name) and func.id in local_ctors
        )
        seed_exprs: list[ast.AST] = []
        if is_rng_call:
            seed_exprs.extend(node.args)
            seed_exprs.extend(
                kw.value for kw in node.keywords if kw.arg is not None
            )
        else:
            # Any call taking a seed= keyword (deployment builders,
            # plan constructors, harness helpers).
            seed_exprs.extend(
                kw.value
                for kw in node.keywords
                if kw.arg in ("seed", "master_seed")
            )
        for expr in seed_exprs:
            clock = _mentions_clock(expr)
            if clock is not None:
                yield Finding(
                    rule="D104",
                    file=source.rel,
                    line=node.lineno,
                    message=(
                        f"seed derived from {clock}() ties results to "
                        "the wall clock; seeds must be explicit, "
                        "recorded plan inputs"
                    ),
                )
                break
