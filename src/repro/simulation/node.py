"""Node automaton base class and the runtime-facing API.

A :class:`ProtocolNode` is an event-driven automaton (paper §4.4): the
runtime calls

* :meth:`ProtocolNode.on_wake` once, when the node first participates,
* :meth:`ProtocolNode.on_slot` each slot while awake — the node returns a
  payload to transmit or ``None`` to listen,
* :meth:`ProtocolNode.on_receive` when a listened slot decoded a message.

Sleeping nodes (conditional wakeup, Definition 4.4) are pure listeners:
they transmit nothing, but a successful decode wakes them.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["NodeAPI", "ProtocolNode"]


class NodeAPI:
    """Capabilities the runtime hands to each node.

    Deliberately narrow: a node can read its id, the current slot, draw
    randomness, emit trace events, and request its own wakeup state.  It
    cannot see positions, other nodes, or the channel — matching the
    paper's assumptions (unknown positions, no carrier sensing, §4.6).
    """

    def __init__(self, node_id: int, rng: np.random.Generator, runtime) -> None:
        self.node_id = node_id
        self.rng = rng
        self._runtime = runtime

    @property
    def slot(self) -> int:
        """Current slot index."""
        return self._runtime.slot

    def emit(self, kind: str, data: Any = None) -> None:
        """Record a protocol-level trace event at this node."""
        self._runtime.trace.record(self._runtime.slot, kind, self.node_id, data)

    def random(self) -> float:
        """Uniform float in [0, 1) from this node's private source."""
        return float(self.rng.random())

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] from this node's private source."""
        return int(self.rng.integers(low, high + 1))


class ProtocolNode:
    """Base class for protocol automata.

    Subclasses override the three hooks.  The default implementation is an
    inert listener, which is a legal (if useless) protocol.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.api: NodeAPI | None = None
        self.awake = False

    def bind(self, api: NodeAPI) -> None:
        """Called once by the runtime before the first slot."""
        self.api = api

    # -- hooks ----------------------------------------------------------

    def on_wake(self) -> None:
        """Called when the node starts participating (Definition 4.4)."""

    def on_slot(self, slot: int) -> Any | None:
        """Decide this slot's action: return a payload to transmit it,
        or ``None`` to listen."""
        return None

    def on_receive(self, slot: int, sender: int, payload: Any) -> None:
        """Called when this node decoded ``payload`` from ``sender``."""

    # -- helpers ---------------------------------------------------------

    def wake(self) -> None:
        """Transition to awake, firing :meth:`on_wake` exactly once."""
        if not self.awake:
            self.awake = True
            if self.api is not None:
                self.api.emit("wake")
            self.on_wake()
