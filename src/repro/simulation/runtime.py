"""The slot-synchronous runtime.

Advances a population of :class:`~repro.simulation.node.ProtocolNode`
automata in lockstep over a :class:`~repro.sinr.channel.Channel`:

1. each awake node chooses transmit/listen for the slot,
2. the channel resolves the slot with the SINR rule,
3. receptions are delivered; sleeping receivers are woken first
   (conditional wakeup, Definition 4.4).

The runtime also exposes ``run_until`` so experiments can stop on
arbitrary predicates (e.g. "all nodes delivered message m").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.simulation.node import NodeAPI, ProtocolNode
from repro.simulation.rng import spawn_node_rngs
from repro.simulation.trace import EventTrace
from repro.sinr.channel import Channel

__all__ = ["Runtime", "RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Runtime options.

    Attributes
    ----------
    seed:
        Master seed for all node randomness.
    max_slots:
        Hard safety cap; ``run_until`` raises if exceeded, so broken
        protocols fail loudly instead of spinning forever.
    record_physical:
        When True, every physical transmit/receive is traced (heavier but
        needed by the spec checker and the channel-utilization metrics).
    """

    seed: int | None = 0
    max_slots: int = 2_000_000
    record_physical: bool = True


class Runtime:
    """Lockstep executor binding nodes to a channel."""

    def __init__(
        self,
        channel: Channel,
        nodes: Sequence[ProtocolNode],
        config: RuntimeConfig | None = None,
    ) -> None:
        if len(nodes) != channel.n:
            raise ValueError(
                f"node count {len(nodes)} != channel size {channel.n}"
            )
        ids = sorted(node.node_id for node in nodes)
        if ids != list(range(len(nodes))):
            raise ValueError("node ids must be exactly 0..n-1")
        self.channel = channel
        self.config = config or RuntimeConfig()
        self.trace = EventTrace()
        self.slot = 0
        self.nodes: list[ProtocolNode] = sorted(nodes, key=lambda x: x.node_id)
        rngs = spawn_node_rngs(len(nodes), self.config.seed)
        for node, rng in zip(self.nodes, rngs):
            node.bind(NodeAPI(node.node_id, rng, self))
        # Arm the stochastic channel model (no-op when inactive) with
        # the same master seed: the channel stream is child n of the
        # seed sequence, independent of every node stream above.
        channel.bind_trial_seed(self.config.seed)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def wake_node(self, node_id: int) -> None:
        """Environment input that wakes a node (e.g. a bcast request)."""
        self.nodes[node_id].wake()

    def wake_all(self) -> None:
        """Wake every node (synchronous-start experiments, lower bounds)."""
        for node in self.nodes:
            node.wake()

    def collect_transmissions(self) -> dict[int, Any]:
        """Phase 1 of a slot: every awake node decides transmit/listen.

        Records transmit trace events; does not advance the slot counter.
        Split from :meth:`step` so the batched experiment engine can
        gather many trials' transmitter sets, resolve all their SINR
        physics in one reduction, and then deliver each trial's outcome
        with :meth:`deliver_outcome`.
        """
        transmissions: dict[int, Any] = {}
        alive = self.channel.alive
        for node in self.nodes:
            if not node.awake:
                continue
            # Churn: a crashed node's automaton is frozen — no on_slot
            # call, no RNG draw, no transmission — until it recovers.
            if alive is not None and not alive[node.node_id]:
                continue
            payload = node.on_slot(self.slot)
            if payload is not None:
                transmissions[node.node_id] = payload
                if self.config.record_physical:
                    self.trace.record(
                        self.slot, "transmit", node.node_id, payload
                    )
        return transmissions

    def deliver_outcome(self, outcome) -> dict[int, tuple[int, Any]]:
        """Phase 2 of a slot: deliver a resolved outcome's receptions.

        Wakes sleeping receivers (conditional wakeup, Definition 4.4),
        records receive trace events, and advances the slot counter.
        """
        for listener, (sender, payload) in outcome.receptions.items():
            node = self.nodes[listener]
            # Conditional wakeup: the decode itself wakes a sleeping node.
            node.wake()
            if self.config.record_physical:
                self.trace.record(
                    self.slot, "receive", listener, (sender, payload)
                )
            node.on_receive(self.slot, sender, payload)
        self.slot += 1
        return outcome.receptions

    def step(self) -> dict[int, tuple[int, Any]]:
        """Advance one slot; return the slot's receptions.

        Dynamic topology (mobility/churn) advances first — the epoch
        contract of :meth:`~repro.sinr.channel.Channel.advance_topology`
        puts every scheduled change before the slot's transmit
        decisions, on every executor.
        """
        self.channel.advance_topology(self.slot)
        transmissions = self.collect_transmissions()
        outcome = self.channel.resolve_slot(transmissions)
        return self.deliver_outcome(outcome)

    def run(self, slots: int) -> None:
        """Advance a fixed number of slots."""
        if slots < 0:
            raise ValueError("slots must be >= 0")
        for _ in range(slots):
            self._check_budget()
            self.step()

    def run_until(
        self,
        predicate: Callable[["Runtime"], bool],
        check_every: int = 1,
    ) -> int:
        """Advance until ``predicate(self)`` holds; return the slot count.

        Raises ``RuntimeError`` when ``config.max_slots`` is exhausted, so
        a livelocked protocol surfaces as a test failure rather than a
        hang.
        """
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        while not predicate(self):
            for _ in range(check_every):
                self._check_budget()
                self.step()
        return self.slot

    def _check_budget(self) -> None:
        if self.slot >= self.config.max_slots:
            raise RuntimeError(
                f"slot budget exhausted ({self.config.max_slots}); "
                "protocol appears not to terminate"
            )
