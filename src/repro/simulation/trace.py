"""Execution traces.

Every externally visible event of a run — transmissions, receptions,
wakeups, MAC-layer events (bcast/rcv/ack/abort), protocol outputs — is
recorded as a :class:`TraceEvent`.  The spec-conformance checker
(:mod:`repro.core.spec`) and all latency measurements operate on traces,
decoupling measurement from protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, NamedTuple

__all__ = ["TraceEvent", "EventTrace"]


class TraceEvent(NamedTuple):
    """One timestamped event.

    A NamedTuple rather than a (frozen) dataclass: traces append one of
    these per transmission/reception, so construction cost is a
    measurable slice of every simulation's slot loop, and tuple
    construction is several times cheaper than frozen-dataclass field
    assignment.  Still immutable, hashable and field-accessed by name.

    Attributes
    ----------
    slot:
        Slot index at which the event occurred.
    kind:
        Event type tag, e.g. ``"transmit"``, ``"receive"``, ``"wake"``,
        ``"bcast"``, ``"rcv"``, ``"ack"``, ``"abort"``, ``"decide"``.
    node:
        Node id the event happened at.
    data:
        Event-specific payload (message id, sender id, value, ...).
    """

    slot: int
    kind: str
    node: int
    data: Any = None


@dataclass
class EventTrace:
    """Append-only list of :class:`TraceEvent` with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, slot: int, kind: str, node: int, data: Any = None) -> None:
        """Append one event.

        Uses ``TraceEvent._make`` (plain ``tuple.__new__``) rather than
        the namedtuple constructor: record() runs once per transmission
        and reception, and the constructor's keyword/default machinery
        measurably taxes million-event simulations.
        """
        self.events.append(TraceEvent._make((slot, kind, node, data)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events with the given kind, in slot order."""
        return [e for e in self.events if e.kind == kind]

    def at_node(self, node: int) -> list[TraceEvent]:
        """All events at the given node, in slot order."""
        return [e for e in self.events if e.node == node]

    def first(
        self, kind: str, predicate: Callable[[TraceEvent], bool] | None = None
    ) -> TraceEvent | None:
        """Earliest event of ``kind`` satisfying ``predicate`` (if any)."""
        for event in self.events:
            if event.kind == kind and (predicate is None or predicate(event)):
                return event
        return None

    def last_slot(self) -> int:
        """Slot of the latest event; -1 for an empty trace."""
        if not self.events:
            return -1
        return max(e.slot for e in self.events)

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self.events if e.kind == kind)
