"""Slot-synchronous distributed-protocol simulator.

Nodes are event-driven automata (paper §4.4) advanced in lockstep slots;
the channel resolves concurrent transmissions with the SINR rule.
Conditional (non-spontaneous) wakeup per Definition 4.4 is built in: a
sleeping node participates only as a listener and is woken by its first
received message or by an explicit environment input.
"""

from repro.simulation.node import ProtocolNode, NodeAPI
from repro.simulation.runtime import Runtime, RuntimeConfig
from repro.simulation.trace import EventTrace, TraceEvent
from repro.simulation.rng import spawn_node_rngs, spawn_trial_seeds

__all__ = [
    "ProtocolNode",
    "NodeAPI",
    "Runtime",
    "RuntimeConfig",
    "EventTrace",
    "TraceEvent",
    "spawn_node_rngs",
    "spawn_trial_seeds",
]
