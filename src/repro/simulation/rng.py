"""Per-node random sources.

The paper assumes each node has private access to a perfect random source
(§4.6).  We realize this with independent numpy generators spawned from a
single seed sequence, so whole experiments are reproducible from one seed
while nodes remain statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_node_rngs"]


def spawn_node_rngs(n: int, seed: int | None = 0) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
