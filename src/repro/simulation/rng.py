"""Per-node random sources.

The paper assumes each node has private access to a perfect random source
(§4.6).  We realize this with independent numpy generators spawned from a
single seed sequence, so whole experiments are reproducible from one seed
while nodes remain statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_node_rngs", "spawn_trial_seeds"]


def spawn_node_rngs(n: int, seed: int | None = 0) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def spawn_trial_seeds(n: int, seed: int | None = 0) -> list[int]:
    """Deterministic per-trial master seeds for multi-trial experiments.

    Spawns ``n`` children of ``SeedSequence(seed)`` and collapses each to
    a single integer, which becomes one trial's master seed (feeding
    :func:`spawn_node_rngs` inside that trial).  Trial ``t``'s seed is a
    pure function of ``(seed, t)``, so results are identical no matter
    how trials are batched, ordered, or distributed over worker
    processes — the statistical independence of the per-node sources
    (§4.6) extends to independence *across trials*.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in seq.spawn(n)
    ]
