"""Per-node random sources.

The paper assumes each node has private access to a perfect random source
(§4.6).  We realize this with independent numpy generators spawned from a
single seed sequence, so whole experiments are reproducible from one seed
while nodes remain statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spawn_node_rngs",
    "spawn_channel_rng",
    "spawn_trial_seeds",
    "NodeUniformBuffer",
    "LinkUniformBuffer",
]


def spawn_node_rngs(n: int, seed: int | None = 0) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def spawn_channel_rng(n: int, seed: int | None = 0) -> np.random.Generator:
    """The trial's *channel* stream: child ``n`` of the master sequence.

    ``SeedSequence.spawn`` keys children purely by index, so spawning
    ``n + 1`` children of a fresh ``SeedSequence(seed)`` yields exactly
    the ``n`` node streams of :func:`spawn_node_rngs` plus one more,
    statistically independent of all of them.  The extra stream feeds
    the stochastic channel model
    (:class:`~repro.sinr.params.ChannelModel`): fading and shadowing
    draws never touch a node's private generator, so enabling the model
    perturbs *only* the physics — every node still sees the exact
    protocol-randomness stream it would see on a deterministic channel,
    and disabling the model costs zero draws.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    # Identical to SeedSequence(seed).spawn(n + 1)[n] — spawn() keys
    # child i as spawn_key=(i,) — without materializing the n node
    # children this caller does not want.
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(n,)))


def spawn_trial_seeds(n: int, seed: int | None = 0) -> list[int]:
    """Deterministic per-trial master seeds for multi-trial experiments.

    Spawns ``n`` children of ``SeedSequence(seed)`` and collapses each to
    a single integer, which becomes one trial's master seed (feeding
    :func:`spawn_node_rngs` inside that trial).  Trial ``t``'s seed is a
    pure function of ``(seed, t)``, so results are identical no matter
    how trials are batched, ordered, or distributed over worker
    processes — the statistical independence of the per-node sources
    (§4.6) extends to independence *across trials*.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in seq.spawn(n)
    ]


class NodeUniformBuffer:
    """Bulk pre-draw of per-node uniforms, stream-identical to scalar draws.

    The columnar fast path (:mod:`repro.vectorized`) needs one uniform
    per *owned slot* per node, exactly as the object runtime draws them
    — node ``i``'s k-th vectorized draw must be the same float its
    ``Generator.random()`` would have produced on its k-th owned slot,
    or the fast path stops being decode-for-decode identical.

    This buffer wraps one generator per node and refills each node's
    lane ``chunk`` values at a time with ``Generator.random(chunk)``,
    which emits the same float64 stream as ``chunk`` successive scalar
    ``random()`` calls (each double consumes one 64-bit PCG64 output on
    either path; ``tests/test_vectorized_equivalence.py`` pins this).
    :meth:`take` then serves a whole population's draws for one slot as
    a single fancy-indexed gather instead of N Python method calls.
    """

    # The buffer costs lanes × chunk × 8 bytes; beyond this ceiling the
    # chunk auto-scales down (draw streams are chunk-independent, so
    # only refill frequency changes) instead of letting a huge
    # population sweep allocate hundreds of MB of pre-drawn uniforms.
    MAX_BUFFER_BYTES = 64 << 20

    def __init__(self, rngs, chunk: int = 512) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._rngs = list(rngs)
        lanes = len(self._rngs)
        if lanes:
            cap = max(8, self.MAX_BUFFER_BYTES // (lanes * 8))
            chunk = min(int(chunk), cap)
        self.chunk = int(chunk)
        self._buf = np.empty((lanes, self.chunk), dtype=np.float64)
        # All lanes start exhausted; they fill lazily on first use so
        # nodes that never draw (asleep / never broadcasting) cost
        # nothing and leave their generator untouched.
        self._cursor = np.full(lanes, self.chunk, dtype=np.intp)

    def __len__(self) -> int:
        return len(self._rngs)

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Next uniform of each indexed lane, aligned with ``indices``.

        ``indices`` must not repeat a lane within one call (a node owns
        at most one draw per slot); across calls, each lane's values
        appear in exactly its generator's scalar stream order.
        """
        idx = np.asarray(indices, dtype=np.intp)
        exhausted = idx[self._cursor[idx] >= self.chunk]
        if exhausted.size:
            self.refill(exhausted)
        out = self._buf[idx, self._cursor[idx]]
        self._cursor[idx] += 1
        return out

    def refill(self, lanes: np.ndarray) -> None:
        """Refill ``lanes`` whole-chunk, exactly as :meth:`take` would.

        The native backend (:mod:`repro.native`) consumes buffered
        uniforms directly from ``_buf``/``_cursor`` and calls back here
        when a stepping lane runs dry mid-batch; each refill is the same
        ``Generator.random(chunk)`` call :meth:`take` performs, so the
        lane's stream position stays identical across backends.
        """
        for lane in np.asarray(lanes, dtype=np.intp).tolist():
            self._buf[lane] = self._rngs[lane].random(self.chunk)
            self._cursor[lane] = 0


class LinkUniformBuffer:
    """Bulk pre-draw of per-link uniforms from one channel generator.

    The per-link companion of :class:`NodeUniformBuffer`: Rayleigh
    fading needs ``k·n`` fresh uniforms per slot (one per (transmitter,
    listener) pair), and drawing them as thousands of tiny
    ``Generator.random(k·n)`` calls per trial wastes time on generator
    re-entry for the small-``k`` slots that dominate the long
    probability sweeps.  This buffer refills ``chunk`` values at a time
    and serves arbitrary-size takes from the buffered tail.

    The served stream is *chunk-independent*: ``Generator.random``
    consumes exactly one 64-bit PCG64 output per float64, so any
    partition of the stream into refills yields the same values in the
    same order.  Both runtimes draw a trial's fading through the same
    :class:`~repro.sinr.channel.Channel` (object: per-slot resolution;
    columnar: per-trial blocks of the batched kernel), which is what
    keeps fading trials decode-for-decode identical across executors.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 1 << 14) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._rng = rng
        self.chunk = int(chunk)
        self._buf = np.empty(0, dtype=np.float64)
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` uniforms of the channel stream, in order.

        May return a view into the current buffer; refills always
        allocate a *fresh* buffer (never overwrite in place), so
        previously returned arrays stay valid indefinitely.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        avail = self._buf.size - self._cursor
        if count <= avail:
            out = self._buf[self._cursor : self._cursor + count]
            self._cursor += count
            return out
        parts = [self._buf[self._cursor :]] if avail else []
        remaining = count - avail
        # One direct draw covers an oversized tail (stream-identical to
        # any chunking of it); the buffer then refills for future takes.
        if remaining >= self.chunk:
            parts.append(self._rng.random(remaining))
            self._buf = np.empty(0, dtype=np.float64)
            self._cursor = 0
        else:
            self._buf = self._rng.random(self.chunk)
            parts.append(self._buf[:remaining])
            self._cursor = remaining
        return np.concatenate(parts) if len(parts) > 1 else parts[0]
