"""Abstract MAC layer service interface.

The plug-and-play promise of the absMAC theory (paper §1, §2.2) is that
higher-level algorithms are written once against the MAC interface and
then run over *any* implementation.  This package defines that interface
(:class:`MacLayerBase`, :class:`MacClient`) and provides an idealized
graph-based implementation (:class:`IdealMacLayer`) so the higher-level
protocols can be tested independently of the SINR machinery.
"""

from repro.absmac.layer import MacClient, MacLayerBase
from repro.absmac.ideal import IdealMacConfig, IdealMacLayer

__all__ = [
    "MacClient",
    "MacLayerBase",
    "IdealMacConfig",
    "IdealMacLayer",
]
