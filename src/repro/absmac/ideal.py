"""An idealized graph-based absMAC for testing higher layers.

Delivers every broadcast to all graph neighbors after a configurable
latency, optionally failing each delivery independently — i.e. it *is*
the abstract specification, realized directly instead of implemented
over a radio.  Higher-level protocols (BSMB, BMMB, consensus) are
developed and unit-tested against this layer, then re-run unchanged over
the real SINR implementations; agreement between the two runs is itself
a test of the implementations (the plug-and-play property of §1).

Mechanically it is still a :class:`~repro.simulation.node.ProtocolNode`
population, but deliveries bypass the SINR channel: a shared
:class:`IdealMacNetwork` moves messages between nodes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import networkx as nx
import numpy as np

from repro.absmac.layer import MacClient, MacLayerBase
from repro.core.events import BcastMessage, MessageRegistry

__all__ = ["IdealMacConfig", "IdealMacLayer", "IdealMacNetwork"]


@dataclass(frozen=True)
class IdealMacConfig:
    """Timing/reliability envelope of the ideal layer.

    Attributes
    ----------
    ack_latency:
        Slots between bcast and ack (the layer's f_ack, deterministic).
    rcv_latency:
        Slots between bcast and neighbor delivery (f_prog <= f_ack).
    delivery_probability:
        Independent per-neighbor success probability; 1.0 gives the
        deterministic absMAC, less exercises the probabilistic one.
    """

    ack_latency: int = 4
    rcv_latency: int = 2
    delivery_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.rcv_latency < 1 or self.ack_latency < self.rcv_latency:
            raise ValueError("need 1 <= rcv_latency <= ack_latency")
        if not 0.0 < self.delivery_probability <= 1.0:
            raise ValueError("delivery_probability must be in (0, 1]")


class IdealMacNetwork:
    """Shared delivery fabric for a population of ideal MAC nodes."""

    def __init__(
        self,
        graph: nx.Graph,
        config: IdealMacConfig,
        seed: int | None = 0,
    ) -> None:
        self.graph = graph
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.nodes: dict[int, "IdealMacLayer"] = {}
        # slot -> list of (kind, node, message); kind in {"rcv", "ack"}.
        self._pending: dict[int, list[tuple[str, int, BcastMessage]]] = {}
        self._last_drive = -1

    def drive(self, slot: int) -> None:
        """Fire due deliveries once per slot (first awake node drives)."""
        if self._last_drive < slot:
            self._last_drive = slot
            self.deliver_due(slot)

    def register(self, node: "IdealMacLayer") -> None:
        """Attach a MAC node to the fabric."""
        self.nodes[node.node_id] = node

    def submit(self, slot: int, message: BcastMessage) -> None:
        """Schedule neighbor deliveries and the ack for a new broadcast."""
        cfg = self.config
        for neighbor in self.graph.neighbors(message.origin):
            if (
                cfg.delivery_probability >= 1.0
                or self.rng.random() < cfg.delivery_probability
            ):
                self._pending.setdefault(slot + cfg.rcv_latency, []).append(
                    ("rcv", neighbor, message)
                )
        self._pending.setdefault(slot + cfg.ack_latency, []).append(
            ("ack", message.origin, message)
        )

    def deliver_due(self, slot: int) -> None:
        """Fire all deliveries scheduled for ``slot``."""
        for kind, node_id, message in self._pending.pop(slot, []):
            node = self.nodes.get(node_id)
            if node is None:
                continue
            if kind == "rcv":
                node.wake()
                node._deliver(slot, message)
            elif kind == "ack" and node.current is message:
                node._acknowledge(slot)


class IdealMacLayer(MacLayerBase):
    """MAC node whose behaviour is the abstract spec itself."""

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        network: IdealMacNetwork,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id, registry, client)
        self.network = network
        self._unsubmitted: BcastMessage | None = None
        network.register(self)

    def _start_broadcast(self, message: BcastMessage) -> None:
        # Submission happens on the next slot tick so that bcasts issued
        # before the runtime starts are still scheduled consistently.
        self._unsubmitted = message

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        pass

    def on_slot(self, slot: int) -> Any | None:
        if self._unsubmitted is not None:
            self.network.submit(slot, self._unsubmitted)
            self._unsubmitted = None
        self.network.drive(slot)
        return None  # the ideal layer never touches the radio
