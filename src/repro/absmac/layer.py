"""The absMAC service interface (paper §4.4).

A MAC layer node accepts ``bcast`` requests from its client (the layer
above), and calls the client back with ``rcv`` and ``ack`` events.  The
enhanced-layer ``abort`` input is supported too.

All concrete MAC implementations in this repository
(:class:`~repro.core.combined.CombinedMacLayer`,
:class:`~repro.core.ack_protocol.AckMacLayer`,
:class:`~repro.core.approx_progress.ApproxProgressMacLayer`,
:class:`~repro.core.decay.DecayMacLayer`,
:class:`~repro.absmac.ideal.IdealMacLayer`) subclass
:class:`MacLayerBase`, so higher-level protocols (BSMB, BMMB, consensus)
run unchanged over any of them — the paper's plug-and-play property.

The columnar fast path realizes the same event vocabulary over whole
populations at once: a
:class:`~repro.vectorized.protocols.VectorMacAdapter` reports
wake/rcv/ack as cell index arrays and accepts batched ``bcast``
requests, so the protocol layer stays MAC-agnostic there too.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import BcastMessage, MessageRegistry
from repro.simulation.node import ProtocolNode

__all__ = ["MacClient", "MacLayerBase"]


class MacClient:
    """Callbacks a higher-level protocol receives from its MAC node.

    Subclass and override; the default implementations ignore events.
    One client instance serves one node.
    """

    def on_mac_start(self, mac: "MacLayerBase") -> None:
        """Called once when the MAC node wakes (Definition 4.4)."""

    def on_rcv(self, slot: int, message: BcastMessage) -> None:
        """A new message was delivered at this node (rcv event)."""

    def on_ack(self, slot: int, message: BcastMessage) -> None:
        """This node's broadcast of ``message`` completed (ack event)."""


class MacLayerBase(ProtocolNode):
    """Common machinery for MAC implementations.

    Responsibilities handled here so implementations stay small:

    * minting unique messages through a shared :class:`MessageRegistry`,
    * the single-in-flight-broadcast rule of [37] (a node broadcasts one
      message at a time; ``busy`` exposes the state),
    * rcv de-duplication (each unique message is delivered at most once
      per node),
    * trace events ``bcast`` / ``rcv`` / ``ack`` / ``abort`` with the
      message id as data, which the spec checker consumes.

    Subclasses implement :meth:`_start_broadcast`, :meth:`_stop_broadcast`
    and the slot behaviour, and call :meth:`_deliver` /
    :meth:`_acknowledge` when the corresponding events fire.
    """

    def __init__(
        self,
        node_id: int,
        registry: MessageRegistry,
        client: MacClient | None = None,
    ) -> None:
        super().__init__(node_id)
        self.registry = registry
        self.client = client or MacClient()
        self.current: BcastMessage | None = None
        self.delivered_mids: set[int] = set()
        self.acked_mids: set[int] = set()
        # Remark 4.6 (exact local broadcast): when the platform can
        # detect the range a message originated from, the MAC may
        # discard messages from non-G_{1-eps}-neighbors so that rcv
        # events fire for exactly the communication graph.  The oracle
        # is a predicate on the *transmitting* node id; None (the
        # default, matching the paper's main setting) accepts all.
        self.neighbor_oracle = None

    def _sender_in_range(self, sender: int) -> bool:
        """Remark 4.6 filter: may this physical sender produce a rcv?"""
        if self.neighbor_oracle is None:
            return True
        return bool(self.neighbor_oracle(sender))

    # -- environment-facing API ------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a broadcast is in flight (bcast'ed, not yet acked)."""
        return self.current is not None

    def bcast(self, payload: Any = None) -> BcastMessage:
        """Input bcast(m): begin local broadcast of a fresh message.

        Wakes the node if asleep.  At most one broadcast may be in flight
        (matching [37]); a second concurrent request is a caller bug.
        """
        if self.busy:
            raise RuntimeError(
                f"node {self.node_id} already broadcasting {self.current}"
            )
        message = self.registry.mint(self.node_id, payload)
        self.wake()
        self.current = message
        if self.api is not None:
            self.api.emit("bcast", message.mid)
        self._start_broadcast(message)
        return message

    def abort(self) -> None:
        """Input abort(m): cancel the in-flight broadcast (enhanced MAC).

        No ack will be delivered for the aborted message.
        """
        if not self.busy:
            return
        message = self.current
        self.current = None
        if self.api is not None:
            self.api.emit("abort", message.mid)
        self._stop_broadcast(message, aborted=True)

    # -- implementation-facing hooks --------------------------------------

    def _start_broadcast(self, message: BcastMessage) -> None:
        """Subclass hook: a new broadcast became active."""

    def _stop_broadcast(self, message: BcastMessage, aborted: bool) -> None:
        """Subclass hook: the active broadcast ended (ack or abort)."""

    def _deliver(self, slot: int, message: BcastMessage) -> None:
        """Fire a rcv event for ``message`` unless already delivered.

        Deduplicates by message id: the absMAC delivers each unique
        message at most once per node.
        """
        if message.mid in self.delivered_mids:
            return
        if message.origin == self.node_id:
            return  # a node does not deliver its own broadcast
        self.delivered_mids.add(message.mid)
        if self.api is not None:
            self.api.emit("rcv", message.mid)
        self.client.on_rcv(slot, message)

    def _acknowledge(self, slot: int) -> None:
        """Fire the ack event for the in-flight broadcast."""
        if not self.busy:
            return
        message = self.current
        self.current = None
        self.acked_mids.add(message.mid)
        if self.api is not None:
            self.api.emit("ack", message.mid)
        self._stop_broadcast(message, aborted=False)
        self.client.on_ack(slot, message)

    # -- runtime hooks -----------------------------------------------------

    def on_wake(self) -> None:
        self.client.on_mac_start(self)
