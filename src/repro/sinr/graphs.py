"""SINR-induced connectivity graphs (paper §4.3).

``G_a = (V, E_a)`` connects two nodes iff their Euclidean distance is at
most ``R_a = a·R``.  The paper's communication graph is the *strong
connectivity graph* ``G_{1-ε}``; approximate progress is measured against
``G̃ = G_{1-2ε}``; the *weak* graph ``G_1`` bounds which messages can ever
be overheard.

These graphs drive all of the analysis-side quantities: degree Δ, diameter
D, and the length ratio Λ.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.geometry.points import PointSet, pairwise_distances
from repro.sinr.params import SINRParameters

__all__ = [
    "induced_graph",
    "strong_connectivity_graph",
    "weak_connectivity_graph",
    "approx_connectivity_graph",
    "link_length_ratio",
    "graph_degree",
    "graph_diameter",
    "require_connected",
]


def induced_graph(
    points: PointSet, params: SINRParameters, strength: float
) -> nx.Graph:
    """Build ``G_a`` for ``a = strength``: edges at distance <= a·R.

    Nodes are integers ``0..n-1`` with a ``pos`` attribute; edges carry
    their Euclidean ``length``.
    """
    if strength <= 0 or strength > 1:
        raise ValueError("strength must be in (0, 1]")
    radius = params.range_at(strength)
    dists = pairwise_distances(points.coords)
    graph = nx.Graph(strength=strength, radius=radius)
    for i in range(len(points)):
        graph.add_node(i, pos=points[i])
    upper = np.triu(dists <= radius, k=1)
    for i, j in zip(*np.nonzero(upper)):
        graph.add_edge(int(i), int(j), length=float(dists[i, j]))
    return graph


def strong_connectivity_graph(
    points: PointSet, params: SINRParameters
) -> nx.Graph:
    """G_{1-ε}: the graph in which local broadcast is implemented."""
    return induced_graph(points, params, 1.0 - params.epsilon)


def approx_connectivity_graph(
    points: PointSet, params: SINRParameters
) -> nx.Graph:
    """G_{1-2ε}: the approximation graph G̃ of Definition 7.1."""
    return induced_graph(points, params, 1.0 - 2.0 * params.epsilon)


def weak_connectivity_graph(
    points: PointSet, params: SINRParameters
) -> nx.Graph:
    """G_1: nodes within the full transmission range R."""
    return induced_graph(points, params, 1.0)


def link_length_ratio(graph: nx.Graph) -> float:
    """Λ_G: ratio of the longest to the shortest edge length.

    For ``G = G_{1-ε}`` this is the paper's Λ (§4.3).  Returns 1.0 for
    graphs with no edges (a degenerate but legal input for which every
    bound trivializes).
    """
    lengths = [data["length"] for _, _, data in graph.edges(data=True)]
    if not lengths:
        return 1.0
    shortest = min(lengths)
    if shortest <= 0:
        raise ValueError("graph contains a zero-length edge")
    return max(lengths) / shortest


def graph_degree(graph: nx.Graph) -> int:
    """Δ_G: maximum degree (0 for an empty or edgeless graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(deg for _, deg in graph.degree)


def graph_diameter(graph: nx.Graph) -> int:
    """D_G: hop diameter.  Raises for disconnected graphs."""
    if graph.number_of_nodes() == 0:
        raise ValueError("diameter of the empty graph is undefined")
    if not nx.is_connected(graph):
        raise ValueError("graph is disconnected; diameter undefined")
    return int(nx.diameter(graph))


def require_connected(graph: nx.Graph, context: str = "G_{1-eps}") -> None:
    """Assert the standing assumption (§4.6) that the graph is connected."""
    if graph.number_of_nodes() == 0 or not nx.is_connected(graph):
        raise ValueError(
            f"{context} must be connected (paper assumption, §4.6); "
            "increase density or transmission range"
        )
